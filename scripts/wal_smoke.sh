#!/usr/bin/env bash
# WAL crash/restart smoke test for the serving stack:
#
#   1. boot sac-serve with --wal-dir, add a vertex + edge, commit (the
#      default sync policy fsyncs every commit), then SIGKILL the process —
#      a real crash, no clean shutdown;
#   2. boot sac-serve again on the same directory: it must *recover* (not
#      rebuild the dataset), serve the committed epoch and graph, and answer
#      the checkpoint admin command;
#   3. after the second session quits cleanly, the clean-shutdown marker
#      must be on disk.
#
# Run from the repo root after `cargo build --release`.
set -euo pipefail

BIN=${BIN:-target/release/sac-serve}
[ -x "$BIN" ] || { echo "missing $BIN (run: cargo build --release)"; exit 1; }

WORK=$(mktemp -d)
SERVER=""
# Failure paths (timeouts, assertion exits) must not leak the server process
# or the temp WAL directory: kill whatever is still running, then clean up.
trap 'status=$?; { [ -n "${SERVER:-}" ] && kill -9 "$SERVER" 2>/dev/null; } || true; rm -rf "$WORK"; exit $status' EXIT
WAL_DIR="$WORK/wal"
FIFO="$WORK/in"
mkfifo "$FIFO"

# Waits until file $1 holds at least $2 lines (server replies are LDJSON,
# one line per request).
wait_lines() {
  for _ in $(seq 1 100); do
    [ -f "$1" ] && [ "$(wc -l < "$1")" -ge "$2" ] && return 0
    sleep 0.1
  done
  echo "timed out waiting for $2 replies in $1"; cat "$1" || true; exit 1
}

field() { grep -o "\"$2\":[0-9]*" "$1" | head -n1 | cut -d: -f2; }

# --- Session 1: fresh boot, mutate, commit, crash. -------------------------
"$BIN" --preset syn1 --scale 0.05 --seed 7 --no-timing \
  --wal-dir "$WAL_DIR" < "$FIFO" > "$WORK/out1" 2> "$WORK/err1" &
SERVER=$!
exec 3>"$FIFO"
printf '%s\n' \
  '{"cmd":"add_vertex","x":1.5,"y":2.5}' \
  '{"cmd":"add_edge","u":0,"v":1}' \
  '{"cmd":"commit"}' \
  '{"cmd":"stats"}' >&3
wait_lines "$WORK/out1" 4
grep -q '"ok":true' "$WORK/out1" || { echo "session 1 failed"; cat "$WORK/out1"; exit 1; }
EPOCH1=$(field "$WORK/out1" epoch)
VERTICES1=$(grep -o '"vertices":[0-9]*' "$WORK/out1" | head -n1 | cut -d: -f2)
[ "$EPOCH1" = "2" ] || { echo "expected epoch 2 after first commit, got $EPOCH1"; exit 1; }
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
exec 3>&-
[ ! -f "$WAL_DIR/CLEAN" ] || { echo "SIGKILL must not leave a clean marker"; exit 1; }
echo "session 1: committed epoch $EPOCH1 with $VERTICES1 vertices, then crashed"

# --- Session 2: recover from the WAL directory. ----------------------------
FIFO2="$WORK/in2"
mkfifo "$FIFO2"
"$BIN" --wal-dir "$WAL_DIR" < "$FIFO2" > "$WORK/out2" 2> "$WORK/err2" &
SERVER=$!
exec 3>"$FIFO2"
printf '%s\n' '{"cmd":"stats"}' '{"cmd":"checkpoint"}' '{"cmd":"quit"}' >&3
exec 3>&-
wait "$SERVER"
grep -q "recovered epoch" "$WORK/err2" \
  || { echo "boot did not recover from the WAL"; cat "$WORK/err2"; exit 1; }
EPOCH2=$(field "$WORK/out2" epoch)
VERTICES2=$(grep -o '"vertices":[0-9]*' "$WORK/out2" | head -n1 | cut -d: -f2)
[ "$EPOCH2" = "$EPOCH1" ] || { echo "epoch lost in recovery: $EPOCH2 != $EPOCH1"; exit 1; }
[ "$VERTICES2" = "$VERTICES1" ] || { echo "vertices lost: $VERTICES2 != $VERTICES1"; exit 1; }
grep -q '"wal":{' "$WORK/out2" || { echo "stats reply lost its wal section"; cat "$WORK/out2"; exit 1; }
tail -n +2 "$WORK/out2" | head -n1 | grep -q '"snapshot_bytes":' \
  || { echo "checkpoint command failed"; cat "$WORK/out2"; exit 1; }
[ -f "$WAL_DIR/CLEAN" ] || { echo "clean quit must leave the marker"; exit 1; }
echo "session 2: recovered epoch $EPOCH2 / $VERTICES2 vertices, checkpointed, clean shutdown"
echo "wal smoke: OK"
