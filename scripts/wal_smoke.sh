#!/usr/bin/env bash
# WAL crash/restart smoke test for the serving stack:
#
#   1. boot sac-serve with --wal-dir, add a vertex + edge, commit (the
#      default sync policy fsyncs every commit), then SIGKILL the process —
#      a real crash, no clean shutdown;
#   2. boot sac-serve again on the same directory: it must *recover* (not
#      rebuild the dataset), serve the committed epoch and graph, and answer
#      the checkpoint admin command;
#   3. after the second session quits cleanly, the clean-shutdown marker
#      must be on disk.
#
# Run from the repo root after `cargo build --release`.
set -euo pipefail

source "$(dirname "$0")/smoke_lib.sh"
smoke_init "wal smoke" 120
WAL_DIR="$WORK/wal"

# --- Session 1: fresh boot, mutate, commit, crash. -------------------------
smoke_boot "$WORK/in" "$WORK/out1" "$WORK/err1" \
  --preset syn1 --scale 0.05 --seed 7 --no-timing --wal-dir "$WAL_DIR"
SERVER=$SMOKE_PID
exec 3>"$WORK/in"
printf '%s\n' \
  '{"cmd":"add_vertex","x":1.5,"y":2.5}' \
  '{"cmd":"add_edge","u":0,"v":1}' \
  '{"cmd":"commit"}' \
  '{"cmd":"stats"}' >&3
wait_lines "$WORK/out1" 4
grep -q '"ok":true' "$WORK/out1" || { echo "session 1 failed"; cat "$WORK/out1"; exit 1; }
EPOCH1=$(field "$WORK/out1" epoch)
VERTICES1=$(field "$WORK/out1" vertices)
[ "$EPOCH1" = "2" ] || { echo "expected epoch 2 after first commit, got $EPOCH1"; exit 1; }
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
exec 3>&-
[ ! -f "$WAL_DIR/CLEAN" ] || { echo "SIGKILL must not leave a clean marker"; exit 1; }
echo "session 1: committed epoch $EPOCH1 with $VERTICES1 vertices, then crashed"

# --- Session 2: recover from the WAL directory. ----------------------------
smoke_boot "$WORK/in2" "$WORK/out2" "$WORK/err2" --wal-dir "$WAL_DIR"
SERVER=$SMOKE_PID
exec 3>"$WORK/in2"
printf '%s\n' '{"cmd":"stats"}' '{"cmd":"checkpoint"}' '{"cmd":"quit"}' >&3
exec 3>&-
wait "$SERVER"
grep -q "recovered epoch" "$WORK/err2" \
  || { echo "boot did not recover from the WAL"; cat "$WORK/err2"; exit 1; }
EPOCH2=$(field "$WORK/out2" epoch)
VERTICES2=$(field "$WORK/out2" vertices)
[ "$EPOCH2" = "$EPOCH1" ] || { echo "epoch lost in recovery: $EPOCH2 != $EPOCH1"; exit 1; }
[ "$VERTICES2" = "$VERTICES1" ] || { echo "vertices lost: $VERTICES2 != $VERTICES1"; exit 1; }
grep -q '"wal":{' "$WORK/out2" || { echo "stats reply lost its wal section"; cat "$WORK/out2"; exit 1; }
tail -n +2 "$WORK/out2" | head -n1 | grep -q '"snapshot_bytes":' \
  || { echo "checkpoint command failed"; cat "$WORK/out2"; exit 1; }
[ -f "$WAL_DIR/CLEAN" ] || { echo "clean quit must leave the marker"; exit 1; }
echo "session 2: recovered epoch $EPOCH2 / $VERTICES2 vertices, checkpointed, clean shutdown"
echo "wal smoke: OK"
