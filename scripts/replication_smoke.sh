#!/usr/bin/env bash
# Replication smoke test for the serving stack:
#
#   1. boot a primary sac-serve with --wal-dir and --ship-addr, and a read
#      replica with --replicate-from pointed at it; commit on the primary
#      and assert the replica converges to the same epoch;
#   2. send a mutation to the replica: it must answer with a typed redirect
#      carrying the primary's address, never apply locally;
#   3. kill -9 the primary — the replica must keep answering queries at its
#      last applied epoch and flip its stats to "degraded":true once the
#      staleness threshold passes;
#   4. restart the primary on the same WAL directory and shipping address,
#      commit again, and assert the replica catches up and sheds the
#      degraded flag on its own — no replica restart.
#
# Run from the repo root after `cargo build --release`.
set -euo pipefail

source "$(dirname "$0")/smoke_lib.sh"
smoke_init "replication smoke" 150
WAL_DIR="$WORK/wal"

# --- Boot the primary with a shipping endpoint (OS-assigned port). ---------
smoke_boot "$WORK/pin" "$WORK/pout" "$WORK/perr" \
  --preset syn1 --scale 0.05 --seed 7 --no-timing \
  --wal-dir "$WAL_DIR" --ship-addr 127.0.0.1:0
PRIMARY=$SMOKE_PID
exec 3>"$WORK/pin"
wait_grep "$WORK/perr" "shipping WAL to replicas on"
SHIP_ADDR=$(grep -o 'shipping WAL to replicas on [0-9.:]*' "$WORK/perr" | awk '{print $NF}')
echo "primary: shipping on $SHIP_ADDR"

# --- Boot the replica against it. ------------------------------------------
smoke_boot "$WORK/rin" "$WORK/rout" "$WORK/rerr" \
  --replicate-from "$SHIP_ADDR" --staleness-ms 500 --lease-ms 200 --no-timing
REPLICA=$SMOKE_PID
exec 4>"$WORK/rin"
wait_grep "$WORK/rerr" "replica bootstrapped from"

# --- Converge: commit on the primary, watch the replica apply it. ----------
printf '%s\n' \
  '{"cmd":"add_vertex","x":1.5,"y":2.5}' \
  '{"cmd":"add_edge","u":0,"v":1}' \
  '{"cmd":"commit"}' >&3
wait_lines "$WORK/pout" 3
EPOCH1=$(field "$WORK/pout" epoch)
[ "$EPOCH1" = "2" ] || { echo "expected epoch 2 after first commit, got $EPOCH1"; exit 1; }
wait_stats 4 "$WORK/rout" "\"last_applied_epoch\":$EPOCH1[,}]"
echo "replica: converged to epoch $EPOCH1"

# --- Read-only contract: mutations on the replica redirect. ----------------
printf '{"cmd":"add_edge","u":2,"v":3}\n' >&4
wait_grep "$WORK/rout" '"redirect_to":"'"$SHIP_ADDR"'"'
echo "replica: mutation redirected to $SHIP_ADDR"

# --- Primary dies hard; the replica degrades but keeps serving. ------------
kill -9 "$PRIMARY"
wait "$PRIMARY" 2>/dev/null || true
PRIMARY=""
exec 3>&-
printf '{"q":0,"k":2}\n' >&4
wait_stats 4 "$WORK/rout" '"degraded":true'
grep -q '"ok":true' "$WORK/rout" || { echo "replica stopped answering"; cat "$WORK/rout"; exit 1; }
echo "replica: degraded after losing the primary, still answering queries"

# --- Primary returns on the same WAL dir + address; replica catches up. ----
smoke_boot "$WORK/pin2" "$WORK/pout2" "$WORK/perr2" \
  --wal-dir "$WAL_DIR" --ship-addr "$SHIP_ADDR" --no-timing
PRIMARY=$SMOKE_PID
exec 3>"$WORK/pin2"
wait_grep "$WORK/perr2" "recovered epoch"
printf '%s\n' '{"cmd":"add_vertex","x":9.5,"y":-3.5}' '{"cmd":"commit"}' >&3
wait_lines "$WORK/pout2" 2
EPOCH2=$(tail -n 1 "$WORK/pout2" | grep -o '"epoch":[0-9]*' | cut -d: -f2)
[ "$EPOCH2" -gt "$EPOCH1" ] || { echo "restart did not advance the epoch: $EPOCH2"; exit 1; }
wait_stats 4 "$WORK/rout" "\"last_applied_epoch\":$EPOCH2[,}]"
wait_stats 4 "$WORK/rout" '"degraded":false'
echo "replica: caught up to epoch $EPOCH2 after primary restart, health recovered"

# --- Orderly shutdown. ------------------------------------------------------
printf '{"cmd":"quit"}\n' >&3
printf '{"cmd":"quit"}\n' >&4
exec 3>&- 4>&-
wait "$PRIMARY" 2>/dev/null || true
wait "$REPLICA" 2>/dev/null || true
echo "replication smoke: OK"
