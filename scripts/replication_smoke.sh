#!/usr/bin/env bash
# Replication smoke test for the serving stack:
#
#   1. boot a primary sac-serve with --wal-dir and --ship-addr, and a read
#      replica with --replicate-from pointed at it; commit on the primary
#      and assert the replica converges to the same epoch;
#   2. send a mutation to the replica: it must answer with a typed redirect
#      carrying the primary's address, never apply locally;
#   3. kill -9 the primary — the replica must keep answering queries at its
#      last applied epoch and flip its stats to "degraded":true once the
#      staleness threshold passes;
#   4. restart the primary on the same WAL directory and shipping address,
#      commit again, and assert the replica catches up and sheds the
#      degraded flag on its own — no replica restart.
#
# Run from the repo root after `cargo build --release`.
set -euo pipefail

BIN=${BIN:-target/release/sac-serve}
[ -x "$BIN" ] || { echo "missing $BIN (run: cargo build --release)"; exit 1; }

WORK=$(mktemp -d)
PRIMARY=""
REPLICA=""
# Failure paths must not leak either server or the temp directory.
trap 'status=$?;
  { [ -n "${PRIMARY:-}" ] && kill -9 "$PRIMARY" 2>/dev/null; } || true;
  { [ -n "${REPLICA:-}" ] && kill -9 "$REPLICA" 2>/dev/null; } || true;
  rm -rf "$WORK"; exit $status' EXIT
WAL_DIR="$WORK/wal"

# Waits until file $1 holds at least $2 lines.
wait_lines() {
  for _ in $(seq 1 150); do
    [ -f "$1" ] && [ "$(wc -l < "$1")" -ge "$2" ] && return 0
    sleep 0.1
  done
  echo "timed out waiting for $2 replies in $1"; cat "$1" 2>/dev/null || true; exit 1
}

# Waits until file $1 matches pattern $2.
wait_grep() {
  for _ in $(seq 1 150); do
    [ -f "$1" ] && grep -q "$2" "$1" && return 0
    sleep 0.1
  done
  echo "timed out waiting for '$2' in $1"
  cat "$1" 2>/dev/null || true
  exit 1
}

field() { grep -o "\"$2\":[0-9]*" "$1" | head -n1 | cut -d: -f2; }

# Polls the replica's stats (fd 4) until the latest reply matches pattern $1.
wait_replica() {
  for _ in $(seq 1 150); do
    printf '{"cmd":"stats"}\n' >&4
    sleep 0.1
    tail -n 1 "$WORK/rout" | grep -q "$1" && return 0
  done
  echo "replica never matched '$1'"; tail -n 3 "$WORK/rout"; exit 1
}

# --- Boot the primary with a shipping endpoint (OS-assigned port). ---------
mkfifo "$WORK/pin"
"$BIN" --preset syn1 --scale 0.05 --seed 7 --no-timing \
  --wal-dir "$WAL_DIR" --ship-addr 127.0.0.1:0 \
  < "$WORK/pin" > "$WORK/pout" 2> "$WORK/perr" &
PRIMARY=$!
exec 3>"$WORK/pin"
wait_grep "$WORK/perr" "shipping WAL to replicas on"
SHIP_ADDR=$(grep -o 'shipping WAL to replicas on [0-9.:]*' "$WORK/perr" | awk '{print $NF}')
echo "primary: shipping on $SHIP_ADDR"

# --- Boot the replica against it. ------------------------------------------
mkfifo "$WORK/rin"
"$BIN" --replicate-from "$SHIP_ADDR" --staleness-ms 500 --no-timing \
  < "$WORK/rin" > "$WORK/rout" 2> "$WORK/rerr" &
REPLICA=$!
exec 4>"$WORK/rin"
wait_grep "$WORK/rerr" "replica bootstrapped from"

# --- Converge: commit on the primary, watch the replica apply it. ----------
printf '%s\n' \
  '{"cmd":"add_vertex","x":1.5,"y":2.5}' \
  '{"cmd":"add_edge","u":0,"v":1}' \
  '{"cmd":"commit"}' >&3
wait_lines "$WORK/pout" 3
EPOCH1=$(field "$WORK/pout" epoch)
[ "$EPOCH1" = "2" ] || { echo "expected epoch 2 after first commit, got $EPOCH1"; exit 1; }
wait_replica "\"last_applied_epoch\":$EPOCH1[,}]"
echo "replica: converged to epoch $EPOCH1"

# --- Read-only contract: mutations on the replica redirect. ----------------
printf '{"cmd":"add_edge","u":2,"v":3}\n' >&4
wait_grep "$WORK/rout" '"redirect_to":"'"$SHIP_ADDR"'"'
echo "replica: mutation redirected to $SHIP_ADDR"

# --- Primary dies hard; the replica degrades but keeps serving. ------------
kill -9 "$PRIMARY"
wait "$PRIMARY" 2>/dev/null || true
PRIMARY=""
exec 3>&-
printf '{"q":0,"k":2}\n' >&4
wait_replica '"degraded":true'
grep -q '"ok":true' "$WORK/rout" || { echo "replica stopped answering"; cat "$WORK/rout"; exit 1; }
echo "replica: degraded after losing the primary, still answering queries"

# --- Primary returns on the same WAL dir + address; replica catches up. ----
mkfifo "$WORK/pin2"
"$BIN" --wal-dir "$WAL_DIR" --ship-addr "$SHIP_ADDR" --no-timing \
  < "$WORK/pin2" > "$WORK/pout2" 2> "$WORK/perr2" &
PRIMARY=$!
exec 3>"$WORK/pin2"
wait_grep "$WORK/perr2" "recovered epoch"
printf '%s\n' '{"cmd":"add_vertex","x":9.5,"y":-3.5}' '{"cmd":"commit"}' >&3
wait_lines "$WORK/pout2" 2
EPOCH2=$(tail -n 1 "$WORK/pout2" | grep -o '"epoch":[0-9]*' | cut -d: -f2)
[ "$EPOCH2" -gt "$EPOCH1" ] || { echo "restart did not advance the epoch: $EPOCH2"; exit 1; }
wait_replica "\"last_applied_epoch\":$EPOCH2[,}]"
wait_replica '"degraded":false'
echo "replica: caught up to epoch $EPOCH2 after primary restart, health recovered"

# --- Orderly shutdown. ------------------------------------------------------
printf '{"cmd":"quit"}\n' >&3
printf '{"cmd":"quit"}\n' >&4
exec 3>&- 4>&-
wait "$PRIMARY" 2>/dev/null || true
wait "$REPLICA" 2>/dev/null || true
PRIMARY=""
REPLICA=""
echo "replication smoke: OK"
