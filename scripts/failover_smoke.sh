#!/usr/bin/env bash
# Failover smoke test for the serving stack:
#
#   1. boot a primary sac-serve shipping its WAL with a 400 ms lease, and
#      two promotion candidates tailing it with --replica-id 1/2 plus
#      advertised takeover addresses and failover WAL directories;
#   2. kill -9 the primary: the lease expires, candidate 1 (lowest id in
#      the last broadcast roster) promotes itself at term 1 and accepts
#      writes; candidate 2 re-points at the winner and converges;
#   3. restart the dead primary on its old WAL directory with --peer
#      pointed at the winner: the boot-time probe finds a leader at a
#      higher term, so the zombie demotes itself to a replica of the
#      winner instead of forking history, and converges on the new one;
#   4. a mutation sent to the demoted zombie redirects to the winner.
#
# Run from the repo root after `cargo build --release`.
set -euo pipefail

source "$(dirname "$0")/smoke_lib.sh"
smoke_init "failover smoke" 180
WAL_DIR="$WORK/wal"
LEASE_MS=400

free_port() {
  python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()'
}

# --- Primary with a lease-stamping shipping endpoint. -----------------------
smoke_boot "$WORK/pin" "$WORK/pout" "$WORK/perr" \
  --preset syn1 --scale 0.05 --seed 7 --no-timing \
  --wal-dir "$WAL_DIR" --ship-addr 127.0.0.1:0 --lease-ms "$LEASE_MS"
PRIMARY=$SMOKE_PID
exec 3>"$WORK/pin"
wait_grep "$WORK/perr" "shipping WAL to replicas on"
SHIP_ADDR=$(grep -o 'shipping WAL to replicas on [0-9.:]*' "$WORK/perr" | awk '{print $NF}')
ADVERT1="127.0.0.1:$(free_port)"
ADVERT2="127.0.0.1:$(free_port)"
echo "primary: shipping on $SHIP_ADDR (lease ${LEASE_MS}ms); candidates at $ADVERT1 / $ADVERT2"

# --- Two promotion candidates tail the primary. -----------------------------
smoke_boot "$WORK/r1in" "$WORK/r1out" "$WORK/r1err" \
  --replicate-from "$SHIP_ADDR" --staleness-ms 5000 --lease-ms "$LEASE_MS" --no-timing \
  --replica-id 1 --advertise "$ADVERT1" --failover-dir "$WORK/f1"
R1=$SMOKE_PID
exec 4>"$WORK/r1in"
smoke_boot "$WORK/r2in" "$WORK/r2out" "$WORK/r2err" \
  --replicate-from "$SHIP_ADDR" --staleness-ms 5000 --lease-ms "$LEASE_MS" --no-timing \
  --replica-id 2 --advertise "$ADVERT2" --failover-dir "$WORK/f2"
R2=$SMOKE_PID
exec 5>"$WORK/r2in"
wait_grep "$WORK/r1err" "replica bootstrapped from"
wait_grep "$WORK/r2err" "replica bootstrapped from"

# --- Converge both candidates on a committed epoch. -------------------------
printf '%s\n' \
  '{"cmd":"add_vertex","x":1.5,"y":2.5}' \
  '{"cmd":"add_edge","u":0,"v":1}' \
  '{"cmd":"commit"}' >&3
wait_lines "$WORK/pout" 3
EPOCH1=$(field "$WORK/pout" epoch)
[ "$EPOCH1" = "2" ] || { echo "expected epoch 2 after first commit, got $EPOCH1"; exit 1; }
wait_stats 4 "$WORK/r1out" "\"last_applied_epoch\":$EPOCH1[,}]"
wait_stats 5 "$WORK/r2out" "\"last_applied_epoch\":$EPOCH1[,}]"
echo "candidates: both converged to epoch $EPOCH1"

# --- Kill -9 the primary: candidate 1 promotes, candidate 2 follows. --------
kill -9 "$PRIMARY"
wait "$PRIMARY" 2>/dev/null || true
PRIMARY=""
exec 3>&-
wait_grep "$WORK/r1err" "promoted to primary at term 1"
wait_grep "$WORK/r2err" "following new primary $ADVERT1"
echo "failover: candidate 1 promoted at term 1, candidate 2 following"

# --- Writes land on the new primary; the loser converges. -------------------
EPOCH2=$((EPOCH1 + 1))
printf '%s\n' '{"cmd":"add_vertex","x":9.5,"y":-3.5}' '{"cmd":"commit"}' >&4
wait_grep "$WORK/r1out" "\"epoch\":$EPOCH2[,}]"
wait_stats 5 "$WORK/r2out" "\"last_applied_epoch\":$EPOCH2[,}]"
echo "new primary: committed epoch $EPOCH2; loser caught up"

# --- Zombie restart: fenced by the higher term, demotes to replica. ---------
smoke_boot "$WORK/zin" "$WORK/zout" "$WORK/zerr" \
  --wal-dir "$WAL_DIR" --peer "$ADVERT1" --no-timing
ZOMBIE=$SMOKE_PID
exec 6>"$WORK/zin"
wait_grep "$WORK/zerr" "superseded: peer $ADVERT1 leads at term 1"
wait_grep "$WORK/zerr" "replica bootstrapped from"
wait_stats 6 "$WORK/zout" "\"last_applied_epoch\":$EPOCH2[,}]"
printf '{"cmd":"add_edge","u":4,"v":5}\n' >&6
wait_grep "$WORK/zout" '"redirect_to":"'"$ADVERT1"'"'
echo "zombie: demoted to replica of $ADVERT1, converged on the new history"

# --- Orderly shutdown. ------------------------------------------------------
printf '{"cmd":"quit"}\n' >&4
printf '{"cmd":"quit"}\n' >&5
printf '{"cmd":"quit"}\n' >&6
exec 4>&- 5>&- 6>&-
wait "$R1" 2>/dev/null || true
wait "$R2" 2>/dev/null || true
wait "$ZOMBIE" 2>/dev/null || true
echo "failover smoke: OK"
