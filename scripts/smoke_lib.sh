# Shared plumbing for the smoke scripts: binary lookup, temp workspace,
# background-server tracking, reaping on every exit path, line/pattern/stats
# waits, and a hard per-script timeout that hung servers cannot outlive.
#
# Usage, from a script that has already `set -euo pipefail`:
#
#   source "$(dirname "$0")/smoke_lib.sh"
#   smoke_init "wal smoke" 120            # display name + hard timeout (s)
#   smoke_boot "$WORK/in" "$WORK/out" "$WORK/err" --preset syn1 ...
#   SERVER=$SMOKE_PID
#   ...
#   echo "wal smoke: OK"
#
# Every server booted through smoke_boot is SIGKILLed and the workspace is
# removed on ANY exit path — success, assertion failure, or the watchdog
# firing.

# Initializes $BIN and $WORK, installs the reap trap, and starts the
# timeout watchdog.
smoke_init() {
  SMOKE_NAME=$1
  local timeout=${2:-120}
  BIN=${BIN:-target/release/sac-serve}
  [ -x "$BIN" ] || { echo "missing $BIN (run: cargo build --release)"; exit 1; }
  WORK=$(mktemp -d)
  : > "$WORK/pids"
  trap 'smoke_reap $?' EXIT
  # The watchdog outlives hangs in the script itself.  SIGKILL skips the
  # EXIT trap, so the watchdog performs the same cleanup before killing.
  (
    sleep "$timeout"
    echo "$SMOKE_NAME: HARD TIMEOUT after ${timeout}s" >&2
    while read -r pid; do kill -9 "$pid" 2>/dev/null || true; done < "$WORK/pids"
    rm -rf "$WORK"
    kill -9 "$$" 2>/dev/null || true
  ) &
  SMOKE_WATCHDOG=$!
}

# Reaps every tracked server and the watchdog, removes the workspace, and
# preserves the script's exit status.  Installed as the EXIT trap.
smoke_reap() {
  local status=${1:-$?}
  if [ -f "${WORK:-/nonexistent}/pids" ]; then
    while read -r pid; do kill -9 "$pid" 2>/dev/null || true; done < "$WORK/pids"
  fi
  { [ -n "${SMOKE_WATCHDOG:-}" ] && kill "$SMOKE_WATCHDOG" 2>/dev/null; } || true
  rm -rf "${WORK:-}"
  exit "$status"
}

# Boots $BIN in the background reading LDJSON from a fresh fifo:
#   smoke_boot <fifo> <stdout-file> <stderr-file> [server args...]
# The pid is tracked for reaping and left in $SMOKE_PID.
smoke_boot() {
  local fifo=$1 out=$2 err=$3
  shift 3
  [ -p "$fifo" ] || mkfifo "$fifo"
  "$BIN" "$@" < "$fifo" > "$out" 2> "$err" &
  SMOKE_PID=$!
  echo "$SMOKE_PID" >> "$WORK/pids"
}

# Waits until file $1 holds at least $2 lines (server replies are LDJSON,
# one line per request).
wait_lines() {
  for _ in $(seq 1 150); do
    [ -f "$1" ] && [ "$(wc -l < "$1")" -ge "$2" ] && return 0
    sleep 0.1
  done
  echo "timed out waiting for $2 replies in $1"
  cat "$1" 2>/dev/null || true
  exit 1
}

# Waits until file $1 matches (grep) pattern $2.
wait_grep() {
  for _ in $(seq 1 150); do
    [ -f "$1" ] && grep -q "$2" "$1" && return 0
    sleep 0.1
  done
  echo "timed out waiting for '$2' in $1"
  cat "$1" 2>/dev/null || true
  exit 1
}

# Polls stats through fd $1 until the latest reply in file $2 matches
# pattern $3 (the fd must be open for writing on a server's fifo).
wait_stats() {
  local fd=$1 out=$2 pattern=$3
  for _ in $(seq 1 150); do
    printf '{"cmd":"stats"}\n' >&"$fd"
    sleep 0.1
    { [ -f "$out" ] && tail -n 1 "$out" | grep -q "$pattern"; } && return 0
  done
  echo "stats never matched '$pattern'"
  tail -n 3 "$out" 2>/dev/null || true
  exit 1
}

# First numeric value of field $2 in file $1.
field() { grep -o "\"$2\":[0-9]*" "$1" | head -n1 | cut -d: -f2; }
