//! # sac-proto
//!
//! The typed, transport-agnostic wire protocol of the SAC serving stack.
//!
//! The serving engine (`sac-engine`) and the live-update front (`sac-live`)
//! expose a typed Rust API; clients speak JSON.  This crate is the single
//! place where the two meet:
//!
//! * [`ProtoRequest`] / [`ProtoResponse`] — typed request/response enums
//!   covering queries, batches, structural lookups, live updates and admin
//!   commands;
//! * [`json`] — the dependency-free JSON tree parser/serialiser the codecs
//!   are built on (the build environment has no `serde`);
//! * the **LDJSON codec** — [`ProtoRequest::parse_line`] and
//!   [`ProtoResponse::encode_line`], shared by *every* transport: the
//!   `sac-serve` stdin/stdout loop and the `sac-http` HTTP/1.1 front end are
//!   thin shells around the same typed API, and an integration test asserts
//!   their payloads are byte-identical.
//!
//! ## Protocol
//!
//! One JSON document per request:
//!
//! ```text
//! {"id":1,"q":17,"k":4}                        → one query, default budget
//! {"id":2,"q":17,"k":4,"ratio":1.5,"tier":"interactive","theta":0.25}
//! [{...},{...}]                                → a batch, fanned across threads
//! {"cmd":"stats"} | {"cmd":"warm","ks":[2,4]} | {"cmd":"core","q":17,"k":4}
//! {"cmd":"metrics"}                            → Prometheus exposition text
//! {"cmd":"slowlog"}                            → slow-query ring snapshot
//! {"cmd":"events","since":42}                  → structured event-log page
//! {"cmd":"add_edge","u":17,"v":23}             → live updates (buffered...
//! {"cmd":"remove_edge","u":17,"v":23}
//! {"cmd":"add_vertex","x":0.25,"y":0.75}
//! {"cmd":"move_vertex","v":17,"x":0.5,"y":0.5} → position-only update
//! {"cmd":"commit"}                             → ...until published here)
//! {"cmd":"quit"}
//! ```
//!
//! Budget *values* are validated by the engine's typed request builder, not
//! by the codec: a malformed document is a transport error, an invalid budget
//! is a per-query `"plan":"rejected"` reply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod replication;
mod transport;
mod wire;

pub use transport::TransportError;
pub use wire::{
    CheckpointReply, CommitReply, CoreReply, EncodeOptions, EventsReply, LatencyStatsReply,
    MutationReply, ProtoError, ProtoRequest, ProtoResponse, QueryReply, QueryResult, QuerySpec,
    ReplicationStatsReply, ShardStatsReply, SlowLogReply, StatsReply, VertexReply, WalStatsReply,
};
