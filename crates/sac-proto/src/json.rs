//! Minimal JSON support for the SAC wire protocol.
//!
//! The build environment has no network access, so `serde`/`serde_json` are
//! unavailable; this module implements the small subset the protocol needs: a
//! recursive-descent parser into a [`Json`] tree, accessors, and a
//! serialiser.  Numbers are `f64` (ids and vertex ids in this protocol stay
//! far below 2^53, where `f64` is exact).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Failure description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strict upper bound: `u64::MAX as f64` rounds *up* to 2^64, so
            // `<=` would accept 2^64 and saturate on the cast.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.is_finite() {
        write!(f, "{n}")
    } else {
        // JSON has no Infinity/NaN; serialise as null like serde_json's lossy
        // modes rather than emitting invalid output.
        f.write_str("null")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this protocol;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always at a character boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Convenience constructor for object values.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserialises_round_trip() {
        let text = r#"{"id":3,"q":17,"k":2,"ratio":1.5,"tier":"batch","theta":null,"flags":[true,false],"nested":{"a":-2.5e3}}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(value.get("tier").unwrap().as_str(), Some("batch"));
        assert!(value.get("theta").unwrap().is_null());
        assert_eq!(value.get("flags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            value.get("nested").unwrap().get("a").unwrap().as_f64(),
            Some(-2500.0)
        );
        let round = Json::parse(&value.to_string()).unwrap();
        assert_eq!(round, value);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = Json::parse(r#"["a\"b\\c\nd\u0041", "π"]"#).unwrap();
        let items = value.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(items[1].as_str(), Some("π"));
        let round = Json::parse(&value.to_string()).unwrap();
        assert_eq!(round, value);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "[1 2]",
            "nul",
        ] {
            assert!(
                Json::parse(bad).is_err(),
                "accepted malformed input: {bad:?}"
            );
        }
    }

    #[test]
    fn integers_and_floats_are_distinguished_by_accessors() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
        // 2^64 parses as a float but is out of u64 range: must not saturate.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
        assert_eq!(Json::parse("true").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn serialiser_escapes_control_characters() {
        let s = Json::Str("line1\nline2\t\"quoted\"\u{1}".to_string()).to_string();
        assert_eq!(s, "\"line1\\nline2\\t\\\"quoted\\\"\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(obj(vec![("k", Json::Num(2.0))]).to_string(), "{\"k\":2}");
    }
}
