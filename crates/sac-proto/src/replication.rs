//! Replication wire protocol: the handshake and frame stream a replica uses
//! to tail a primary's write-ahead log.
//!
//! The link is one TCP connection per attempt.  The replica opens with a
//! single JSON line ([`ReplicateRequest`]) naming the log position it wants
//! to resume from (or asking for a snapshot bootstrap); the primary answers
//! with a single JSON line ([`ReplicateHello`]) and then switches to binary
//! frames.  A snapshot hello is followed by the raw snapshot file bytes
//! before the first frame.
//!
//! Binary frame layout (all integers little-endian):
//!
//! ```text
//! record:    kind=1: u8 | segment: u64 | end_offset: u64
//!                       | len: u32 | crc: u32 | payload (len bytes)
//! heartbeat: kind=2: u8 | epoch: u64 | segment: u64 | offset: u64
//! snapshot_required: kind=3: u8
//! ```
//!
//! A record frame carries the on-disk WAL payload verbatim (the CRC is the
//! stored one, covering the payload only), so the replica re-verifies the
//! checksum end to end — a byte corrupted anywhere between the primary's
//! disk and the replica's decoder is caught.  `(segment, end_offset)` is the
//! resume position *after* the record, fed back on reconnect.  Heartbeats
//! report the primary's served epoch and WAL tail so the replica can detect
//! both staleness and silently lost frames.  `snapshot_required` tells the
//! replica its position was truncated by a checkpoint: reconnect with
//! `snapshot: true`.

use crate::json::{obj, Json};
use std::io::{Read, Write};

/// Frame kind: one WAL record.
pub const REPL_FRAME_RECORD: u8 = 1;
/// Frame kind: heartbeat (primary epoch + WAL tail position).
pub const REPL_FRAME_HEARTBEAT: u8 = 2;
/// Frame kind: the requested position was truncated; re-bootstrap.
pub const REPL_FRAME_SNAPSHOT_REQUIRED: u8 = 3;

/// Upper bound on a record frame payload accepted off the wire (matches the
/// WAL's own on-disk sanity bound).
pub const REPL_MAX_PAYLOAD: u32 = 1 << 28;

/// The replica's opening line: where to resume the stream from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateRequest {
    /// Segment of the resume position (ignored under `snapshot`).
    pub segment: u64,
    /// Byte offset within `segment` (ignored under `snapshot`).
    pub offset: u64,
    /// Ask for a full snapshot bootstrap instead of a log position (first
    /// boot, or after `snapshot_required`).
    pub snapshot: bool,
}

impl ReplicateRequest {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        obj(vec![
            ("cmd", Json::Str("replicate".to_string())),
            ("segment", Json::Num(self.segment as f64)),
            ("offset", Json::Num(self.offset as f64)),
            ("snapshot", Json::Bool(self.snapshot)),
        ])
        .to_string()
    }

    /// Parses a request line; `None` when the line is not a well-formed
    /// replicate request.
    pub fn parse_line(line: &str) -> Option<ReplicateRequest> {
        let json = Json::parse(line).ok()?;
        if json.get("cmd")?.as_str()? != "replicate" {
            return None;
        }
        Some(ReplicateRequest {
            segment: json.get("segment")?.as_u64()?,
            offset: json.get("offset")?.as_u64()?,
            snapshot: json
                .get("snapshot")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

/// The primary's one-line answer to a [`ReplicateRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicateHello {
    /// A snapshot bootstrap: `len` raw snapshot-file bytes follow this line,
    /// then binary frames from `(segment, offset)`.  The replica skips
    /// records at or below `epoch`, exactly like local recovery.
    Snapshot {
        /// Epoch the snapshot captured.
        epoch: u64,
        /// Size of the snapshot file in bytes.
        len: u64,
        /// Segment the frame stream resumes from.
        segment: u64,
        /// Offset within `segment`.
        offset: u64,
    },
    /// Binary frames follow, from the requested position.
    Tail {
        /// Segment the frame stream resumes from.
        segment: u64,
        /// Offset within `segment`.
        offset: u64,
    },
    /// The requested position predates the oldest live segment; reconnect
    /// with `snapshot: true`.
    SnapshotRequired {
        /// Oldest segment still on disk.
        oldest: u64,
    },
    /// The primary cannot serve the stream (e.g. it runs without a WAL).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl ReplicateHello {
    /// Encodes the hello as one JSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        match self {
            ReplicateHello::Snapshot {
                epoch,
                len,
                segment,
                offset,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("mode", Json::Str("snapshot".to_string())),
                ("epoch", Json::Num(*epoch as f64)),
                ("len", Json::Num(*len as f64)),
                ("segment", Json::Num(*segment as f64)),
                ("offset", Json::Num(*offset as f64)),
            ]),
            ReplicateHello::Tail { segment, offset } => obj(vec![
                ("ok", Json::Bool(true)),
                ("mode", Json::Str("tail".to_string())),
                ("segment", Json::Num(*segment as f64)),
                ("offset", Json::Num(*offset as f64)),
            ]),
            ReplicateHello::SnapshotRequired { oldest } => obj(vec![
                ("ok", Json::Bool(true)),
                ("mode", Json::Str("snapshot_required".to_string())),
                ("oldest", Json::Num(*oldest as f64)),
            ]),
            ReplicateHello::Error { message } => obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.clone())),
            ]),
        }
        .to_string()
    }

    /// Parses a hello line; `None` when malformed.
    pub fn parse_line(line: &str) -> Option<ReplicateHello> {
        let json = Json::parse(line).ok()?;
        if !json.get("ok")?.as_bool()? {
            return Some(ReplicateHello::Error {
                message: json
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            });
        }
        match json.get("mode")?.as_str()? {
            "snapshot" => Some(ReplicateHello::Snapshot {
                epoch: json.get("epoch")?.as_u64()?,
                len: json.get("len")?.as_u64()?,
                segment: json.get("segment")?.as_u64()?,
                offset: json.get("offset")?.as_u64()?,
            }),
            "tail" => Some(ReplicateHello::Tail {
                segment: json.get("segment")?.as_u64()?,
                offset: json.get("offset")?.as_u64()?,
            }),
            "snapshot_required" => Some(ReplicateHello::SnapshotRequired {
                oldest: json.get("oldest")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// One decoded binary frame off the replication stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// A WAL record, payload undecoded (the receiver verifies `crc` and
    /// decodes through `sac-wal`).
    Record {
        /// Segment the record lives in on the primary.
        segment: u64,
        /// Resume position after the record.
        end_offset: u64,
        /// CRC-32 of the payload as stored on disk.
        crc: u32,
        /// The record payload (epoch, op count, ops).
        payload: Vec<u8>,
    },
    /// A liveness beacon carrying the primary's served epoch and WAL tail.
    Heartbeat {
        /// Primary's served epoch.
        epoch: u64,
        /// Segment of the primary's WAL tail.
        segment: u64,
        /// Offset of the primary's WAL tail.
        offset: u64,
    },
    /// The stream position was truncated by a checkpoint; re-bootstrap.
    SnapshotRequired,
}

impl ReplFrame {
    /// Encodes the frame for the wire.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplFrame::Record {
                segment,
                end_offset,
                crc,
                payload,
            } => {
                let mut out = Vec::with_capacity(25 + payload.len());
                out.push(REPL_FRAME_RECORD);
                out.extend_from_slice(&segment.to_le_bytes());
                out.extend_from_slice(&end_offset.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&crc.to_le_bytes());
                out.extend_from_slice(payload);
                out
            }
            ReplFrame::Heartbeat {
                epoch,
                segment,
                offset,
            } => {
                let mut out = Vec::with_capacity(25);
                out.push(REPL_FRAME_HEARTBEAT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&segment.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out
            }
            ReplFrame::SnapshotRequired => vec![REPL_FRAME_SNAPSHOT_REQUIRED],
        }
    }

    /// Writes the encoded frame to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads one frame from `r`, blocking until it is complete.  Errors with
    /// `InvalidData` on an unknown kind or an implausible payload length,
    /// and with whatever `r` reports on short reads (`UnexpectedEof` on a
    /// connection closed mid-frame).
    pub fn read_from(r: &mut impl Read) -> std::io::Result<ReplFrame> {
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        match kind[0] {
            REPL_FRAME_RECORD => {
                let segment = read_u64(r)?;
                let end_offset = read_u64(r)?;
                let len = read_u32(r)?;
                let crc = read_u32(r)?;
                if len > REPL_MAX_PAYLOAD {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("implausible replication payload length {len}"),
                    ));
                }
                let mut payload = vec![0u8; len as usize];
                r.read_exact(&mut payload)?;
                Ok(ReplFrame::Record {
                    segment,
                    end_offset,
                    crc,
                    payload,
                })
            }
            REPL_FRAME_HEARTBEAT => Ok(ReplFrame::Heartbeat {
                epoch: read_u64(r)?,
                segment: read_u64(r)?,
                offset: read_u64(r)?,
            }),
            REPL_FRAME_SNAPSHOT_REQUIRED => Ok(ReplFrame::SnapshotRequired),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown replication frame kind {other}"),
            )),
        }
    }
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_lines_roundtrip() {
        let req = ReplicateRequest {
            segment: 4,
            offset: 1024,
            snapshot: false,
        };
        assert_eq!(
            req.encode_line(),
            r#"{"cmd":"replicate","segment":4,"offset":1024,"snapshot":false}"#
        );
        assert_eq!(ReplicateRequest::parse_line(&req.encode_line()), Some(req));

        for hello in [
            ReplicateHello::Snapshot {
                epoch: 9,
                len: 4096,
                segment: 3,
                offset: 0,
            },
            ReplicateHello::Tail {
                segment: 4,
                offset: 1024,
            },
            ReplicateHello::SnapshotRequired { oldest: 7 },
            ReplicateHello::Error {
                message: "no wal".to_string(),
            },
        ] {
            assert_eq!(
                ReplicateHello::parse_line(&hello.encode_line()),
                Some(hello)
            );
        }
        assert_eq!(ReplicateRequest::parse_line("{}"), None);
        assert_eq!(ReplicateHello::parse_line("nonsense"), None);
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let frames = vec![
            ReplFrame::Record {
                segment: 2,
                end_offset: 77,
                crc: 0xDEAD_BEEF,
                payload: vec![1, 2, 3, 4, 5],
            },
            ReplFrame::Heartbeat {
                epoch: 12,
                segment: 2,
                offset: 77,
            },
            ReplFrame::SnapshotRequired,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            assert_eq!(&ReplFrame::read_from(&mut r).unwrap(), f);
        }
        // A truncated stream surfaces as UnexpectedEof, not garbage.
        let mut short = &wire[..10];
        assert_eq!(
            ReplFrame::read_from(&mut short).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        let mut bad = [9u8].as_slice();
        assert_eq!(
            ReplFrame::read_from(&mut bad).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
