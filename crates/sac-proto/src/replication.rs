//! Replication wire protocol: the handshake and frame stream a replica uses
//! to tail a primary's write-ahead log.
//!
//! The link is one TCP connection per attempt.  The replica opens with a
//! single JSON line ([`ReplicateRequest`]) naming the log position it wants
//! to resume from (or asking for a snapshot bootstrap); the primary answers
//! with a single JSON line ([`ReplicateHello`]) and then switches to binary
//! frames.  A snapshot hello is followed by the raw snapshot file bytes
//! before the first frame.
//!
//! Binary frame layout (all integers little-endian):
//!
//! ```text
//! record:    kind=1: u8 | segment: u64 | end_offset: u64
//!                       | len: u32 | crc: u32 | payload (len bytes)
//! heartbeat: kind=2: u8 | epoch: u64 | segment: u64 | offset: u64
//!                       | term: u64 | lease_ms: u64
//!                       | count: u16 | count × (id: u64 | alen: u16 | addr)
//! snapshot_required: kind=3: u8
//! ```
//!
//! A record frame carries the on-disk WAL payload verbatim (the CRC is the
//! stored one, covering the payload only), so the replica re-verifies the
//! checksum end to end — a byte corrupted anywhere between the primary's
//! disk and the replica's decoder is caught.  `(segment, end_offset)` is the
//! resume position *after* the record, fed back on reconnect.  Heartbeats
//! report the primary's served epoch and WAL tail so the replica can detect
//! both staleness and silently lost frames — plus the failover lease: the
//! primary's leadership term, the lease duration it grants, and the roster
//! of connected promotion candidates (replica id → advertised address), so
//! every replica can run the same deterministic promotion rule when the
//! lease expires.  `snapshot_required` tells the replica its position was
//! truncated by a checkpoint: reconnect with `snapshot: true`.
//!
//! A second handshake command, `replicate_probe` ([`ProbeRequest`] /
//! [`ProbeReply`]), asks a shipping endpoint for its current term, role and
//! believed leader without opening a stream — a restarting primary probes
//! its peers with it to detect that it has been superseded (zombie
//! demotion) before accepting a single write.

use crate::json::{obj, Json};
use std::io::{Read, Write};

/// Frame kind: one WAL record.
pub const REPL_FRAME_RECORD: u8 = 1;
/// Frame kind: heartbeat (primary epoch + WAL tail position).
pub const REPL_FRAME_HEARTBEAT: u8 = 2;
/// Frame kind: the requested position was truncated; re-bootstrap.
pub const REPL_FRAME_SNAPSHOT_REQUIRED: u8 = 3;

/// Upper bound on a record frame payload accepted off the wire (matches the
/// WAL's own on-disk sanity bound).
pub const REPL_MAX_PAYLOAD: u32 = 1 << 28;

/// The replica's opening line: where to resume the stream from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateRequest {
    /// Segment of the resume position (ignored under `snapshot`).
    pub segment: u64,
    /// Byte offset within `segment` (ignored under `snapshot`).
    pub offset: u64,
    /// Ask for a full snapshot bootstrap instead of a log position (first
    /// boot, or after `snapshot_required`).
    pub snapshot: bool,
    /// Highest leadership term the replica has observed (0 when it has seen
    /// none).  A shipper whose own term is *lower* must refuse the stream:
    /// it has been superseded and must not keep acting as a primary.
    pub term: u64,
    /// The replica's stable id, when it is a promotion candidate (`None`
    /// for anonymous tailers: they follow but never promote).
    pub replica_id: Option<u64>,
    /// The shipping address the replica would serve on if promoted
    /// (broadcast to its peers via the heartbeat roster).
    pub advertise: Option<String>,
}

impl ReplicateRequest {
    /// A plain tail/bootstrap request with no failover identity.
    pub fn new(segment: u64, offset: u64, snapshot: bool) -> ReplicateRequest {
        ReplicateRequest {
            segment,
            offset,
            snapshot,
            term: 0,
            replica_id: None,
            advertise: None,
        }
    }

    /// Encodes the request as one JSON line (no trailing newline).  The
    /// failover fields append after the historical ones (`replica_id` /
    /// `advertise` only when present) so pre-failover parsers keep working.
    pub fn encode_line(&self) -> String {
        let mut fields = vec![
            ("cmd", Json::Str("replicate".to_string())),
            ("segment", Json::Num(self.segment as f64)),
            ("offset", Json::Num(self.offset as f64)),
            ("snapshot", Json::Bool(self.snapshot)),
            ("term", Json::Num(self.term as f64)),
        ];
        if let Some(id) = self.replica_id {
            fields.push(("replica_id", Json::Num(id as f64)));
        }
        if let Some(addr) = &self.advertise {
            fields.push(("advertise", Json::Str(addr.clone())));
        }
        obj(fields).to_string()
    }

    /// Parses a request line; `None` when the line is not a well-formed
    /// replicate request.  The failover fields are tolerated missing (term
    /// 0, anonymous) for wire compatibility with pre-failover replicas.
    pub fn parse_line(line: &str) -> Option<ReplicateRequest> {
        let json = Json::parse(line).ok()?;
        if json.get("cmd")?.as_str()? != "replicate" {
            return None;
        }
        Some(ReplicateRequest {
            segment: json.get("segment")?.as_u64()?,
            offset: json.get("offset")?.as_u64()?,
            snapshot: json
                .get("snapshot")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            term: json.get("term").and_then(Json::as_u64).unwrap_or(0),
            replica_id: json.get("replica_id").and_then(Json::as_u64),
            advertise: json
                .get("advertise")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

/// A leadership probe: asks a shipping endpoint for its term/role/leader
/// without opening a stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProbeRequest;

impl ProbeRequest {
    /// Encodes the probe as one JSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        obj(vec![("cmd", Json::Str("replicate_probe".to_string()))]).to_string()
    }

    /// Parses a probe line; `None` when it is not a probe.
    pub fn parse_line(line: &str) -> Option<ProbeRequest> {
        let json = Json::parse(line).ok()?;
        if json.get("cmd")?.as_str()? != "replicate_probe" {
            return None;
        }
        Some(ProbeRequest)
    }
}

/// The answer to a [`ProbeRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReply {
    /// The responder's current leadership term.
    pub term: u64,
    /// The responder's role: `"primary"`, `"replica"` or `"candidate"`.
    pub role: String,
    /// Address of the leader the responder believes in (its own shipping
    /// address when it is the primary), when known.
    pub leader: Option<String>,
}

impl ProbeReply {
    /// Encodes the reply as one JSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("term", Json::Num(self.term as f64)),
            ("role", Json::Str(self.role.clone())),
        ];
        if let Some(leader) = &self.leader {
            fields.push(("leader", Json::Str(leader.clone())));
        }
        obj(fields).to_string()
    }

    /// Parses a probe reply; `None` when malformed or not ok.
    pub fn parse_line(line: &str) -> Option<ProbeReply> {
        let json = Json::parse(line).ok()?;
        if !json.get("ok")?.as_bool()? {
            return None;
        }
        Some(ProbeReply {
            term: json.get("term")?.as_u64()?,
            role: json.get("role")?.as_str()?.to_string(),
            leader: json
                .get("leader")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

/// The primary's one-line answer to a [`ReplicateRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicateHello {
    /// A snapshot bootstrap: `len` raw snapshot-file bytes follow this line,
    /// then binary frames from `(segment, offset)`.  The replica skips
    /// records at or below `epoch`, exactly like local recovery.
    Snapshot {
        /// Epoch the snapshot captured.
        epoch: u64,
        /// Size of the snapshot file in bytes.
        len: u64,
        /// Segment the frame stream resumes from.
        segment: u64,
        /// Offset within `segment`.
        offset: u64,
        /// The primary's leadership term (0 on pre-failover primaries).
        term: u64,
    },
    /// Binary frames follow, from the requested position.
    Tail {
        /// Segment the frame stream resumes from.
        segment: u64,
        /// Offset within `segment`.
        offset: u64,
        /// The primary's leadership term (0 on pre-failover primaries).
        term: u64,
    },
    /// The requested position predates the oldest live segment; reconnect
    /// with `snapshot: true`.
    SnapshotRequired {
        /// Oldest segment still on disk.
        oldest: u64,
    },
    /// The primary cannot serve the stream (e.g. it runs without a WAL).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl ReplicateHello {
    /// Encodes the hello as one JSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        match self {
            ReplicateHello::Snapshot {
                epoch,
                len,
                segment,
                offset,
                term,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("mode", Json::Str("snapshot".to_string())),
                ("epoch", Json::Num(*epoch as f64)),
                ("len", Json::Num(*len as f64)),
                ("segment", Json::Num(*segment as f64)),
                ("offset", Json::Num(*offset as f64)),
                ("term", Json::Num(*term as f64)),
            ]),
            ReplicateHello::Tail {
                segment,
                offset,
                term,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("mode", Json::Str("tail".to_string())),
                ("segment", Json::Num(*segment as f64)),
                ("offset", Json::Num(*offset as f64)),
                ("term", Json::Num(*term as f64)),
            ]),
            ReplicateHello::SnapshotRequired { oldest } => obj(vec![
                ("ok", Json::Bool(true)),
                ("mode", Json::Str("snapshot_required".to_string())),
                ("oldest", Json::Num(*oldest as f64)),
            ]),
            ReplicateHello::Error { message } => obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.clone())),
            ]),
        }
        .to_string()
    }

    /// Parses a hello line; `None` when malformed.
    pub fn parse_line(line: &str) -> Option<ReplicateHello> {
        let json = Json::parse(line).ok()?;
        if !json.get("ok")?.as_bool()? {
            return Some(ReplicateHello::Error {
                message: json
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            });
        }
        match json.get("mode")?.as_str()? {
            "snapshot" => Some(ReplicateHello::Snapshot {
                epoch: json.get("epoch")?.as_u64()?,
                len: json.get("len")?.as_u64()?,
                segment: json.get("segment")?.as_u64()?,
                offset: json.get("offset")?.as_u64()?,
                term: json.get("term").and_then(Json::as_u64).unwrap_or(0),
            }),
            "tail" => Some(ReplicateHello::Tail {
                segment: json.get("segment")?.as_u64()?,
                offset: json.get("offset")?.as_u64()?,
                term: json.get("term").and_then(Json::as_u64).unwrap_or(0),
            }),
            "snapshot_required" => Some(ReplicateHello::SnapshotRequired {
                oldest: json.get("oldest")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// One decoded binary frame off the replication stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// A WAL record, payload undecoded (the receiver verifies `crc` and
    /// decodes through `sac-wal`).
    Record {
        /// Segment the record lives in on the primary.
        segment: u64,
        /// Resume position after the record.
        end_offset: u64,
        /// CRC-32 of the payload as stored on disk.
        crc: u32,
        /// The record payload (epoch, op count, ops).
        payload: Vec<u8>,
    },
    /// A liveness beacon carrying the primary's served epoch, WAL tail, and
    /// the failover lease (term, duration, promotion roster).
    Heartbeat {
        /// Primary's served epoch.
        epoch: u64,
        /// Segment of the primary's WAL tail.
        segment: u64,
        /// Offset of the primary's WAL tail.
        offset: u64,
        /// Primary's leadership term.
        term: u64,
        /// Lease duration granted by this beacon, in milliseconds.  A
        /// replica that sees no further heartbeat within this window may
        /// start an election.
        lease_ms: u64,
        /// Connected promotion candidates: `(replica id, advertised shipping
        /// address)`, as registered in their handshakes.  Every follower
        /// receives the same roster, so the promotion rule (lowest id wins)
        /// is deterministic across the fleet.
        roster: Vec<(u64, String)>,
    },
    /// The stream position was truncated by a checkpoint; re-bootstrap.
    SnapshotRequired,
}

impl ReplFrame {
    /// Encodes the frame for the wire.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplFrame::Record {
                segment,
                end_offset,
                crc,
                payload,
            } => {
                let mut out = Vec::with_capacity(25 + payload.len());
                out.push(REPL_FRAME_RECORD);
                out.extend_from_slice(&segment.to_le_bytes());
                out.extend_from_slice(&end_offset.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&crc.to_le_bytes());
                out.extend_from_slice(payload);
                out
            }
            ReplFrame::Heartbeat {
                epoch,
                segment,
                offset,
                term,
                lease_ms,
                roster,
            } => {
                let mut out = Vec::with_capacity(43 + roster.len() * 32);
                out.push(REPL_FRAME_HEARTBEAT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&segment.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&term.to_le_bytes());
                out.extend_from_slice(&lease_ms.to_le_bytes());
                out.extend_from_slice(&(roster.len() as u16).to_le_bytes());
                for (id, addr) in roster {
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(addr.len() as u16).to_le_bytes());
                    out.extend_from_slice(addr.as_bytes());
                }
                out
            }
            ReplFrame::SnapshotRequired => vec![REPL_FRAME_SNAPSHOT_REQUIRED],
        }
    }

    /// Writes the encoded frame to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads one frame from `r`, blocking until it is complete.  Errors with
    /// `InvalidData` on an unknown kind or an implausible payload length,
    /// and with whatever `r` reports on short reads (`UnexpectedEof` on a
    /// connection closed mid-frame).
    pub fn read_from(r: &mut impl Read) -> std::io::Result<ReplFrame> {
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        match kind[0] {
            REPL_FRAME_RECORD => {
                let segment = read_u64(r)?;
                let end_offset = read_u64(r)?;
                let len = read_u32(r)?;
                let crc = read_u32(r)?;
                if len > REPL_MAX_PAYLOAD {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("implausible replication payload length {len}"),
                    ));
                }
                let mut payload = vec![0u8; len as usize];
                r.read_exact(&mut payload)?;
                Ok(ReplFrame::Record {
                    segment,
                    end_offset,
                    crc,
                    payload,
                })
            }
            REPL_FRAME_HEARTBEAT => {
                let epoch = read_u64(r)?;
                let segment = read_u64(r)?;
                let offset = read_u64(r)?;
                let term = read_u64(r)?;
                let lease_ms = read_u64(r)?;
                let count = read_u16(r)?;
                let mut roster = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let id = read_u64(r)?;
                    let alen = read_u16(r)?;
                    let mut addr = vec![0u8; alen as usize];
                    r.read_exact(&mut addr)?;
                    let addr = String::from_utf8(addr).map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "non-UTF-8 address in heartbeat roster",
                        )
                    })?;
                    roster.push((id, addr));
                }
                Ok(ReplFrame::Heartbeat {
                    epoch,
                    segment,
                    offset,
                    term,
                    lease_ms,
                    roster,
                })
            }
            REPL_FRAME_SNAPSHOT_REQUIRED => Ok(ReplFrame::SnapshotRequired),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown replication frame kind {other}"),
            )),
        }
    }
}

fn read_u16(r: &mut impl Read) -> std::io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_lines_roundtrip() {
        let req = ReplicateRequest::new(4, 1024, false);
        assert_eq!(
            req.encode_line(),
            r#"{"cmd":"replicate","segment":4,"offset":1024,"snapshot":false,"term":0}"#
        );
        assert_eq!(ReplicateRequest::parse_line(&req.encode_line()), Some(req));

        let candidate = ReplicateRequest {
            term: 3,
            replica_id: Some(12),
            advertise: Some("127.0.0.1:9100".to_string()),
            ..ReplicateRequest::new(4, 1024, false)
        };
        assert_eq!(
            ReplicateRequest::parse_line(&candidate.encode_line()),
            Some(candidate)
        );
        // Pre-failover request lines (no term/replica_id/advertise) still
        // parse, defaulting to term 0 / anonymous.
        let legacy = ReplicateRequest::parse_line(
            r#"{"cmd":"replicate","segment":4,"offset":1024,"snapshot":false}"#,
        )
        .unwrap();
        assert_eq!(legacy, ReplicateRequest::new(4, 1024, false));

        for hello in [
            ReplicateHello::Snapshot {
                epoch: 9,
                len: 4096,
                segment: 3,
                offset: 0,
                term: 2,
            },
            ReplicateHello::Tail {
                segment: 4,
                offset: 1024,
                term: 0,
            },
            ReplicateHello::SnapshotRequired { oldest: 7 },
            ReplicateHello::Error {
                message: "no wal".to_string(),
            },
        ] {
            assert_eq!(
                ReplicateHello::parse_line(&hello.encode_line()),
                Some(hello)
            );
        }
        assert_eq!(ReplicateRequest::parse_line("{}"), None);
        assert_eq!(ReplicateHello::parse_line("nonsense"), None);
    }

    #[test]
    fn probe_lines_roundtrip() {
        let probe = ProbeRequest;
        assert_eq!(probe.encode_line(), r#"{"cmd":"replicate_probe"}"#);
        assert_eq!(ProbeRequest::parse_line(&probe.encode_line()), Some(probe));
        // A probe is not a replicate request and vice versa.
        assert_eq!(
            ReplicateRequest::parse_line(r#"{"cmd":"replicate_probe"}"#),
            None
        );
        assert_eq!(
            ProbeRequest::parse_line(&ReplicateRequest::new(0, 0, true).encode_line()),
            None
        );

        for reply in [
            ProbeReply {
                term: 5,
                role: "primary".to_string(),
                leader: Some("127.0.0.1:9100".to_string()),
            },
            ProbeReply {
                term: 0,
                role: "replica".to_string(),
                leader: None,
            },
        ] {
            assert_eq!(ProbeReply::parse_line(&reply.encode_line()), Some(reply));
        }
        assert_eq!(ProbeReply::parse_line(r#"{"ok":false}"#), None);
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let frames = vec![
            ReplFrame::Record {
                segment: 2,
                end_offset: 77,
                crc: 0xDEAD_BEEF,
                payload: vec![1, 2, 3, 4, 5],
            },
            ReplFrame::Heartbeat {
                epoch: 12,
                segment: 2,
                offset: 77,
                term: 4,
                lease_ms: 1000,
                roster: vec![
                    (1, "10.0.0.1:9100".to_string()),
                    (7, "10.0.0.2:9100".to_string()),
                ],
            },
            ReplFrame::Heartbeat {
                epoch: 13,
                segment: 2,
                offset: 99,
                term: 4,
                lease_ms: 1000,
                roster: Vec::new(),
            },
            ReplFrame::SnapshotRequired,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            f.write_to(&mut wire).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            assert_eq!(&ReplFrame::read_from(&mut r).unwrap(), f);
        }
        // A truncated stream surfaces as UnexpectedEof, not garbage.
        let mut short = &wire[..10];
        assert_eq!(
            ReplFrame::read_from(&mut short).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        let mut bad = [9u8].as_slice();
        assert_eq!(
            ReplFrame::read_from(&mut bad).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
