//! Typed transport-level refusals shared by the protocol front ends.
//!
//! Protocol-level problems travel as normal `{"ok":false,...}` payloads; the
//! errors here are one layer below that — the *transport* cannot (or will
//! not) read the request at all.  Each variant knows its HTTP status line, so
//! the HTTP front end and any future transport refuse identically.

use std::fmt;
use std::time::Duration;

/// A transport-level refusal: the connection must be closed after reporting
/// it (the offending request is deliberately left unread, so the stream
/// cannot be resynchronised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The declared request body exceeds the configured limit.
    BodyTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The request head exceeds the line-length or header-count limits.
    HeadTooLarge,
    /// No complete request arrived within the configured read timeout.
    ReadTimeout {
        /// The configured timeout.
        timeout: Duration,
    },
    /// The request uses a transfer coding the transport does not implement.
    UnsupportedTransferEncoding,
}

impl TransportError {
    /// The HTTP status line this refusal maps to.
    pub fn status_line(&self) -> &'static str {
        match self {
            TransportError::BodyTooLarge { .. } => "413 Payload Too Large",
            TransportError::HeadTooLarge => "431 Request Header Fields Too Large",
            TransportError::ReadTimeout { .. } => "408 Request Timeout",
            TransportError::UnsupportedTransferEncoding => "501 Not Implemented",
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            TransportError::HeadTooLarge => {
                f.write_str("request head exceeds the 8 KiB line / 128 header limit")
            }
            TransportError::ReadTimeout { timeout } => {
                write!(
                    f,
                    "no complete request within the {} ms read timeout",
                    timeout.as_millis()
                )
            }
            TransportError::UnsupportedTransferEncoding => {
                f.write_str("Transfer-Encoding is not supported; send a Content-Length body")
            }
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_messages_are_stable() {
        let oversize = TransportError::BodyTooLarge { limit: 1024 };
        assert_eq!(oversize.status_line(), "413 Payload Too Large");
        assert!(oversize.to_string().contains("1024-byte"));
        assert_eq!(
            TransportError::HeadTooLarge.status_line(),
            "431 Request Header Fields Too Large"
        );
        let slow = TransportError::ReadTimeout {
            timeout: Duration::from_millis(250),
        };
        assert_eq!(slow.status_line(), "408 Request Timeout");
        assert!(slow.to_string().contains("250 ms"));
        assert_eq!(
            TransportError::UnsupportedTransferEncoding.status_line(),
            "501 Not Implemented"
        );
    }
}
