//! The typed wire protocol: request/response enums plus the JSON codec.
//!
//! Every transport (the `sac-serve` LDJSON loop, the `sac-http` HTTP/1.1
//! front end) decodes bytes into a [`ProtoRequest`], hands it to the shared
//! service, and encodes the returned [`ProtoResponse`] — the transports never
//! touch engine types directly, so the two front ends cannot drift apart (an
//! integration test asserts their payloads are byte-identical).

use crate::json::{obj, Json};
use sac_engine::{
    EngineStats, EventBatch, LatencyStats, SacRequest, SacResponse, SlowQueryRecord, TraceNode,
};
use std::fmt;

/// A wire-level decode failure (malformed JSON is reported separately by
/// [`Json::parse`]; this covers structurally invalid requests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Human-readable description, echoed to the client.
    pub message: String,
}

impl ProtoError {
    /// A decode failure with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        ProtoError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

/// One SAC query as it appears on the wire: required vertex and degree bound,
/// optional id and budget fields.
///
/// Budget *values* are not validated here — [`QuerySpec::to_request`] routes
/// them through the engine's validating [`SacRequest::builder`], so invalid
/// budgets surface as typed per-query errors rather than transport errors.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Caller-chosen id (a transport-assigned fallback is used when absent).
    pub id: Option<u64>,
    /// Query vertex.
    pub q: u32,
    /// Minimum degree constraint.
    pub k: u32,
    /// Largest acceptable approximation ratio.
    pub ratio: Option<f64>,
    /// Latency tier wire name (`interactive` | `standard` | `batch`).
    pub tier: Option<sac_engine::LatencyTier>,
    /// θ radius constraint (requests the radius-constrained variant).
    pub theta: Option<f64>,
    /// Explicit algorithm override (registry name): dispatches that algorithm
    /// directly instead of planner selection, making the registered baselines
    /// A/B-testable over the wire.  Unknown names become typed per-query
    /// errors.
    pub algorithm: Option<String>,
    /// Requests a full span tree on the reply (`"trace":true`) regardless of
    /// the engine's head-sampling rate.  The tree rides the wire only when
    /// the transport encodes timing fields.
    pub trace: bool,
}

impl QuerySpec {
    /// A spec with only the required fields set.
    pub fn new(q: u32, k: u32) -> Self {
        QuerySpec {
            id: None,
            q,
            k,
            ratio: None,
            tier: None,
            theta: None,
            algorithm: None,
            trace: false,
        }
    }

    /// Decodes one request object.
    pub fn from_json(value: &Json) -> Result<QuerySpec, ProtoError> {
        let q = value
            .get("q")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtoError::new("missing or invalid field 'q'"))?;
        let k = value
            .get("k")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtoError::new("missing or invalid field 'k'"))?;
        if q > u32::MAX as u64 || k > u32::MAX as u64 {
            return Err(ProtoError::new("'q' and 'k' must fit in 32 bits"));
        }
        let mut spec = QuerySpec::new(q as u32, k as u32);
        spec.id = value.get("id").and_then(Json::as_u64);
        if let Some(ratio) = value.get("ratio") {
            spec.ratio = Some(
                ratio
                    .as_f64()
                    .ok_or_else(|| ProtoError::new("field 'ratio' must be a number"))?,
            );
        }
        if let Some(tier) = value.get("tier") {
            let name = tier
                .as_str()
                .ok_or_else(|| ProtoError::new("field 'tier' must be a string"))?;
            spec.tier = Some(name.parse().map_err(|e| ProtoError::new(format!("{e}")))?);
        }
        match value.get("theta") {
            None => {}
            Some(theta) if theta.is_null() => {}
            Some(theta) => {
                spec.theta = Some(
                    theta
                        .as_f64()
                        .ok_or_else(|| ProtoError::new("field 'theta' must be a number"))?,
                );
            }
        }
        match value.get("algorithm") {
            None => {}
            Some(algorithm) if algorithm.is_null() => {}
            Some(algorithm) => {
                spec.algorithm = Some(
                    algorithm
                        .as_str()
                        .ok_or_else(|| ProtoError::new("field 'algorithm' must be a string"))?
                        .to_string(),
                );
            }
        }
        match value.get("trace") {
            None => {}
            Some(trace) if trace.is_null() => {}
            Some(trace) => {
                spec.trace = trace
                    .as_bool()
                    .ok_or_else(|| ProtoError::new("field 'trace' must be a boolean"))?;
            }
        }
        Ok(spec)
    }

    /// Builds the validated engine request (typed budget errors from the
    /// engine's [`SacRequest::builder`]), using `fallback_id` when the spec
    /// carries no id.
    pub fn to_request(&self, fallback_id: u64) -> Result<SacRequest, sac_core::SacError> {
        let mut builder = SacRequest::builder(self.q, self.k).id(self.id.unwrap_or(fallback_id));
        if let Some(ratio) = self.ratio {
            builder = builder.ratio(ratio);
        }
        if let Some(tier) = self.tier {
            builder = builder.tier(tier);
        }
        if let Some(theta) = self.theta {
            builder = builder.theta(theta);
        }
        if let Some(algorithm) = &self.algorithm {
            builder = builder.algorithm(algorithm.clone());
        }
        builder.trace(self.trace).build()
    }

    /// The id this spec resolves to under `fallback_id`.
    pub fn resolved_id(&self, fallback_id: u64) -> u64 {
        self.id.unwrap_or(fallback_id)
    }
}

/// A decoded protocol request: one query, a batch, or an admin/live command.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoRequest {
    /// One SAC query.
    Query(QuerySpec),
    /// A batch of queries, fanned across the service's worker threads.
    Batch(Vec<QuerySpec>),
    /// Serving counters and snapshot facts.
    Stats,
    /// The full metrics exposition (Prometheus text format).
    Metrics,
    /// The slow-query log: recent queries over the configured threshold.
    SlowLog,
    /// Tail the control-plane event log from a cursor (`since`, default 0).
    Events {
        /// Return events with sequence number `>= since`.
        since: u64,
    },
    /// Pre-build the k-core indexes for these `k`.
    Warm(Vec<u32>),
    /// Structural query: the connected k-core containing `q`.
    Core {
        /// Query vertex.
        q: u32,
        /// Minimum degree constraint.
        k: u32,
    },
    /// Live update: insert the undirected edge `{u, v}`.
    AddEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// Live update: remove the undirected edge `{u, v}`.
    RemoveEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// Live update: add a vertex at `(x, y)`.
    AddVertex {
        /// X coordinate.
        x: f64,
        /// Y coordinate.
        y: f64,
    },
    /// Live update: move vertex `v` to `(x, y)` (position-only; commits
    /// publishing it are grid-only epochs with no core maintenance).
    MoveVertex {
        /// The vertex to move.
        v: u32,
        /// New x coordinate.
        x: f64,
        /// New y coordinate.
        y: f64,
    },
    /// Publish the buffered live updates as a new snapshot epoch.
    Commit {
        /// Attach a span tree of the commit pipeline to the reply
        /// (`"trace":true`; rides the wire only when timing is encoded).
        trace: bool,
    },
    /// Admin: force a snapshot checkpoint of the served epoch and truncate
    /// log segments the snapshot covers (errors when the engine runs
    /// without durability).
    Checkpoint,
    /// End the session.
    Quit,
}

/// Reads a pair of named `u32` fields (`'u'`/`'v'`, `'q'`/`'k'`...).
fn u32_pair(value: &Json, cmd: &str, a: &str, b: &str) -> Result<(u32, u32), ProtoError> {
    let (Some(x), Some(y)) = (
        value.get(a).and_then(Json::as_u64),
        value.get(b).and_then(Json::as_u64),
    ) else {
        return Err(ProtoError::new(format!(
            "'{cmd}' needs numeric fields '{a}' and '{b}'"
        )));
    };
    if x > u32::MAX as u64 || y > u32::MAX as u64 {
        return Err(ProtoError::new(format!(
            "'{a}' and '{b}' must fit in 32 bits"
        )));
    }
    Ok((x as u32, y as u32))
}

impl ProtoRequest {
    /// Decodes one protocol document (an object or a batch array).
    pub fn from_json(value: &Json) -> Result<ProtoRequest, ProtoError> {
        if let Some(items) = value.as_array() {
            return items
                .iter()
                .map(QuerySpec::from_json)
                .collect::<Result<Vec<_>, _>>()
                .map(ProtoRequest::Batch);
        }
        let Some(cmd) = value.get("cmd").and_then(Json::as_str) else {
            return QuerySpec::from_json(value).map(ProtoRequest::Query);
        };
        match cmd {
            "quit" | "shutdown" => Ok(ProtoRequest::Quit),
            "stats" => Ok(ProtoRequest::Stats),
            "metrics" => Ok(ProtoRequest::Metrics),
            "slowlog" => Ok(ProtoRequest::SlowLog),
            "events" => {
                let since = match value.get("since") {
                    None => 0,
                    Some(since) => since
                        .as_u64()
                        .ok_or_else(|| ProtoError::new("field 'since' must be an integer"))?,
                };
                Ok(ProtoRequest::Events { since })
            }
            "commit" => {
                let trace = match value.get("trace") {
                    None => false,
                    Some(trace) if trace.is_null() => false,
                    Some(trace) => trace
                        .as_bool()
                        .ok_or_else(|| ProtoError::new("field 'trace' must be a boolean"))?,
                };
                Ok(ProtoRequest::Commit { trace })
            }
            "checkpoint" => Ok(ProtoRequest::Checkpoint),
            "warm" => {
                let ks = value
                    .get("ks")
                    .and_then(Json::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .map(|item| {
                                item.as_u64()
                                    .filter(|&k| k <= u32::MAX as u64)
                                    .map(|k| k as u32)
                            })
                            .collect::<Option<Vec<u32>>>()
                    })
                    .unwrap_or(Some(Vec::new()))
                    .ok_or_else(|| {
                        ProtoError::new("'ks' entries must be integers fitting in 32 bits")
                    })?;
                Ok(ProtoRequest::Warm(ks))
            }
            "core" => {
                let (q, k) = u32_pair(value, cmd, "q", "k")?;
                Ok(ProtoRequest::Core { q, k })
            }
            "add_edge" => {
                let (u, v) = u32_pair(value, cmd, "u", "v")?;
                Ok(ProtoRequest::AddEdge { u, v })
            }
            "remove_edge" => {
                let (u, v) = u32_pair(value, cmd, "u", "v")?;
                Ok(ProtoRequest::RemoveEdge { u, v })
            }
            "add_vertex" => {
                let (Some(x), Some(y)) = (
                    value.get("x").and_then(Json::as_f64),
                    value.get("y").and_then(Json::as_f64),
                ) else {
                    return Err(ProtoError::new(
                        "'add_vertex' needs numeric fields 'x' and 'y'",
                    ));
                };
                Ok(ProtoRequest::AddVertex { x, y })
            }
            "move_vertex" => {
                let (Some(v), Some(x), Some(y)) = (
                    value.get("v").and_then(Json::as_u64),
                    value.get("x").and_then(Json::as_f64),
                    value.get("y").and_then(Json::as_f64),
                ) else {
                    return Err(ProtoError::new(
                        "'move_vertex' needs numeric fields 'v', 'x' and 'y'",
                    ));
                };
                if v > u32::MAX as u64 {
                    return Err(ProtoError::new("'v' must fit in 32 bits"));
                }
                Ok(ProtoRequest::MoveVertex { v: v as u32, x, y })
            }
            other => Err(ProtoError::new(format!("unknown command '{other}'"))),
        }
    }

    /// Decodes one LDJSON line.
    pub fn parse_line(line: &str) -> Result<ProtoRequest, ProtoError> {
        let value = Json::parse(line).map_err(|e| ProtoError::new(e.to_string()))?;
        ProtoRequest::from_json(&value)
    }
}

/// Response-encoding options a transport/service is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Include community member lists (can be large).
    pub members: bool,
    /// Include wall-clock timing fields (`micros`).  Disable for
    /// deterministic, byte-comparable output (the transport-equivalence
    /// suite does).
    pub timing: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            members: true,
            timing: true,
        }
    }
}

/// Encodes a [`TraceNode`] span tree as nested JSON objects (`children` is
/// omitted on leaves).  Only ever emitted under `timing: true` — span trees
/// are wall-clock facts.
fn trace_node_to_json(node: &TraceNode) -> Json {
    let mut fields = vec![
        ("name", Json::Str(node.name.clone())),
        ("start_micros", Json::Num(node.start_micros as f64)),
        ("micros", Json::Num(node.micros as f64)),
    ];
    if !node.children.is_empty() {
        fields.push((
            "children",
            Json::Arr(node.children.iter().map(trace_node_to_json).collect()),
        ));
    }
    obj(fields)
}

/// The community part of a [`QueryReply`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// The query failed with a per-query error.
    Error(String),
    /// No community satisfies the constraints.
    Infeasible,
    /// A community was found.
    Community {
        /// Number of members.
        size: usize,
        /// MCC radius.
        radius: f64,
        /// MCC centre `(x, y)`.
        center: (f64, f64),
        /// Sorted member ids (omitted under `members: false`).
        members: Option<Vec<u32>>,
    },
}

/// The typed reply to one SAC query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the query vertex.
    pub q: u32,
    /// Echo of the degree constraint.
    pub k: u32,
    /// The dispatched plan's wire label.
    pub plan: String,
    /// The outcome.
    pub result: QueryResult,
    /// Engine-assigned monotonic query id (`None` for queries that never
    /// reached an engine; omitted from the wire under `timing: false`, the
    /// determinism switch, because ids depend on serving history).
    pub query_id: Option<u64>,
    /// Service time in microseconds (`None` under `timing: false`).
    pub micros: Option<u64>,
    /// Whether the k-core cache was warm on arrival.
    pub cache_hit: bool,
    /// Epoch the query was answered against (0 when it never reached an
    /// engine, e.g. budget rejection at decode time).
    pub epoch: u64,
    /// Feasibility probes the executed algorithm issued (radius-sweep
    /// counters; 0 for cache-answered or rejected queries).
    pub probes: u64,
    /// Spatial candidates its sweeps materialised (the amortisation
    /// denominator of the probe count).
    pub candidates: u64,
    /// Spatial shards of the serving epoch (0 = unsharded engine; the shard
    /// fields are omitted from the wire encoding in that case).
    pub shard_count: u32,
    /// Shards this query's execution involved (1 = single-shard fast path).
    pub shards_touched: u32,
    /// The approximation ratio the dispatched plan guarantees, when any.
    pub ratio: Option<f64>,
    /// Full span tree of the query (requested via `"trace":true` or
    /// head-sampled by the engine; omitted from the wire under
    /// `timing: false`, since span durations are wall-clock facts).
    pub trace: Option<TraceNode>,
}

impl QueryReply {
    /// Builds the wire reply from an engine response.
    pub fn from_response(response: &SacResponse, options: EncodeOptions) -> QueryReply {
        let result = match &response.outcome {
            Err(e) => QueryResult::Error(e.to_string()),
            Ok(None) => QueryResult::Infeasible,
            Ok(Some(community)) => QueryResult::Community {
                size: community.len(),
                radius: community.radius(),
                center: (community.mcc.center.x, community.mcc.center.y),
                members: options.members.then(|| community.members().to_vec()),
            },
        };
        QueryReply {
            id: response.id,
            q: response.q,
            k: response.k,
            plan: response.plan.label(),
            result,
            query_id: Some(response.trace.query_id),
            micros: options.timing.then_some(response.micros),
            cache_hit: response.trace.cache_hit,
            epoch: response.trace.epoch,
            probes: response.trace.probe_count,
            candidates: response.trace.candidate_count,
            shard_count: response.trace.shard_count,
            shards_touched: response.trace.shards_touched,
            ratio: response.trace.guaranteed_ratio,
            trace: response.trace.tree.clone(),
        }
    }

    /// A reply for a query rejected before reaching an engine (e.g. a budget
    /// the validating builder refused).
    pub fn rejected(spec: &QuerySpec, fallback_id: u64, error: &sac_core::SacError) -> QueryReply {
        QueryReply {
            id: spec.resolved_id(fallback_id),
            q: spec.q,
            k: spec.k,
            plan: "rejected".to_string(),
            result: QueryResult::Error(error.to_string()),
            query_id: None,
            micros: None,
            cache_hit: false,
            epoch: 0,
            probes: 0,
            candidates: 0,
            shard_count: 0,
            shards_touched: 0,
            ratio: None,
            trace: None,
        }
    }

    fn to_json(&self, options: EncodeOptions) -> Json {
        let mut fields = vec![
            (
                "ok",
                Json::Bool(!matches!(self.result, QueryResult::Error(_))),
            ),
            ("id", Json::Num(self.id as f64)),
            ("q", Json::Num(self.q as f64)),
            ("k", Json::Num(self.k as f64)),
            ("plan", Json::Str(self.plan.clone())),
        ];
        match &self.result {
            QueryResult::Error(message) => {
                fields.push(("error", Json::Str(message.clone())));
            }
            QueryResult::Infeasible => {
                fields.push(("feasible", Json::Bool(false)));
            }
            QueryResult::Community {
                size,
                radius,
                center,
                members,
            } => {
                fields.push(("feasible", Json::Bool(true)));
                fields.push(("size", Json::Num(*size as f64)));
                fields.push(("radius", Json::Num(*radius)));
                fields.push((
                    "center",
                    Json::Arr(vec![Json::Num(center.0), Json::Num(center.1)]),
                ));
                if let Some(members) = members {
                    fields.push((
                        "members",
                        Json::Arr(members.iter().map(|&v| Json::Num(v as f64)).collect()),
                    ));
                }
            }
        }
        if options.timing {
            if let Some(query_id) = self.query_id {
                fields.push(("query_id", Json::Num(query_id as f64)));
            }
            if let Some(micros) = self.micros {
                fields.push(("micros", Json::Num(micros as f64)));
            }
        }
        fields.push(("cache_hit", Json::Bool(self.cache_hit)));
        fields.push(("epoch", Json::Num(self.epoch as f64)));
        fields.push(("probes", Json::Num(self.probes as f64)));
        fields.push(("candidates", Json::Num(self.candidates as f64)));
        // Shard fields appear only on sharded engines, keeping the unsharded
        // wire layout byte-stable.
        if self.shard_count > 0 {
            fields.push(("shards", Json::Num(self.shard_count as f64)));
            fields.push(("shards_touched", Json::Num(self.shards_touched as f64)));
        }
        if let Some(ratio) = self.ratio {
            fields.push(("ratio", Json::Num(ratio)));
        }
        if options.timing {
            if let Some(trace) = &self.trace {
                fields.push(("trace", trace_node_to_json(trace)));
            }
        }
        obj(fields)
    }
}

/// Per-shard serving counters of a `stats` reply (deterministic: no timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStatsReply {
    /// Shard id.
    pub shard: u32,
    /// Epoch in which this shard's snapshot was last rebuilt.
    pub epoch: u64,
    /// Single-shard fast-path queries executed on this shard.
    pub queries: u64,
    /// Epoch publishes that carried this shard's snapshot unchanged.
    pub carries: u64,
    /// Epoch publishes that rebuilt this shard's snapshot.
    pub rebuilds: u64,
    /// Edges of the shard's induced subgraph.
    pub edges: usize,
}

/// One labelled latency summary of a `stats` reply (per latency tier or per
/// algorithm), extracted from the engine's lock-free histograms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyStatsReply {
    /// Series label (tier wire name or algorithm registry name).
    pub label: String,
    /// Observations recorded.
    pub count: u64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
    /// Largest observation, microseconds (exact).
    pub max_micros: u64,
}

impl LatencyStatsReply {
    fn from_stats(stats: &LatencyStats) -> LatencyStatsReply {
        LatencyStatsReply {
            label: stats.label.to_string(),
            count: stats.summary.count,
            p50_micros: stats.summary.p50_micros,
            p95_micros: stats.summary.p95_micros,
            p99_micros: stats.summary.p99_micros,
            max_micros: stats.summary.max_micros,
        }
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("count", Json::Num(self.count as f64)),
            ("p50_micros", Json::Num(self.p50_micros as f64)),
            ("p95_micros", Json::Num(self.p95_micros as f64)),
            ("p99_micros", Json::Num(self.p99_micros as f64)),
            ("max_micros", Json::Num(self.max_micros as f64)),
        ])
    }
}

/// The WAL section of a `stats` reply (present only when the engine runs
/// with durability enabled).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalStatsReply {
    /// Configured sync policy, rendered (`always`, `never`, `every_n`).
    pub sync: String,
    /// Live log segment files on disk.
    pub segments: u64,
    /// Bytes across segment files.
    pub log_bytes: u64,
    /// Bytes across snapshot files.
    pub snapshot_bytes: u64,
    /// Epoch captured by the newest snapshot checkpoint.
    pub last_checkpoint_epoch: u64,
    /// Records appended since this process opened the log.
    pub appended_records: u64,
    /// Epoch of the engine's served (durably applied) state — what a
    /// replication follower of this node would converge to.
    pub last_applied_epoch: u64,
    /// Segment id of the WAL tail (where the next record lands).
    pub tail_segment: u64,
    /// Byte offset of the WAL tail within `tail_segment`.
    pub tail_offset: u64,
}

impl WalStatsReply {
    fn to_json(&self) -> Json {
        obj(vec![
            ("sync", Json::Str(self.sync.clone())),
            ("segments", Json::Num(self.segments as f64)),
            ("log_bytes", Json::Num(self.log_bytes as f64)),
            ("snapshot_bytes", Json::Num(self.snapshot_bytes as f64)),
            (
                "last_checkpoint_epoch",
                Json::Num(self.last_checkpoint_epoch as f64),
            ),
            ("appended_records", Json::Num(self.appended_records as f64)),
            (
                "last_applied_epoch",
                Json::Num(self.last_applied_epoch as f64),
            ),
            ("tail_segment", Json::Num(self.tail_segment as f64)),
            ("tail_offset", Json::Num(self.tail_offset as f64)),
        ])
    }
}

/// The replication section of a `stats` reply (present only on a replica
/// booted with `--replicate-from`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicationStatsReply {
    /// Address of the primary this replica tails.
    pub primary: String,
    /// Whether the replication link is currently established.
    pub connected: bool,
    /// Whether the replica has degraded: the primary has been unreachable
    /// past the staleness threshold (it keeps serving reads at its last
    /// applied epoch).
    pub degraded: bool,
    /// Newest epoch the replica has applied and serves.
    pub last_applied_epoch: u64,
    /// Newest primary epoch the link has observed (via heartbeats).
    pub primary_epoch: u64,
    /// `primary_epoch - last_applied_epoch` (0 when caught up or when no
    /// heartbeat has arrived yet).
    pub lag_epochs: u64,
    /// Seconds since the link last heard from the primary.
    pub stale_secs: u64,
    /// Times the link reconnected (after the initial connection).
    pub reconnects: u64,
    /// Delta records applied through the link.
    pub records_applied: u64,
    /// Full snapshot re-bootstraps (the resume position had been truncated
    /// by a primary checkpoint).
    pub snapshot_bootstraps: u64,
    /// Highest leadership term observed on the link (0 before the first
    /// heartbeat from a failover-aware primary).
    pub term: u64,
}

impl ReplicationStatsReply {
    /// The JSON object embedded in `stats` replies and `/healthz` bodies.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("primary", Json::Str(self.primary.clone())),
            ("connected", Json::Bool(self.connected)),
            ("degraded", Json::Bool(self.degraded)),
            (
                "last_applied_epoch",
                Json::Num(self.last_applied_epoch as f64),
            ),
            ("primary_epoch", Json::Num(self.primary_epoch as f64)),
            ("lag_epochs", Json::Num(self.lag_epochs as f64)),
            ("stale_secs", Json::Num(self.stale_secs as f64)),
            ("reconnects", Json::Num(self.reconnects as f64)),
            ("records_applied", Json::Num(self.records_applied as f64)),
            (
                "snapshot_bootstraps",
                Json::Num(self.snapshot_bootstraps as f64),
            ),
            ("term", Json::Num(self.term as f64)),
        ])
    }
}

/// The typed reply to a `stats` command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Vertices in the served snapshot.
    pub vertices: usize,
    /// Edges in the served snapshot.
    pub edges: usize,
    /// Currently served epoch.
    pub epoch: u64,
    /// Leadership term the engine serves under (0 until failover stamps
    /// one; the `term` key is then omitted from the wire encoding, keeping
    /// pre-failover stats lines byte-stable).
    pub term: u64,
    /// Snapshots published over the engine's lifetime.
    pub epochs_published: u64,
    /// Mutations buffered since the last commit.
    pub pending_mutations: usize,
    /// Queries answered.
    pub queries: u64,
    /// Queries short-circuited by the cache feasibility check.
    pub infeasible_fast_path: u64,
    /// Queries that returned a per-query error.
    pub errors: u64,
    /// Decomposition-cache hits.
    pub decomp_hits: u64,
    /// Decomposition-cache misses.
    pub decomp_misses: u64,
    /// Per-`k` component-index hits.
    pub component_hits: u64,
    /// Per-`k` component-index misses.
    pub component_misses: u64,
    /// Component indexes carried across epoch swaps.
    pub components_carried: u64,
    /// Component indexes invalidated at epoch swaps.
    pub components_invalidated: u64,
    /// Spatial shards served (0 = unsharded; shard fields are then omitted
    /// from the wire encoding).
    pub shard_count: u32,
    /// Queries answered on a single shard's induced snapshot.
    pub single_shard_queries: u64,
    /// Dispatched queries that fell back to the global snapshot.
    pub fallback_queries: u64,
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStatsReply>,
    /// Seconds since the serving process started (`None` when the transport
    /// has no process clock; omitted under `timing: false`).
    pub uptime_secs: Option<u64>,
    /// Per-latency-tier end-to-end latency summaries (empty when the engine
    /// runs with observability disabled; omitted under `timing: false`).
    pub tier_latency: Vec<LatencyStatsReply>,
    /// Per-algorithm end-to-end latency summaries.
    pub algorithm_latency: Vec<LatencyStatsReply>,
    /// Windowed ("last 10s") per-tier latency summaries — the rotating-ring
    /// counterpart of `tier_latency` (empty when observability is disabled;
    /// omitted under `timing: false`).
    pub windowed_tier_latency: Vec<LatencyStatsReply>,
    /// Wall-clock span the windowed summaries cover, in microseconds.
    pub window_span_micros: u64,
    /// Write-ahead-log facts (`None` when the engine runs without
    /// durability; the `wal` object is then omitted from the wire encoding).
    pub wal: Option<WalStatsReply>,
    /// Replication-link facts (`None` except on a replica; the
    /// `replication` object is then omitted from the wire encoding).
    pub replication: Option<ReplicationStatsReply>,
}

impl StatsReply {
    /// Builds the wire reply from engine counters plus snapshot/front facts.
    pub fn from_stats(
        stats: &EngineStats,
        vertices: usize,
        edges: usize,
        pending_mutations: usize,
    ) -> StatsReply {
        StatsReply {
            vertices,
            edges,
            epoch: stats.epoch,
            term: stats.term,
            epochs_published: stats.epochs_published,
            pending_mutations,
            queries: stats.queries,
            infeasible_fast_path: stats.infeasible_fast_path,
            errors: stats.errors,
            decomp_hits: stats.cache.decomposition.hits,
            decomp_misses: stats.cache.decomposition.misses,
            component_hits: stats.cache.components.hits,
            component_misses: stats.cache.components.misses,
            components_carried: stats.components_carried,
            components_invalidated: stats.components_invalidated,
            shard_count: stats.shard_count,
            single_shard_queries: stats.single_shard_queries,
            fallback_queries: stats.fallback_queries,
            shards: stats
                .shards
                .iter()
                .map(|s| ShardStatsReply {
                    shard: s.shard,
                    epoch: s.epoch,
                    queries: s.queries,
                    carries: s.carries,
                    rebuilds: s.rebuilds,
                    edges: s.edges,
                })
                .collect(),
            uptime_secs: None,
            tier_latency: stats
                .tier_latency
                .iter()
                .map(LatencyStatsReply::from_stats)
                .collect(),
            algorithm_latency: stats
                .algorithm_latency
                .iter()
                .map(LatencyStatsReply::from_stats)
                .collect(),
            windowed_tier_latency: stats
                .windowed_tier_latency
                .iter()
                .map(LatencyStatsReply::from_stats)
                .collect(),
            window_span_micros: stats.window_span_micros,
            wal: None,
            replication: None,
        }
    }

    fn to_json(&self, options: EncodeOptions) -> Json {
        let mut fields = obj_stats_fields(self);
        if self.term > 0 {
            fields.push(("term", Json::Num(self.term as f64)));
        }
        if self.shard_count > 0 {
            fields.push(("shard_count", Json::Num(self.shard_count as f64)));
            fields.push((
                "single_shard_queries",
                Json::Num(self.single_shard_queries as f64),
            ));
            fields.push(("fallback_queries", Json::Num(self.fallback_queries as f64)));
            fields.push((
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("shard", Json::Num(s.shard as f64)),
                                ("epoch", Json::Num(s.epoch as f64)),
                                ("queries", Json::Num(s.queries as f64)),
                                ("carries", Json::Num(s.carries as f64)),
                                ("rebuilds", Json::Num(s.rebuilds as f64)),
                                ("edges", Json::Num(s.edges as f64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(wal) = &self.wal {
            fields.push(("wal", wal.to_json()));
        }
        if let Some(replication) = &self.replication {
            fields.push(("replication", replication.to_json()));
        }
        // Latency summaries and uptime are wall-clock facts: they follow the
        // `timing` determinism switch exactly like per-query `micros`.
        if options.timing {
            if let Some(uptime) = self.uptime_secs {
                fields.push(("uptime_secs", Json::Num(uptime as f64)));
            }
            if !self.tier_latency.is_empty() {
                fields.push((
                    "tier_latency",
                    Json::Arr(self.tier_latency.iter().map(|l| l.to_json()).collect()),
                ));
            }
            if !self.algorithm_latency.is_empty() {
                fields.push((
                    "algorithm_latency",
                    Json::Arr(self.algorithm_latency.iter().map(|l| l.to_json()).collect()),
                ));
            }
            if !self.windowed_tier_latency.is_empty() {
                fields.push((
                    "window",
                    obj(vec![
                        ("span_micros", Json::Num(self.window_span_micros as f64)),
                        (
                            "tier_latency",
                            Json::Arr(
                                self.windowed_tier_latency
                                    .iter()
                                    .map(|l| l.to_json())
                                    .collect(),
                            ),
                        ),
                    ]),
                ));
            }
        }
        obj(fields)
    }
}

/// The shard-independent `stats` fields, in their historical order.
fn obj_stats_fields(s: &StatsReply) -> Vec<(&'static str, Json)> {
    vec![
        ("ok", Json::Bool(true)),
        ("vertices", Json::Num(s.vertices as f64)),
        ("edges", Json::Num(s.edges as f64)),
        ("epoch", Json::Num(s.epoch as f64)),
        ("epochs_published", Json::Num(s.epochs_published as f64)),
        ("pending_mutations", Json::Num(s.pending_mutations as f64)),
        ("queries", Json::Num(s.queries as f64)),
        (
            "infeasible_fast_path",
            Json::Num(s.infeasible_fast_path as f64),
        ),
        ("errors", Json::Num(s.errors as f64)),
        ("decomp_hits", Json::Num(s.decomp_hits as f64)),
        ("decomp_misses", Json::Num(s.decomp_misses as f64)),
        ("component_hits", Json::Num(s.component_hits as f64)),
        ("component_misses", Json::Num(s.component_misses as f64)),
        ("components_carried", Json::Num(s.components_carried as f64)),
        (
            "components_invalidated",
            Json::Num(s.components_invalidated as f64),
        ),
    ]
}

/// The typed reply to an `add_edge`/`remove_edge` mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReply {
    /// Whether the mutation changed the graph (`false` for self-loops,
    /// duplicate inserts and absent removals).
    pub applied: bool,
    /// Vertices whose core number changed.
    pub cores_changed: usize,
    /// Mutations buffered since the last commit.
    pub pending: usize,
}

/// The typed reply to an `add_vertex` mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexReply {
    /// Id of the new vertex.
    pub vertex: u32,
    /// Mutations buffered since the last commit.
    pub pending: usize,
}

/// The typed reply to a `commit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReply {
    /// Epoch now being served.
    pub epoch: u64,
    /// Mutations applied in this delta.
    pub mutations: usize,
    /// Edge insertions among them.
    pub edges_inserted: usize,
    /// Edge removals among them.
    pub edges_removed: usize,
    /// Vertex additions among them.
    pub vertices_added: usize,
    /// Vertex moves (position-only updates) among them.
    pub vertices_moved: usize,
    /// Core-number changes across the delta.
    pub cores_changed: u64,
    /// Largest `k` whose k-core the delta may have touched.
    pub dirty_up_to: u32,
    /// Component indexes carried across the swap.
    pub components_carried: u64,
    /// Component indexes invalidated by the swap.
    pub components_invalidated: u64,
    /// Shard snapshots rebuilt for the new epoch (0 on unsharded engines).
    pub shards_rebuilt: u32,
    /// Shard snapshots carried unchanged across the swap.
    pub shards_carried: u32,
    /// Commit wall-clock cost in microseconds (`None` under `timing: false`).
    pub micros: Option<u64>,
    /// Stage-level commit trace (`Some` only when the request asked for one;
    /// encoded only under `timing: true`).
    pub trace: Option<TraceNode>,
}

/// The typed reply to a `checkpoint` admin command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReply {
    /// Epoch the snapshot captured.
    pub epoch: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
    /// Shard frames re-encoded for this snapshot.
    pub frames_encoded: u32,
    /// Shard frames reused verbatim from the previous checkpoint.
    pub frames_reused: u32,
    /// Log segments deleted (their records are covered by the snapshot).
    pub segments_removed: u64,
    /// Checkpoint wall-clock cost in microseconds (`None` under
    /// `timing: false`).
    pub micros: Option<u64>,
}

/// The typed reply to a `slowlog` command: a snapshot of the engine's
/// slow-query ring buffer, oldest first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlowLogReply {
    /// Capture threshold (microseconds; 0 = capture disabled).
    pub threshold_micros: u64,
    /// Records evicted from the ring since startup.
    pub dropped: u64,
    /// The captured records, oldest first.
    pub entries: Vec<SlowQueryRecord>,
}

impl SlowLogReply {
    fn to_json(&self, options: EncodeOptions) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("query_id", Json::Num(e.query_id as f64)),
                    ("plan", Json::Str(e.plan.clone())),
                    ("tier", Json::Str(e.tier.clone())),
                    ("epoch", Json::Num(e.epoch as f64)),
                    ("cache_hit", Json::Bool(e.cache_hit)),
                    ("probes", Json::Num(e.probe_count as f64)),
                    ("candidates", Json::Num(e.candidate_count as f64)),
                ];
                if e.shard_count > 0 {
                    fields.push(("shards", Json::Num(e.shard_count as f64)));
                    fields.push(("shards_touched", Json::Num(e.shards_touched as f64)));
                    if let Some(shard) = e.shard {
                        fields.push(("shard", Json::Num(shard as f64)));
                    }
                }
                if options.timing {
                    fields.push(("micros", Json::Num(e.total_micros as f64)));
                    fields.push(("plan_micros", Json::Num(e.plan_micros as f64)));
                    fields.push(("exec_micros", Json::Num(e.exec_micros as f64)));
                    if let Some(trace) = &e.trace {
                        fields.push(("trace", trace_node_to_json(trace)));
                    }
                }
                obj(fields)
            })
            .collect();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("threshold_micros", Json::Num(self.threshold_micros as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            ("entries", Json::Arr(entries)),
        ])
    }
}

/// The typed reply to an `events` command: a page of the engine's structured
/// event log starting at the requested cursor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventsReply {
    /// Events at or after the requested cursor, oldest first.
    pub events: Vec<sac_engine::EventRecord>,
    /// Cursor to pass as `since` on the next poll.
    pub next_seq: u64,
    /// Events evicted between the cursor and the oldest retained record.
    pub missed: u64,
}

impl EventsReply {
    /// Builds the reply from an engine-side [`EventBatch`].
    pub fn from_batch(batch: EventBatch) -> EventsReply {
        EventsReply {
            events: batch.events,
            next_seq: batch.next_seq,
            missed: batch.missed,
        }
    }

    fn to_json(&self, options: EncodeOptions) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("seq", Json::Num(e.seq as f64)),
                    ("kind", Json::Str(e.kind.to_string())),
                    ("detail", Json::Str(e.detail.clone())),
                ];
                if options.timing {
                    fields.push(("at_micros", Json::Num(e.at_micros as f64)));
                }
                obj(fields)
            })
            .collect();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("next_seq", Json::Num(self.next_seq as f64)),
            ("missed", Json::Num(self.missed as f64)),
            ("events", Json::Arr(events)),
        ])
    }
}

/// The typed reply to a `core` structural query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreReply {
    /// Sorted members of the connected k-core containing `q`, or `None` when
    /// `q` is in no k-core.
    pub members: Option<Vec<u32>>,
}

/// A decoded protocol response — what a transport encodes back to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoResponse {
    /// Reply to one query.
    Query(QueryReply),
    /// Replies to a batch, in request order.
    Batch(Vec<QueryReply>),
    /// Reply to `stats`.
    Stats(StatsReply),
    /// Reply to `metrics`: the Prometheus text exposition (served raw on
    /// `GET /metrics`, embedded as a JSON string on the LDJSON transport).
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// Reply to `slowlog`.
    SlowLog(SlowLogReply),
    /// Reply to `events`.
    Events(EventsReply),
    /// Reply to `add_edge`/`remove_edge`.
    Mutation(MutationReply),
    /// Reply to `add_vertex`.
    Vertex(VertexReply),
    /// Reply to `commit`.
    Commit(CommitReply),
    /// Reply to `checkpoint`.
    Checkpoint(CheckpointReply),
    /// Reply to `warm`.
    Warmed {
        /// Number of `k` values warmed.
        count: usize,
    },
    /// Reply to `core`.
    Core {
        /// The structural result.
        reply: CoreReply,
        /// Whether member lists are included (`members: false` strips them).
        include_members: bool,
    },
    /// A transport- or command-level error.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// A typed rejection pointing the client at another node: a read-only
    /// replica answers every mutation command with this, naming the primary
    /// that accepts writes.
    Redirect {
        /// Why the command was rejected here.
        message: String,
        /// Address of the node that accepts the command.
        primary: String,
    },
}

impl ProtoResponse {
    /// An error response.
    pub fn error(message: impl Into<String>) -> ProtoResponse {
        ProtoResponse::Error {
            message: message.into(),
        }
    }

    /// A redirect-to-primary response (replicas reject mutations with this).
    pub fn redirect(message: impl Into<String>, primary: impl Into<String>) -> ProtoResponse {
        ProtoResponse::Redirect {
            message: message.into(),
            primary: primary.into(),
        }
    }

    /// Encodes the response as a JSON document, honouring `options`.
    pub fn to_json(&self, options: EncodeOptions) -> Json {
        match self {
            ProtoResponse::Query(reply) => reply.to_json(options),
            ProtoResponse::Batch(replies) => {
                Json::Arr(replies.iter().map(|r| r.to_json(options)).collect())
            }
            ProtoResponse::Stats(stats) => stats.to_json(options),
            ProtoResponse::Metrics { text } => obj(vec![
                ("ok", Json::Bool(true)),
                ("metrics", Json::Str(text.clone())),
            ]),
            ProtoResponse::SlowLog(slowlog) => slowlog.to_json(options),
            ProtoResponse::Events(events) => events.to_json(options),
            ProtoResponse::Mutation(m) => obj(vec![
                ("ok", Json::Bool(true)),
                ("applied", Json::Bool(m.applied)),
                ("cores_changed", Json::Num(m.cores_changed as f64)),
                ("pending", Json::Num(m.pending as f64)),
            ]),
            ProtoResponse::Vertex(v) => obj(vec![
                ("ok", Json::Bool(true)),
                ("vertex", Json::Num(v.vertex as f64)),
                ("pending", Json::Num(v.pending as f64)),
            ]),
            ProtoResponse::Commit(c) => {
                let mut fields = vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Num(c.epoch as f64)),
                    ("mutations", Json::Num(c.mutations as f64)),
                    ("edges_inserted", Json::Num(c.edges_inserted as f64)),
                    ("edges_removed", Json::Num(c.edges_removed as f64)),
                    ("vertices_added", Json::Num(c.vertices_added as f64)),
                    ("vertices_moved", Json::Num(c.vertices_moved as f64)),
                    ("cores_changed", Json::Num(c.cores_changed as f64)),
                    ("dirty_up_to", Json::Num(c.dirty_up_to as f64)),
                    ("components_carried", Json::Num(c.components_carried as f64)),
                    (
                        "components_invalidated",
                        Json::Num(c.components_invalidated as f64),
                    ),
                ];
                if c.shards_rebuilt + c.shards_carried > 0 {
                    fields.push(("shards_rebuilt", Json::Num(c.shards_rebuilt as f64)));
                    fields.push(("shards_carried", Json::Num(c.shards_carried as f64)));
                }
                if options.timing {
                    if let Some(micros) = c.micros {
                        fields.push(("micros", Json::Num(micros as f64)));
                    }
                    if let Some(trace) = &c.trace {
                        fields.push(("trace", trace_node_to_json(trace)));
                    }
                }
                obj(fields)
            }
            ProtoResponse::Checkpoint(c) => {
                let mut fields = vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Num(c.epoch as f64)),
                    ("snapshot_bytes", Json::Num(c.snapshot_bytes as f64)),
                    ("frames_encoded", Json::Num(c.frames_encoded as f64)),
                    ("frames_reused", Json::Num(c.frames_reused as f64)),
                    ("segments_removed", Json::Num(c.segments_removed as f64)),
                ];
                if options.timing {
                    if let Some(micros) = c.micros {
                        fields.push(("micros", Json::Num(micros as f64)));
                    }
                }
                obj(fields)
            }
            ProtoResponse::Warmed { count } => obj(vec![
                ("ok", Json::Bool(true)),
                ("warmed", Json::Num(*count as f64)),
            ]),
            ProtoResponse::Core {
                reply,
                include_members,
            } => match &reply.members {
                None => obj(vec![
                    ("ok", Json::Bool(true)),
                    ("feasible", Json::Bool(false)),
                ]),
                Some(members) => {
                    let mut fields = vec![
                        ("ok", Json::Bool(true)),
                        ("feasible", Json::Bool(true)),
                        ("size", Json::Num(members.len() as f64)),
                    ];
                    if *include_members {
                        fields.push((
                            "members",
                            Json::Arr(members.iter().map(|&v| Json::Num(v as f64)).collect()),
                        ));
                    }
                    obj(fields)
                }
            },
            ProtoResponse::Error { message } => obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.clone())),
            ]),
            ProtoResponse::Redirect { message, primary } => obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(message.clone())),
                ("redirect_to", Json::Str(primary.clone())),
            ]),
        }
    }

    /// Encodes the response as one LDJSON line (no trailing newline).
    pub fn encode_line(&self, options: EncodeOptions) -> String {
        self.to_json(options).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_engine::LatencyTier;

    #[test]
    fn decodes_queries_batches_and_commands() {
        let query = ProtoRequest::parse_line(
            r#"{"id":3,"q":17,"k":4,"ratio":1.5,"tier":"interactive","theta":0.25,"algorithm":"global"}"#,
        )
        .unwrap();
        let ProtoRequest::Query(spec) = query else {
            panic!("expected a query");
        };
        assert_eq!(spec.id, Some(3));
        assert_eq!((spec.q, spec.k), (17, 4));
        assert_eq!(spec.ratio, Some(1.5));
        assert_eq!(spec.tier, Some(LatencyTier::Interactive));
        assert_eq!(spec.theta, Some(0.25));
        assert_eq!(spec.algorithm.as_deref(), Some("global"));
        let request = spec.to_request(0).unwrap();
        assert_eq!(request.id, 3);
        assert_eq!(request.budget.theta, Some(0.25));
        assert_eq!(request.algorithm.as_deref(), Some("global"));

        let batch = ProtoRequest::parse_line(r#"[{"q":1,"k":2},{"q":2,"k":2}]"#).unwrap();
        assert!(matches!(batch, ProtoRequest::Batch(specs) if specs.len() == 2));

        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"stats"}"#).unwrap(),
            ProtoRequest::Stats
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"metrics"}"#).unwrap(),
            ProtoRequest::Metrics
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"slowlog"}"#).unwrap(),
            ProtoRequest::SlowLog
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"warm","ks":[2,4]}"#).unwrap(),
            ProtoRequest::Warm(vec![2, 4])
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"add_edge","u":1,"v":2}"#).unwrap(),
            ProtoRequest::AddEdge { u: 1, v: 2 }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"add_vertex","x":0.5,"y":-0.5}"#).unwrap(),
            ProtoRequest::AddVertex { x: 0.5, y: -0.5 }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"move_vertex","v":3,"x":1.5,"y":2.5}"#).unwrap(),
            ProtoRequest::MoveVertex {
                v: 3,
                x: 1.5,
                y: 2.5
            }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"quit"}"#).unwrap(),
            ProtoRequest::Quit
        );
    }

    #[test]
    fn decode_errors_are_typed_and_descriptive() {
        for (line, needle) in [
            (r#"{"k":2}"#, "field 'q'"),
            (r#"{"q":1}"#, "field 'k'"),
            (r#"{"q":99999999999,"k":2}"#, "32 bits"),
            (r#"{"q":1,"k":2,"ratio":"fast"}"#, "'ratio'"),
            (r#"{"q":1,"k":2,"tier":"warp"}"#, "latency tier"),
            (r#"{"q":1,"k":2,"theta":"wide"}"#, "'theta'"),
            (r#"{"q":1,"k":2,"algorithm":7}"#, "'algorithm'"),
            (r#"{"cmd":"frobnicate"}"#, "unknown command"),
            (r#"{"cmd":"add_edge","u":1}"#, "'u' and 'v'"),
            (r#"{"cmd":"move_vertex","v":1,"x":0.5}"#, "'v', 'x' and 'y'"),
            (
                r#"{"cmd":"move_vertex","v":99999999999,"x":0,"y":0}"#,
                "32 bits",
            ),
            (r#"{"cmd":"warm","ks":[1.5]}"#, "'ks'"),
            ("{not json", "parse error"),
        ] {
            let err = ProtoRequest::parse_line(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "error for {line} should mention {needle}, got: {err}"
            );
        }
        // Budget *values* decode fine and fail later, at request construction.
        let ProtoRequest::Query(spec) =
            ProtoRequest::parse_line(r#"{"q":1,"k":2,"ratio":0.5}"#).unwrap()
        else {
            panic!("expected a query");
        };
        assert_eq!(
            spec.to_request(0),
            Err(sac_core::SacError::InvalidRatio(0.5))
        );
    }

    #[test]
    fn replies_encode_with_stable_field_layout() {
        let reply = QueryReply {
            id: 7,
            q: 1,
            k: 2,
            plan: "app_inc".to_string(),
            result: QueryResult::Community {
                size: 3,
                radius: 1.25,
                center: (0.5, 0.25),
                members: Some(vec![1, 2, 3]),
            },
            query_id: Some(11),
            micros: Some(42),
            cache_hit: true,
            epoch: 2,
            probes: 9,
            candidates: 61,
            shard_count: 0,
            shards_touched: 0,
            ratio: Some(2.0),
            trace: None,
        };
        let line = ProtoResponse::Query(reply.clone()).encode_line(EncodeOptions::default());
        assert_eq!(
            line,
            r#"{"ok":true,"id":7,"q":1,"k":2,"plan":"app_inc","feasible":true,"size":3,"radius":1.25,"center":[0.5,0.25],"members":[1,2,3],"query_id":11,"micros":42,"cache_hit":true,"epoch":2,"probes":9,"candidates":61,"ratio":2}"#
        );
        // Sharded engines append the shard fields; unsharded layouts stay
        // byte-stable (asserted above: no "shards" key).
        let mut sharded = reply.clone();
        sharded.shard_count = 4;
        sharded.shards_touched = 1;
        let line = ProtoResponse::Query(sharded).encode_line(EncodeOptions::default());
        assert!(
            line.contains(r#""candidates":61,"shards":4,"shards_touched":1,"ratio":2"#),
            "got: {line}"
        );
        // Deterministic mode drops the volatile timing fields — including the
        // query id, which depends on serving history.
        let no_timing = ProtoResponse::Query(reply).encode_line(EncodeOptions {
            members: true,
            timing: false,
        });
        assert!(!no_timing.contains("micros"));
        assert!(!no_timing.contains("query_id"));

        let error = ProtoResponse::error("boom").encode_line(EncodeOptions::default());
        assert_eq!(error, r#"{"ok":false,"error":"boom"}"#);

        let redirect = ProtoResponse::redirect("read-only replica", "10.0.0.1:7878")
            .encode_line(EncodeOptions::default());
        assert_eq!(
            redirect,
            r#"{"ok":false,"error":"read-only replica","redirect_to":"10.0.0.1:7878"}"#
        );
    }

    #[test]
    fn wal_stats_and_checkpoint_replies_encode() {
        let timing = EncodeOptions::default();
        let no_timing = EncodeOptions {
            members: true,
            timing: false,
        };

        // No durability: the stats encoding has no `wal` object at all.
        let line = ProtoResponse::Stats(StatsReply::default()).encode_line(timing);
        assert!(!line.contains(r#""wal""#), "got: {line}");

        let stats = StatsReply {
            wal: Some(WalStatsReply {
                sync: "always".to_string(),
                segments: 2,
                log_bytes: 4096,
                snapshot_bytes: 1024,
                last_checkpoint_epoch: 7,
                appended_records: 31,
                last_applied_epoch: 38,
                tail_segment: 3,
                tail_offset: 512,
            }),
            ..StatsReply::default()
        };
        let line = ProtoResponse::Stats(stats).encode_line(timing);
        assert!(
            line.contains(
                r#""wal":{"sync":"always","segments":2,"log_bytes":4096,"snapshot_bytes":1024,"last_checkpoint_epoch":7,"appended_records":31,"last_applied_epoch":38,"tail_segment":3,"tail_offset":512}"#
            ),
            "got: {line}"
        );

        // Replicas append a `replication` object; everyone else stays
        // byte-stable with no such key (asserted above).
        let stats = StatsReply {
            replication: Some(ReplicationStatsReply {
                primary: "127.0.0.1:7900".to_string(),
                connected: true,
                degraded: false,
                last_applied_epoch: 12,
                primary_epoch: 13,
                lag_epochs: 1,
                stale_secs: 0,
                reconnects: 2,
                records_applied: 11,
                snapshot_bootstraps: 1,
                term: 3,
            }),
            ..StatsReply::default()
        };
        let line = ProtoResponse::Stats(stats).encode_line(timing);
        assert!(
            line.contains(
                r#""replication":{"primary":"127.0.0.1:7900","connected":true,"degraded":false,"last_applied_epoch":12,"primary_epoch":13,"lag_epochs":1,"stale_secs":0,"reconnects":2,"records_applied":11,"snapshot_bootstraps":1,"term":3}"#
            ),
            "got: {line}"
        );

        let reply = CheckpointReply {
            epoch: 9,
            snapshot_bytes: 2048,
            frames_encoded: 3,
            frames_reused: 1,
            segments_removed: 2,
            micros: Some(1234),
        };
        let line = ProtoResponse::Checkpoint(reply).encode_line(timing);
        assert_eq!(
            line,
            r#"{"ok":true,"epoch":9,"snapshot_bytes":2048,"frames_encoded":3,"frames_reused":1,"segments_removed":2,"micros":1234}"#
        );
        let line = ProtoResponse::Checkpoint(reply).encode_line(no_timing);
        assert!(!line.contains("micros"), "got: {line}");
    }

    #[test]
    fn observability_replies_honour_the_timing_switch() {
        let timing = EncodeOptions::default();
        let no_timing = EncodeOptions {
            members: true,
            timing: false,
        };

        let mut stats = StatsReply {
            uptime_secs: Some(9),
            ..StatsReply::default()
        };
        stats.tier_latency.push(LatencyStatsReply {
            label: "interactive".to_string(),
            count: 3,
            p50_micros: 48,
            p95_micros: 96,
            p99_micros: 96,
            max_micros: 80,
        });
        stats.windowed_tier_latency.push(LatencyStatsReply {
            label: "interactive".to_string(),
            count: 2,
            p50_micros: 48,
            p95_micros: 96,
            p99_micros: 96,
            max_micros: 80,
        });
        stats.window_span_micros = 2_000_000;
        let line = ProtoResponse::Stats(stats.clone()).encode_line(timing);
        assert!(line.contains(r#""uptime_secs":9"#), "got: {line}");
        assert!(
            line.contains(r#""tier_latency":[{"label":"interactive","count":3,"p50_micros":48"#),
            "got: {line}"
        );
        assert!(
            line.contains(
                r#""window":{"span_micros":2000000,"tier_latency":[{"label":"interactive","count":2"#
            ),
            "got: {line}"
        );
        let line = ProtoResponse::Stats(stats).encode_line(no_timing);
        assert!(!line.contains("uptime_secs"), "got: {line}");
        assert!(!line.contains("tier_latency"), "got: {line}");
        assert!(!line.contains("window"), "got: {line}");

        let slowlog = SlowLogReply {
            threshold_micros: 10_000,
            dropped: 1,
            entries: vec![SlowQueryRecord {
                query_id: 7,
                total_micros: 12_345,
                plan: "app_inc".to_string(),
                tier: "standard".to_string(),
                epoch: 2,
                shard: Some(1),
                shard_count: 4,
                shards_touched: 1,
                plan_micros: 45,
                exec_micros: 12_300,
                cache_hit: true,
                probe_count: 9,
                candidate_count: 61,
                trace: Some(TraceNode::new("query", 0, 12_345)),
            }],
        };
        let line = ProtoResponse::SlowLog(slowlog.clone()).encode_line(timing);
        assert!(
            line.starts_with(r#"{"ok":true,"threshold_micros":10000,"dropped":1,"entries":["#),
            "got: {line}"
        );
        assert!(line.contains(r#""query_id":7"#), "got: {line}");
        assert!(
            line.contains(r#""shards":4,"shards_touched":1,"shard":1"#),
            "got: {line}"
        );
        assert!(
            line.contains(r#""micros":12345,"plan_micros":45,"exec_micros":12300"#),
            "got: {line}"
        );
        assert!(
            line.contains(r#""trace":{"name":"query","start_micros":0,"micros":12345}"#),
            "got: {line}"
        );
        // The per-entry wall-clock fields follow the determinism switch; the
        // threshold is configuration, so it stays.
        let line = ProtoResponse::SlowLog(slowlog).encode_line(no_timing);
        assert!(!line.contains(r#""exec_micros""#), "got: {line}");
        assert!(!line.contains(r#""trace""#), "got: {line}");
        assert!(line.contains(r#""threshold_micros":10000"#), "got: {line}");

        let line = ProtoResponse::Metrics {
            text: "# TYPE x counter\nx 1\n".to_string(),
        }
        .encode_line(timing);
        assert_eq!(
            line,
            "{\"ok\":true,\"metrics\":\"# TYPE x counter\\nx 1\\n\"}"
        );
    }

    #[test]
    fn decodes_trace_and_events_commands() {
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"events"}"#).unwrap(),
            ProtoRequest::Events { since: 0 }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"events","since":3}"#).unwrap(),
            ProtoRequest::Events { since: 3 }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"commit"}"#).unwrap(),
            ProtoRequest::Commit { trace: false }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"commit","trace":true}"#).unwrap(),
            ProtoRequest::Commit { trace: true }
        );
        assert_eq!(
            ProtoRequest::parse_line(r#"{"cmd":"checkpoint"}"#).unwrap(),
            ProtoRequest::Checkpoint
        );
        let ProtoRequest::Query(spec) =
            ProtoRequest::parse_line(r#"{"q":1,"k":2,"trace":true}"#).unwrap()
        else {
            panic!("expected a query");
        };
        assert!(spec.trace);
        assert!(spec.to_request(0).unwrap().trace);
        let ProtoRequest::Query(spec) = ProtoRequest::parse_line(r#"{"q":1,"k":2}"#).unwrap()
        else {
            panic!("expected a query");
        };
        assert!(!spec.trace);
        for (line, needle) in [
            (r#"{"cmd":"events","since":"x"}"#, "'since'"),
            (r#"{"cmd":"commit","trace":1}"#, "'trace'"),
            (r#"{"q":1,"k":2,"trace":"yes"}"#, "'trace'"),
        ] {
            let err = ProtoRequest::parse_line(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "error for {line} should mention {needle}, got: {err}"
            );
        }
    }

    #[test]
    fn trace_trees_and_events_encode_under_the_timing_switch() {
        let timing = EncodeOptions::default();
        let no_timing = EncodeOptions {
            members: true,
            timing: false,
        };

        // A query reply carrying a trace tree: the tree (and only the tree)
        // rides behind the timing switch alongside the other volatile fields.
        let reply = QueryReply {
            id: 1,
            q: 1,
            k: 2,
            plan: "app_inc".to_string(),
            result: QueryResult::Infeasible,
            query_id: Some(4),
            micros: Some(100),
            cache_hit: false,
            epoch: 1,
            probes: 0,
            candidates: 0,
            shard_count: 0,
            shards_touched: 0,
            ratio: None,
            trace: Some(
                TraceNode::new("query", 0, 100)
                    .with_child(TraceNode::new("plan", 0, 10))
                    .with_child(TraceNode::new("exec", 10, 90)),
            ),
        };
        let line = ProtoResponse::Query(reply.clone()).encode_line(timing);
        assert!(
            line.contains(
                r#""trace":{"name":"query","start_micros":0,"micros":100,"children":[{"name":"plan","start_micros":0,"micros":10},{"name":"exec","start_micros":10,"micros":90}]}"#
            ),
            "got: {line}"
        );
        let line = ProtoResponse::Query(reply).encode_line(no_timing);
        assert!(!line.contains("trace"), "got: {line}");

        // The events page: sequence cursor plumbing is structural and always
        // encoded; per-event wall-clock offsets follow the timing switch.
        let events = EventsReply {
            events: vec![
                sac_engine::EventRecord {
                    seq: 5,
                    at_micros: 1_234,
                    kind: "epoch_swap",
                    detail: "epoch=2 carried=1".to_string(),
                },
                sac_engine::EventRecord {
                    seq: 6,
                    at_micros: 2_345,
                    kind: "fallback",
                    detail: "reason=trivial_k q=1 k=1".to_string(),
                },
            ],
            next_seq: 7,
            missed: 5,
        };
        let line = ProtoResponse::Events(events.clone()).encode_line(timing);
        assert_eq!(
            line,
            r#"{"ok":true,"next_seq":7,"missed":5,"events":[{"seq":5,"kind":"epoch_swap","detail":"epoch=2 carried=1","at_micros":1234},{"seq":6,"kind":"fallback","detail":"reason=trivial_k q=1 k=1","at_micros":2345}]}"#
        );
        let line = ProtoResponse::Events(events).encode_line(no_timing);
        assert_eq!(
            line,
            r#"{"ok":true,"next_seq":7,"missed":5,"events":[{"seq":5,"kind":"epoch_swap","detail":"epoch=2 carried=1"},{"seq":6,"kind":"fallback","detail":"reason=trivial_k q=1 k=1"}]}"#
        );

        // The commit reply's stage trace follows the same switch.
        let commit = CommitReply {
            epoch: 2,
            mutations: 1,
            edges_inserted: 1,
            edges_removed: 0,
            vertices_added: 0,
            vertices_moved: 0,
            cores_changed: 0,
            dirty_up_to: 2,
            components_carried: 0,
            components_invalidated: 1,
            shards_rebuilt: 0,
            shards_carried: 0,
            micros: Some(250),
            trace: Some(
                TraceNode::new("commit", 0, 250).with_child(TraceNode::new("publish", 50, 200)),
            ),
        };
        let line = ProtoResponse::Commit(commit.clone()).encode_line(timing);
        assert!(
            line.contains(r#""micros":250,"trace":{"name":"commit""#),
            "got: {line}"
        );
        let line = ProtoResponse::Commit(commit).encode_line(no_timing);
        assert!(!line.contains("trace"), "got: {line}");
        assert!(!line.contains("micros"), "got: {line}");
    }
}
