//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use sac_graph::{
    connected_kcore, core_decomposition, is_connected_subset, min_degree_in_subset, GraphBuilder,
    KCoreSolver, VertexId,
};

/// Strategy producing small random undirected graphs as edge lists over `0..n`.
fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The CSR structure is symmetric and satisfies the handshake lemma.
    #[test]
    fn builder_produces_consistent_csr((n, edges) in arb_edges(60, 300)) {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(n - 1);
        b.add_edges(edges);
        let g = b.build();
        prop_assert_eq!(g.num_vertices(), n as usize);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(v != u, "self loop survived");
                prop_assert!(g.has_edge(v, u), "asymmetric edge {}-{}", u, v);
            }
            // Neighbour lists are sorted and deduplicated.
            prop_assert!(g.neighbors(u).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Every vertex of the k-core has at least k neighbours inside the k-core, and
    /// core numbers are monotone under the definition (maximality is covered by the
    /// unit test comparing against the naive peeler).
    #[test]
    fn kcore_degree_invariant((n, edges) in arb_edges(50, 250), k in 1u32..5) {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(n - 1);
        b.add_edges(edges);
        let g = b.build();
        let decomp = core_decomposition(&g);
        let members = decomp.vertices_in_kcore(k);
        let in_core = |v: VertexId| decomp.core_number(v) >= k;
        for &v in &members {
            let deg_in = g.neighbors(v).iter().filter(|&&u| in_core(u)).count();
            prop_assert!(deg_in >= k as usize,
                "vertex {} has only {} neighbours in the {}-core", v, deg_in, k);
        }
        // Core numbers never exceed degrees.
        for v in g.vertices() {
            prop_assert!(decomp.core_number(v) as usize <= g.degree(v));
        }
    }

    /// `connected_kcore` returns a connected subgraph of minimum degree ≥ k that
    /// contains q, and it is exactly q's component of the k-core.
    #[test]
    fn connected_kcore_is_valid((n, edges) in arb_edges(50, 250), q in 0u32..50, k in 1u32..4) {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(n - 1);
        b.add_edges(edges);
        let g = b.build();
        let q = q % n;
        match connected_kcore(&g, q, k) {
            None => {
                let decomp = core_decomposition(&g);
                prop_assert!(decomp.core_number(q) < k);
            }
            Some(community) => {
                prop_assert!(community.contains(&q));
                prop_assert!(is_connected_subset(&g, &community));
                prop_assert!(min_degree_in_subset(&g, &community).unwrap() >= k as usize);
            }
        }
    }

    /// The subset-restricted solver agrees with `connected_kcore` when the subset is
    /// the whole vertex set, and always returns valid communities on subsets.
    #[test]
    fn subset_solver_agrees_with_global((n, edges) in arb_edges(40, 200), q in 0u32..40, k in 1u32..4) {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(n - 1);
        b.add_edges(edges);
        let g = b.build();
        let q = q % n;
        let mut solver = KCoreSolver::new(g.num_vertices());
        let all: Vec<VertexId> = g.vertices().collect();
        let via_subset = solver.kcore_containing(&g, &all, q, k);
        let via_global = connected_kcore(&g, q, k);
        prop_assert_eq!(via_subset, via_global);

        // On the half subset, any result must still be a valid community within it.
        let half: Vec<VertexId> = g.vertices().filter(|v| v % 2 == 0).collect();
        if let Some(community) = solver.kcore_containing(&g, &half, q, k) {
            prop_assert!(community.contains(&q));
            prop_assert!(community.iter().all(|v| half.contains(v)));
            prop_assert!(is_connected_subset(&g, &community));
            prop_assert!(min_degree_in_subset(&g, &community).unwrap() >= k as usize);
        }
    }
}
