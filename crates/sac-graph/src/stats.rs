//! Summary statistics over graphs (reproduces the columns of Table 4).

use crate::{core_decomposition, Graph};

/// Summary statistics of a graph, matching the columns reported in Table 4 of the
/// paper (vertices, edges, average degree) plus a few extras useful for sanity
/// checks of the synthetic surrogates.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub vertices: usize,
    /// Number of undirected edges `m`.
    pub edges: usize,
    /// Average degree `d̂ = 2m / n`.
    pub average_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Maximum core number (degeneracy).
    pub max_core: u32,
    /// Number of vertices with core number ≥ 4 — the pool from which the paper
    /// samples its 200 query vertices.
    pub core4_vertices: usize,
}

impl GraphStats {
    /// Computes the statistics of `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let decomp = core_decomposition(graph);
        GraphStats {
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            average_degree: graph.average_degree(),
            max_degree: graph.max_degree(),
            max_core: decomp.max_core(),
            core4_vertices: decomp.kcore_size(4),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} d̂={:.2} max_deg={} max_core={} |core≥4|={}",
            self.vertices,
            self.edges,
            self.average_degree,
            self.max_degree,
            self.max_core,
            self.core4_vertices
        )
    }
}

/// Histogram of vertex degrees: `histogram[d]` is the number of vertices of degree
/// `d`.  Used to verify the power-law shape of synthetic datasets.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_triangle_with_tail() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 4);
        assert!((s.average_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.max_core, 2);
        assert_eq!(s.core4_vertices, 0);
        assert!(s.to_string().contains("n=4"));
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.num_vertices());
        assert_eq!(h[1], 1); // vertex 3
        assert_eq!(h[2], 2); // vertices 0, 1
        assert_eq!(h[3], 1); // vertex 2
    }

    #[test]
    fn core4_counts_clique_members() {
        // K5: every vertex has core number 4.
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let s = GraphStats::compute(&b.build());
        assert_eq!(s.core4_vertices, 5);
        assert_eq!(s.max_core, 4);
    }
}
