//! The spatial view of a graph: vertices with locations plus a spatial index.

use crate::{Graph, GraphError, VertexId};
use sac_geom::{Circle, GridIndex, Point};

/// A geo-social graph: an undirected [`Graph`] in which every vertex has a
/// two-dimensional location, plus a grid index for fast spatial queries.
///
/// This is the paper's data model (`G(V, E)` with `(v.x, v.y)` per vertex).  All SAC
/// search algorithms take a `&SpatialGraph`.
#[derive(Debug, Clone)]
pub struct SpatialGraph {
    // NOTE: keep this type free of interior mutability.  `sac-engine` serves
    // immutable `Arc<SpatialGraph>` snapshots across threads; the static
    // assertion at the bottom of this file enforces `Send + Sync`.
    graph: Graph,
    positions: Vec<Point>,
    index: GridIndex,
}

impl SpatialGraph {
    /// Pairs a graph with vertex positions.
    ///
    /// Returns an error when the number of positions differs from the number of
    /// vertices, when a position is not finite, or when the graph is empty.
    pub fn new(graph: Graph, positions: Vec<Point>) -> Result<Self, GraphError> {
        if positions.len() != graph.num_vertices() {
            return Err(GraphError::PositionCountMismatch {
                vertices: graph.num_vertices(),
                positions: positions.len(),
            });
        }
        if graph.num_vertices() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(i) = positions.iter().position(|p| !p.is_finite()) {
            return Err(GraphError::InvalidPosition(i as VertexId));
        }
        let index = GridIndex::build(&positions, 8).expect("non-empty positions");
        Ok(SpatialGraph {
            graph,
            positions,
            index,
        })
    }

    /// The underlying graph topology.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Location of vertex `v`.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v as usize]
    }

    /// All vertex positions, indexed by vertex id.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Euclidean distance between the locations of two vertices (the paper's
    /// `|u, v|`).
    #[inline]
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        self.positions[u as usize].distance(self.positions[v as usize])
    }

    /// Neighbours of `v` (delegates to the graph).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.graph.neighbors(v)
    }

    /// Degree of `v` in the full graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }

    /// All vertices whose location lies inside `circle`.
    pub fn vertices_in_circle(&self, circle: &Circle) -> Vec<VertexId> {
        self.index.query_circle(circle)
    }

    /// Appends the vertices inside `circle` to `out` (cleared first); avoids
    /// allocation in tight loops.
    pub fn vertices_in_circle_into(&self, circle: &Circle, out: &mut Vec<VertexId>) {
        self.index.query_circle_into(circle, out);
    }

    /// Number of vertices inside `circle`.
    pub fn count_in_circle(&self, circle: &Circle) -> usize {
        self.index.count_in_circle(circle)
    }

    /// The distance-ordered candidate view of the ball `O(center, r_max)`:
    /// one grid range query plus one sort, appended to `out` (cleared first)
    /// as `(vertex, distance² from center)` in ascending distance order,
    /// ties broken by vertex id.
    ///
    /// Because the grid query shares its inclusion bound with
    /// [`Circle::contains`] (see [`sac_geom::Circle::contains_bound_sq`]) and
    /// that bound is monotone in the radius, the vertex set of **any** circle
    /// `O(center, r)` with `r ≤ r_max` is exactly a prefix of this array —
    /// the foundation of the incremental radius-sweep solver
    /// ([`crate::RadiusSweepSolver`]).
    pub fn vertices_by_distance_into(
        &self,
        center: Point,
        r_max: f64,
        scratch: &mut Vec<VertexId>,
        out: &mut Vec<(VertexId, f64)>,
    ) {
        out.clear();
        self.index
            .query_circle_into(&Circle::new(center, r_max.max(0.0)), scratch);
        out.extend(
            scratch
                .iter()
                .map(|&v| (v, self.position(v).distance_sq(center))),
        );
        out.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
    }

    /// Allocating convenience wrapper of
    /// [`SpatialGraph::vertices_by_distance_into`].
    pub fn vertices_by_distance(&self, center: Point, r_max: f64) -> Vec<(VertexId, f64)> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.vertices_by_distance_into(center, r_max, &mut scratch, &mut out);
        out
    }

    /// The `k` vertices spatially nearest to `point`, as `(vertex, distance)` pairs
    /// in ascending distance order.
    pub fn k_nearest(&self, point: Point, k: usize) -> Vec<(VertexId, f64)> {
        self.index.k_nearest(point, k)
    }

    /// The positions of a vertex subset (e.g. a community) in subset order.
    pub fn positions_of(&self, subset: &[VertexId]) -> Vec<Point> {
        subset.iter().map(|&v| self.position(v)).collect()
    }

    /// Returns a copy of this spatial graph with some vertex positions replaced and
    /// the spatial index rebuilt.
    ///
    /// Used by the dynamic-location experiment (Section 5.2.3): each check-in
    /// updates the position of one user.  Updates are applied in batch and the grid
    /// index is rebuilt once, which keeps the amortised cost low.
    pub fn with_updated_positions(
        &self,
        updates: &[(VertexId, Point)],
    ) -> Result<SpatialGraph, GraphError> {
        let mut positions = self.positions.clone();
        for &(v, p) in updates {
            if (v as usize) >= positions.len() {
                return Err(GraphError::VertexOutOfRange(v));
            }
            if !p.is_finite() {
                return Err(GraphError::InvalidPosition(v));
            }
            positions[v as usize] = p;
        }
        SpatialGraph::new(self.graph.clone(), positions)
    }

    /// Mutates vertex positions in place and rebuilds the spatial index.
    ///
    /// Prefer this over [`SpatialGraph::with_updated_positions`] when the graph does
    /// not need to be kept immutable; it avoids cloning the adjacency arrays.
    pub fn apply_position_updates(
        &mut self,
        updates: &[(VertexId, Point)],
    ) -> Result<(), GraphError> {
        for &(v, p) in updates {
            if (v as usize) >= self.positions.len() {
                return Err(GraphError::VertexOutOfRange(v));
            }
            if !p.is_finite() {
                return Err(GraphError::InvalidPosition(v));
            }
            self.positions[v as usize] = p;
        }
        self.index = GridIndex::build(&self.positions, 8).expect("non-empty positions");
        Ok(())
    }
}

// Shared read-only serving contract: `sac-engine` hands one snapshot to many
// worker threads behind an `Arc`, so the substrate types must stay `Send + Sync`
// (no interior mutability).  Breaking this is a compile error here rather than a
// distant trait-bound error in the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpatialGraph>();
    assert_send_sync::<crate::Graph>();
    assert_send_sync::<crate::CoreDecomposition>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn grid_graph() -> SpatialGraph {
        // 3x3 grid of vertices, edges between horizontal neighbours.
        let mut b = GraphBuilder::new();
        let mut positions = Vec::new();
        for row in 0..3u32 {
            for col in 0..3u32 {
                let v = row * 3 + col;
                b.ensure_vertex(v);
                positions.push(Point::new(col as f64, row as f64));
                if col > 0 {
                    b.add_edge(v - 1, v);
                }
            }
        }
        SpatialGraph::new(b.build(), positions).unwrap()
    }

    #[test]
    fn construction_validates_input() {
        let g = GraphBuilder::from_edges([(0, 1)]);
        assert!(SpatialGraph::new(g.clone(), vec![Point::ORIGIN]).is_err());
        assert!(
            SpatialGraph::new(g.clone(), vec![Point::ORIGIN, Point::new(f64::NAN, 0.0)]).is_err()
        );
        assert!(SpatialGraph::new(g, vec![Point::ORIGIN, Point::new(1.0, 0.0)]).is_ok());
        assert!(SpatialGraph::new(Graph::empty(0), vec![]).is_err());
    }

    #[test]
    fn distances_and_positions() {
        let sg = grid_graph();
        assert_eq!(sg.num_vertices(), 9);
        assert_eq!(sg.position(4), Point::new(1.0, 1.0));
        assert!((sg.distance(0, 8) - (8f64).sqrt()).abs() < 1e-12);
        assert_eq!(
            sg.positions_of(&[0, 4]),
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]
        );
    }

    #[test]
    fn circle_queries() {
        let sg = grid_graph();
        let mut got = sg.vertices_in_circle(&Circle::new(Point::new(1.0, 1.0), 1.0));
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 4, 5, 7]);
        assert_eq!(
            sg.count_in_circle(&Circle::new(Point::new(1.0, 1.0), 1.0)),
            5
        );

        let mut buf = Vec::new();
        sg.vertices_in_circle_into(&Circle::new(Point::new(0.0, 0.0), 0.5), &mut buf);
        assert_eq!(buf, vec![0]);
    }

    #[test]
    fn distance_ordered_view_is_prefix_consistent() {
        let sg = grid_graph();
        let center = Point::new(1.0, 1.0);
        let view = sg.vertices_by_distance(center, 1.5);
        // Sorted ascending by distance.
        for w in view.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Any smaller radius is a prefix of the view and equals the grid query.
        for r in [0.0, 0.5, 1.0, 1.4] {
            let bound = Circle::new(center, r).contains_bound_sq();
            let prefix: Vec<u32> = view
                .iter()
                .take_while(|&&(_, d2)| d2 <= bound)
                .map(|&(v, _)| v)
                .collect();
            let mut expected = sg.vertices_in_circle(&Circle::new(center, r));
            expected.sort_unstable();
            let mut got = prefix;
            got.sort_unstable();
            assert_eq!(got, expected, "r = {r}");
        }
    }

    #[test]
    fn knn_queries() {
        let sg = grid_graph();
        let nearest = sg.k_nearest(Point::new(0.1, 0.1), 3);
        assert_eq!(nearest.len(), 3);
        assert_eq!(nearest[0].0, 0);
    }

    #[test]
    fn position_updates_rebuild_index() {
        let sg = grid_graph();
        let moved = sg
            .with_updated_positions(&[(0, Point::new(10.0, 10.0))])
            .unwrap();
        assert_eq!(moved.position(0), Point::new(10.0, 10.0));
        assert!(moved
            .vertices_in_circle(&Circle::new(Point::new(10.0, 10.0), 0.5))
            .contains(&0));
        // Original untouched.
        assert_eq!(sg.position(0), Point::new(0.0, 0.0));

        // In-place variant.
        let mut sg2 = grid_graph();
        sg2.apply_position_updates(&[(8, Point::new(-5.0, -5.0))])
            .unwrap();
        assert_eq!(sg2.position(8), Point::new(-5.0, -5.0));
        assert!(sg2
            .vertices_in_circle(&Circle::new(Point::new(-5.0, -5.0), 0.1))
            .contains(&8));

        // Invalid updates are rejected.
        assert!(sg.with_updated_positions(&[(99, Point::ORIGIN)]).is_err());
        assert!(sg
            .with_updated_positions(&[(0, Point::new(f64::INFINITY, 0.0))])
            .is_err());
    }
}
