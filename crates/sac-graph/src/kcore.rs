//! Connected k-core ("k-ĉore") queries.
//!
//! Every SAC search algorithm repeatedly asks: *does the subgraph induced by some
//! vertex set `S` contain a connected k-core that includes the query vertex `q`,
//! and if so, which vertices form it?*  This module provides:
//!
//! * [`connected_kcore`] — the k-ĉore of the **whole graph** containing `q`
//!   (the `Global` baseline and Step 1 of the paper's two-step framework), and
//! * [`KCoreSolver`] — a reusable solver answering the **subset-restricted**
//!   question without allocating per call, which is the inner loop of `Exact`,
//!   `AppInc`, `AppFast`, `AppAcc` and `Exact+`.

use crate::{bits, core_decomposition, Graph, VertexId};

/// Returns the vertex set of the connected k-core (k-ĉore) of `graph` that contains
/// `q`, or `None` when `q` is not part of any k-core.
///
/// The result is sorted by vertex id.  This is exactly what the `Global` community
/// search baseline of Sozio & Gionis returns.
pub fn connected_kcore(graph: &Graph, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
    if (q as usize) >= graph.num_vertices() {
        return None;
    }
    let decomp = core_decomposition(graph);
    if decomp.core_number(q) < k {
        return None;
    }
    // BFS from q over vertices with core number >= k.
    let mut visited = vec![false; graph.num_vertices()];
    let mut component = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[q as usize] = true;
    queue.push_back(q);
    while let Some(v) = queue.pop_front() {
        component.push(v);
        for &u in graph.neighbors(v) {
            if !visited[u as usize] && decomp.core_number(u) >= k {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    component.sort_unstable();
    Some(component)
}

/// A reusable solver for subset-restricted connected-k-core queries.
///
/// Given a vertex subset `S`, [`KCoreSolver::kcore_containing`] peels `G[S]` down to
/// its k-core and returns the connected component containing `q`, if any.  The
/// membership and removal working sets are packed flat bitsets (`u64` words), so
/// the per-edge tests of the peel touch 32x less memory than the former `u32`
/// epoch arrays; the marks set by a call are cleared sparsely on exit, keeping
/// the cost of a call at `O(Σ_{v ∈ S} deg_G(v))` with no `O(n)` reset.
#[derive(Debug, Clone)]
pub struct KCoreSolver {
    /// Bit `v` set ⇔ vertex `v` belongs to the current call's subset.
    in_subset: Vec<u64>,
    /// Bit `v` set ⇔ vertex `v` was peeled away (or BFS-visited) this call.
    removed: Vec<u64>,
    /// Degree of `v` restricted to the current subset (valid only for subset members).
    deg: Vec<u32>,
    /// Scratch stack shared by peeling and BFS.
    stack: Vec<VertexId>,
    /// The deduplicated subset of the current call (drives the sparse cleanup).
    dedup: Vec<VertexId>,
}

impl KCoreSolver {
    /// Creates a solver for graphs with at most `n` vertices.
    pub fn new(n: usize) -> Self {
        KCoreSolver {
            in_subset: vec![0; bits::words_for(n)],
            removed: vec![0; bits::words_for(n)],
            deg: vec![0; n],
            stack: Vec::new(),
            dedup: Vec::new(),
        }
    }

    /// Grows the internal buffers if the graph has more vertices than anticipated.
    fn ensure_capacity(&mut self, n: usize) {
        if self.deg.len() < n {
            self.in_subset.resize(bits::words_for(n), 0);
            self.removed.resize(bits::words_for(n), 0);
            self.deg.resize(n, 0);
        }
    }

    /// Clears the bits set by the current call (sparse, `O(|subset|)`).
    fn cleanup(&mut self) {
        for &v in &self.dedup {
            bits::clear(&mut self.in_subset, v);
            bits::clear(&mut self.removed, v);
        }
    }

    /// Returns the vertex set (sorted by id) of the connected k-core of `G[subset]`
    /// containing `q`, or `None` when no such subgraph exists.
    ///
    /// `subset` may contain duplicates and need not contain `q`; if it does not,
    /// the answer is `None`.
    pub fn kcore_containing(
        &mut self,
        graph: &Graph,
        subset: &[VertexId],
        q: VertexId,
        k: u32,
    ) -> Option<Vec<VertexId>> {
        self.ensure_capacity(graph.num_vertices());

        // Mark the subset, deduplicating via test-and-set.
        self.dedup.clear();
        for &v in subset {
            if !bits::test(&self.in_subset, v) {
                bits::set(&mut self.in_subset, v);
                self.dedup.push(v);
            }
        }
        if (q as usize) >= graph.num_vertices() || !bits::test(&self.in_subset, q) {
            self.cleanup();
            return None;
        }

        // Degree of every subset vertex restricted to the subset.
        for i in 0..self.dedup.len() {
            let v = self.dedup[i];
            let mut d = 0u32;
            for &u in graph.neighbors(v) {
                if bits::test(&self.in_subset, u) {
                    d += 1;
                }
            }
            self.deg[v as usize] = d;
        }

        // Peel vertices whose subset-degree is below k.
        self.stack.clear();
        for i in 0..self.dedup.len() {
            let v = self.dedup[i];
            if self.deg[v as usize] < k {
                bits::set(&mut self.removed, v);
                self.stack.push(v);
            }
        }
        while let Some(v) = self.stack.pop() {
            for &u in graph.neighbors(v) {
                if bits::test(&self.in_subset, u) && !bits::test(&self.removed, u) {
                    self.deg[u as usize] -= 1;
                    if self.deg[u as usize] + 1 == k {
                        bits::set(&mut self.removed, u);
                        self.stack.push(u);
                    }
                }
            }
        }
        if bits::test(&self.removed, q) {
            self.cleanup();
            return None;
        }

        // BFS from q over surviving subset vertices, marking visits in `removed`
        // (the visited vertices are the answer and the call ends right after, so
        // the overload is harmless and saves a third bitset).
        let mut component = Vec::new();
        self.stack.clear();
        self.stack.push(q);
        bits::set(&mut self.removed, q);
        while let Some(v) = self.stack.pop() {
            component.push(v);
            for &u in graph.neighbors(v) {
                if bits::test(&self.in_subset, u) && !bits::test(&self.removed, u) {
                    bits::set(&mut self.removed, u);
                    self.stack.push(u);
                }
            }
        }
        self.cleanup();
        component.sort_unstable();
        Some(component)
    }

    /// Convenience wrapper: returns `true` when `G[subset]` contains a connected
    /// k-core that includes `q`.
    pub fn contains_kcore(
        &mut self,
        graph: &Graph,
        subset: &[VertexId],
        q: VertexId,
        k: u32,
    ) -> bool {
        self.kcore_containing(graph, subset, q, k).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn figure3_graph() -> Graph {
        // See `core_decomp::tests::paper_figure3_example` for the vertex mapping.
        GraphBuilder::from_edges([
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (0, 4),
            (3, 4),
            (3, 5),
            (4, 5),
            (6, 7),
            (7, 8),
            (6, 8),
            (8, 9),
        ])
    }

    #[test]
    fn global_kcore_of_figure3() {
        let g = figure3_graph();
        // 2-ĉore containing Q (=0) is {Q,A,B,C,D,E}.
        assert_eq!(connected_kcore(&g, 0, 2).unwrap(), vec![0, 1, 2, 3, 4, 5]);
        // 2-ĉore containing F (=6) is {F,G,H}.
        assert_eq!(connected_kcore(&g, 6, 2).unwrap(), vec![6, 7, 8]);
        // I (=9) has no 2-core.
        assert!(connected_kcore(&g, 9, 2).is_none());
        // Out-of-range query vertex.
        assert!(connected_kcore(&g, 99, 2).is_none());
    }

    #[test]
    fn subset_restricted_kcore() {
        let g = figure3_graph();
        let mut solver = KCoreSolver::new(g.num_vertices());

        // Within {Q,A,B}: the triangle is a 2-core containing Q.
        assert_eq!(
            solver.kcore_containing(&g, &[0, 1, 2], 0, 2).unwrap(),
            vec![0, 1, 2]
        );
        // Within {Q,A,C}: A has only Q as a neighbour, C has only Q — no 2-core.
        assert!(solver.kcore_containing(&g, &[0, 1, 3], 0, 2).is_none());
        // Within {Q,C,D,E}: {Q,C,D} is a triangle; E has degree 2 (C, D) so the
        // whole set has min degree 2.
        assert_eq!(
            solver.kcore_containing(&g, &[0, 3, 4, 5], 0, 2).unwrap(),
            vec![0, 3, 4, 5]
        );
        // q not in subset → None.
        assert!(solver.kcore_containing(&g, &[1, 2], 0, 2).is_none());
        // Duplicate entries in the subset are tolerated.
        assert_eq!(
            solver
                .kcore_containing(&g, &[0, 1, 2, 1, 0, 2], 0, 2)
                .unwrap(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn connected_component_is_restricted_to_q() {
        // Two disjoint triangles in the same subset: only q's triangle is returned.
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let mut solver = KCoreSolver::new(g.num_vertices());
        let all: Vec<VertexId> = (0..6).collect();
        assert_eq!(
            solver.kcore_containing(&g, &all, 0, 2).unwrap(),
            vec![0, 1, 2]
        );
        assert_eq!(
            solver.kcore_containing(&g, &all, 4, 2).unwrap(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn peeling_cascades() {
        // A path 0-1-2-3-4 plus a triangle on {0,1,5}: asking for the 2-core from 0
        // must peel the entire path tail (4, then 3, then 2) and keep the triangle.
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (1, 5)]);
        let mut solver = KCoreSolver::new(g.num_vertices());
        let all: Vec<VertexId> = (0..6).collect();
        assert_eq!(
            solver.kcore_containing(&g, &all, 0, 2).unwrap(),
            vec![0, 1, 5]
        );
        // k = 3 is impossible here.
        assert!(solver.kcore_containing(&g, &all, 0, 3).is_none());
    }

    #[test]
    fn repeated_calls_reuse_buffers_correctly() {
        let g = figure3_graph();
        let mut solver = KCoreSolver::new(g.num_vertices());
        for _ in 0..100 {
            assert_eq!(
                solver.kcore_containing(&g, &[0, 1, 2], 0, 2).unwrap(),
                vec![0, 1, 2]
            );
            assert!(solver.kcore_containing(&g, &[0, 1, 3], 0, 2).is_none());
            assert_eq!(
                solver
                    .kcore_containing(&g, &[0, 1, 2, 3, 4, 5], 0, 2)
                    .unwrap(),
                vec![0, 1, 2, 3, 4, 5]
            );
        }
    }

    #[test]
    fn solver_grows_with_larger_graphs() {
        let small = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2)]);
        let mut solver = KCoreSolver::new(small.num_vertices());
        assert!(solver.kcore_containing(&small, &[0, 1, 2], 0, 2).is_some());
        // Now a larger graph with the same solver instance.
        let big = GraphBuilder::from_edges([(10, 11), (11, 12), (10, 12)]);
        assert_eq!(
            solver.kcore_containing(&big, &[10, 11, 12], 10, 2).unwrap(),
            vec![10, 11, 12]
        );
    }

    #[test]
    fn k_zero_and_k_one() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2)]);
        let mut solver = KCoreSolver::new(g.num_vertices());
        // k = 0: every connected subset containing q qualifies.
        assert_eq!(
            solver.kcore_containing(&g, &[0, 1, 2], 0, 0).unwrap(),
            vec![0, 1, 2]
        );
        // k = 1: path survives entirely.
        assert_eq!(
            solver.kcore_containing(&g, &[0, 1, 2], 0, 1).unwrap(),
            vec![0, 1, 2]
        );
        // Isolated q with k = 1 fails.
        assert!(solver.kcore_containing(&g, &[0], 0, 1).is_none());
        // Isolated q with k = 0 is just {q}.
        assert_eq!(solver.kcore_containing(&g, &[0], 0, 0).unwrap(), vec![0]);
    }
}
