//! k-core decomposition (Batagelj–Zaversnik, O(m)).

use crate::{Graph, VertexId};

/// The result of a k-core decomposition: the core number of every vertex.
///
/// The *core number* of `v` is the largest `k` such that `v` belongs to the k-core
/// of the graph (Definition 1 of the paper).  Core numbers are computed once per
/// graph in `O(m)` time by the bucket-based peeling algorithm of Batagelj &
/// Zaversnik, which the paper cites as reference \[3\].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    core_numbers: Vec<u32>,
    max_core: u32,
}

impl CoreDecomposition {
    /// Wraps already-known core numbers (e.g. maintained incrementally by
    /// [`crate::DynamicGraph`]) without recomputing them.
    ///
    /// The caller is responsible for the numbers being the true core numbers
    /// of the graph they will be used with; the dynamic-graph property suite
    /// asserts this invariant for the incremental-maintenance path.
    pub fn from_core_numbers(core_numbers: Vec<u32>) -> Self {
        let max_core = core_numbers.iter().copied().max().unwrap_or(0);
        CoreDecomposition {
            core_numbers,
            max_core,
        }
    }

    /// Core number of vertex `v`.
    #[inline]
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.core_numbers[v as usize]
    }

    /// The largest core number in the graph (the graph's degeneracy).
    #[inline]
    pub fn max_core(&self) -> u32 {
        self.max_core
    }

    /// Slice of all core numbers, indexed by vertex id.
    #[inline]
    pub fn core_numbers(&self) -> &[u32] {
        &self.core_numbers
    }

    /// All vertices whose core number is at least `k` — the vertex set of the
    /// k-core `H_k` (which may be disconnected).
    pub fn vertices_in_kcore(&self, k: u32) -> Vec<VertexId> {
        self.core_numbers
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Number of vertices with core number at least `k`.
    pub fn kcore_size(&self, k: u32) -> usize {
        self.core_numbers.iter().filter(|&&c| c >= k).count()
    }
}

/// Computes the core number of every vertex in `O(m)` time.
///
/// This is the bin-sort peeling algorithm: vertices are processed in ascending
/// order of (current) degree; when a vertex is removed its remaining neighbours'
/// effective degrees drop by one and they move down one bucket.
pub fn core_decomposition(graph: &Graph) -> CoreDecomposition {
    let core_numbers = peel_core_numbers(graph.num_vertices(), |v| graph.neighbors(v));
    CoreDecomposition::from_core_numbers(core_numbers)
}

/// The Batagelj–Zaversnik bucket peel over any adjacency representation:
/// `neighbors(v)` returns `v`'s neighbour list.  Shared by
/// [`core_decomposition`] (CSR adjacency) and [`crate::DynamicGraph`]'s bulk
/// delta repair (`Vec<Vec<_>>` adjacency), so the bucket-boundary
/// bookkeeping lives in exactly one place.
pub(crate) fn peel_core_numbers<'a>(
    n: usize,
    neighbors: impl Fn(VertexId) -> &'a [VertexId],
) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }

    // degree[v] starts at deg_G(v) and decreases as neighbours are peeled.
    let mut degree: Vec<u32> = (0..n)
        .map(|v| neighbors(v as VertexId).len() as u32)
        .collect();
    let max_degree = *degree.iter().max().unwrap() as usize;

    // bin[d] = index in `order` of the first vertex with current degree d.
    let mut bin = vec![0u32; max_degree + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for d in 0..=max_degree {
        bin[d + 1] += bin[d];
    }
    // order: vertices sorted by current degree; pos: inverse permutation.
    let mut order = vec![0 as VertexId; n];
    let mut pos = vec![0u32; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            order[next[d] as usize] = v as VertexId;
            pos[v] = next[d];
            next[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        let dv = degree[v as usize];
        core[v as usize] = dv;
        for &u in neighbors(v) {
            let du = degree[u as usize];
            if du > dv {
                // Move u to the front of its bucket and shift the bucket boundary,
                // effectively decreasing u's degree by one.
                let pu = pos[u as usize];
                let bucket_start = bin[du as usize];
                let w = order[bucket_start as usize];
                if u != w {
                    order[pu as usize] = w;
                    pos[w as usize] = pu;
                    order[bucket_start as usize] = u;
                    pos[u as usize] = bucket_start;
                }
                bin[du as usize] += 1;
                degree[u as usize] -= 1;
            }
        }
    }

    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Naive reference: repeatedly peel vertices of degree < k for every k.
    fn naive_core_numbers(graph: &Graph) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut core = vec![0u32; n];
        let max_possible = graph.max_degree() as u32;
        for k in 1..=max_possible {
            // Peel to the k-core.
            let mut alive = vec![true; n];
            let mut deg: Vec<usize> = (0..n).map(|v| graph.degree(v as VertexId)).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for v in 0..n {
                    if alive[v] && deg[v] < k as usize {
                        alive[v] = false;
                        changed = true;
                        for &u in graph.neighbors(v as VertexId) {
                            if alive[u as usize] {
                                deg[u as usize] -= 1;
                            }
                        }
                    }
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let d = core_decomposition(&g);
        assert_eq!(d.max_core(), 0);
        assert!(d.core_numbers().is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = Graph::empty(4);
        let d = core_decomposition(&g);
        assert!(g.vertices().all(|v| d.core_number(v) == 0));
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle {0,1,2} (core 2) with a pendant vertex 3 (core 1).
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core_number(0), 2);
        assert_eq!(d.core_number(1), 2);
        assert_eq!(d.core_number(2), 2);
        assert_eq!(d.core_number(3), 1);
        assert_eq!(d.max_core(), 2);
        assert_eq!(d.vertices_in_kcore(2), vec![0, 1, 2]);
        assert_eq!(d.kcore_size(1), 4);
    }

    #[test]
    fn paper_figure3_example() {
        // Figure 3 of the paper: 10 vertices Q,A..I.  Vertex ids:
        // Q=0, A=1, B=2, C=3, D=4, E=5, F=6, G=7, H=8, I=9.
        // Edges reconstructed from the k-core decomposition shown in Fig. 3(b):
        // 3-core {Q,A,B,C,D} (wait: the 3-ĉore is {Q,A,B} ∪ ... ) — we use a
        // reading where {Q,C,D} and {Q,A,B} are triangles, E attaches to C and D,
        // A-B-Q form a triangle, giving the 2-ĉore {Q,A,B,C,D,E}; {F,G,H} is a
        // separate triangle (2-ĉore), and I is a pendant attached to H (1-core).
        let g = GraphBuilder::from_edges([
            (0, 1),
            (0, 2),
            (1, 2), // Q-A-B triangle
            (0, 3),
            (0, 4),
            (3, 4), // Q-C-D triangle
            (3, 5),
            (4, 5), // E connected to C and D
            (6, 7),
            (7, 8),
            (6, 8), // F-G-H triangle
            (8, 9), // I pendant on H
        ]);
        let d = core_decomposition(&g);
        // 2-core has two connected components: {Q,A,B,C,D,E} and {F,G,H}.
        let two_core = d.vertices_in_kcore(2);
        assert_eq!(two_core, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(d.core_number(9), 1);
    }

    #[test]
    fn matches_naive_on_pseudorandom_graphs() {
        for seed in [1u64, 7, 42] {
            let mut b = GraphBuilder::new();
            let mut x = seed;
            for _ in 0..600 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((x >> 33) % 120) as VertexId;
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((x >> 33) % 120) as VertexId;
                b.add_edge(u, v);
            }
            let g = b.build();
            let fast = core_decomposition(&g);
            let slow = naive_core_numbers(&g);
            assert_eq!(fast.core_numbers(), slow.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_core_number() {
        // K6: every vertex has core number 5.
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        let d = core_decomposition(&b.build());
        assert!((0..6).all(|v| d.core_number(v) == 5));
        assert_eq!(d.max_core(), 5);
    }
}
