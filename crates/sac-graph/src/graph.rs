//! CSR-based undirected graph representation.

use std::fmt;

/// Identifier of a graph vertex.
///
/// Vertices are densely numbered `0..n`; the id doubles as an index into the CSR
/// arrays and into the position array of a [`crate::SpatialGraph`].
pub type VertexId = u32;

/// An undirected graph stored in compressed-sparse-row (CSR) form.
///
/// The adjacency of vertex `v` is the slice `neighbors[offsets[v]..offsets[v+1]]`.
/// Both directions of every edge are stored, so `neighbors.len() == 2 * m`.  The
/// structure is immutable after construction; use [`crate::GraphBuilder`] to build
/// one incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Creates a graph directly from CSR arrays.
    ///
    /// Intended for use by [`crate::GraphBuilder`]; most callers should use the
    /// builder instead.  `offsets` must have length `n + 1`, start at zero, be
    /// non-decreasing and end at `neighbors.len()`.
    pub(crate) fn from_csr(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.first().unwrap(), 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Graph { offsets, neighbors }
    }

    /// Creates a graph from externally produced CSR arrays, validating every
    /// structural invariant (snapshot-codec hook: `sac-wal` rebuilds graphs
    /// from checkpoint files through this).
    ///
    /// `offsets` must have length `n + 1`, start at zero, be non-decreasing
    /// and end at `neighbors.len()`; every adjacency slice must be strictly
    /// sorted (no duplicates), free of self-loops, and reference vertices
    /// inside `0..n`.  Violations yield [`crate::GraphError::Parse`]-free,
    /// dedicated errors so callers can surface what was malformed.
    pub fn try_from_csr(
        offsets: Vec<u64>,
        neighbors: Vec<VertexId>,
    ) -> Result<Self, crate::GraphError> {
        use crate::GraphError;
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(GraphError::InvalidCsr("offsets must start at 0"));
        }
        if *offsets.last().unwrap() as usize != neighbors.len() {
            return Err(GraphError::InvalidCsr(
                "offsets must end at neighbors.len()",
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InvalidCsr("offsets must be non-decreasing"));
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
            for (i, &w) in row.iter().enumerate() {
                if w as usize >= n {
                    return Err(GraphError::VertexOutOfRange(w));
                }
                if w as usize == v {
                    return Err(GraphError::InvalidCsr("self-loop in adjacency"));
                }
                if i > 0 && row[i - 1] >= w {
                    return Err(GraphError::InvalidCsr(
                        "adjacency rows must be strictly sorted",
                    ));
                }
            }
        }
        Ok(Graph { offsets, neighbors })
    }

    /// Borrows the raw CSR arrays (snapshot-codec hook).
    pub fn csr(&self) -> (&[u64], &[VertexId]) {
        (&self.offsets, &self.neighbors)
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v` in the full graph (the paper's `deg_G(v)`).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of vertex `v` (the paper's `nb(v)`), in ascending id order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Returns `true` when the undirected edge `{u, v}` exists.
    ///
    /// Neighbour lists are sorted, so this is a binary search: `O(log deg(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        // Search in the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over every undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Average degree `d̂ = 2m / n` (as reported in Table 4 of the paper).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_vertices() as f64
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Returns `true` when the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.neighbors.is_empty()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, d̂={:.2})",
            self.num_vertices(),
            self.num_edges(),
            self.average_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_with_tail() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_with_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_with_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_with_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_with_tail();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_edgeless());
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(Graph::empty(0).average_degree(), 0.0);
    }
}
