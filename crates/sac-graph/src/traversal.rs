//! Graph traversal utilities: BFS, connected components, subset predicates.

use crate::{Graph, VertexId};
use std::collections::VecDeque;

/// A set of vertices backed by a sorted `Vec`.
///
/// Community members returned by SAC algorithms are naturally small (tens to a few
/// thousand vertices) and are consumed both as ordered lists and as membership
/// tests; a sorted vector gives compact storage, cheap iteration and `O(log n)`
/// membership without hashing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VertexSet {
    sorted: Vec<VertexId>,
}

impl VertexSet {
    /// Creates a set from any vertex list (duplicates removed).
    pub fn from_vec(mut v: Vec<VertexId>) -> Self {
        v.sort_unstable();
        v.dedup();
        VertexSet { sorted: v }
    }

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        self.sorted.binary_search(&v).is_ok()
    }

    /// The members as a sorted slice.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.sorted
    }

    /// Iterator over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.sorted.iter().copied()
    }

    /// Size of the intersection with another set.
    pub fn intersection_size(&self, other: &VertexSet) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < self.sorted.len() && j < other.sorted.len() {
            match self.sorted[i].cmp(&other.sorted[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with another set.
    pub fn union_size(&self, other: &VertexSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Jaccard similarity of the two member sets (1.0 when both are empty).
    pub fn jaccard(&self, other: &VertexSet) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_size(other) as f64 / union as f64
    }
}

impl From<Vec<VertexId>> for VertexSet {
    fn from(v: Vec<VertexId>) -> Self {
        VertexSet::from_vec(v)
    }
}

impl FromIterator<VertexId> for VertexSet {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        VertexSet::from_vec(iter.into_iter().collect())
    }
}

/// Returns the connected component of `start` inside the subgraph induced by the
/// vertices for which `allowed` returns `true`.  The component is sorted by id.
///
/// `allowed(start)` must hold, otherwise the result is empty.
pub fn bfs_component<F: Fn(VertexId) -> bool>(
    graph: &Graph,
    start: VertexId,
    allowed: F,
) -> Vec<VertexId> {
    if (start as usize) >= graph.num_vertices() || !allowed(start) {
        return Vec::new();
    }
    let mut visited = vec![false; graph.num_vertices()];
    let mut queue = VecDeque::new();
    let mut component = Vec::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        component.push(v);
        for &u in graph.neighbors(v) {
            if !visited[u as usize] && allowed(u) {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    component.sort_unstable();
    component
}

/// Decomposes the whole graph into connected components.
///
/// Returns one sorted vertex list per component, ordered by their smallest member.
pub fn connected_components(graph: &Graph) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n as VertexId {
        if visited[start as usize] {
            continue;
        }
        let mut queue = VecDeque::new();
        let mut component = Vec::new();
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            component.push(v);
            for &u in graph.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Returns `true` when the subgraph induced by `subset` is connected.
///
/// An empty subset is considered connected.
pub fn is_connected_subset(graph: &Graph, subset: &[VertexId]) -> bool {
    if subset.is_empty() {
        return true;
    }
    let set = VertexSet::from_vec(subset.to_vec());
    let component = bfs_component(graph, set.as_slice()[0], |v| set.contains(v));
    component.len() == set.len()
}

/// The minimum degree of the subgraph induced by `subset`
/// (the paper's structure-cohesiveness measure), or `None` for an empty subset.
pub fn min_degree_in_subset(graph: &Graph, subset: &[VertexId]) -> Option<usize> {
    if subset.is_empty() {
        return None;
    }
    let set = VertexSet::from_vec(subset.to_vec());
    set.iter()
        .map(|v| {
            graph
                .neighbors(v)
                .iter()
                .filter(|&&u| set.contains(u))
                .count()
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles_and_isolated() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        b.ensure_vertex(6);
        b.build()
    }

    #[test]
    fn vertex_set_basics() {
        let s = VertexSet::from_vec(vec![3, 1, 2, 1, 3]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2));
        assert!(!s.contains(4));
        assert_eq!(s.as_slice(), &[1, 2, 3]);

        let t: VertexSet = vec![2, 3, 4].into();
        assert_eq!(s.intersection_size(&t), 2);
        assert_eq!(s.union_size(&t), 4);
        assert!((s.jaccard(&t) - 0.5).abs() < 1e-12);
        assert_eq!(VertexSet::new().jaccard(&VertexSet::new()), 1.0);
    }

    #[test]
    fn vertex_set_from_iterator() {
        let s: VertexSet = (0..5).collect();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn bfs_component_respects_predicate() {
        let g = two_triangles_and_isolated();
        assert_eq!(bfs_component(&g, 0, |_| true), vec![0, 1, 2]);
        // Forbid vertex 1: still connected through 2.
        assert_eq!(bfs_component(&g, 0, |v| v != 1), vec![0, 2]);
        // Start not allowed.
        assert!(bfs_component(&g, 0, |v| v != 0).is_empty());
        // Start out of range.
        assert!(bfs_component(&g, 42, |_| true).is_empty());
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = two_triangles_and_isolated();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
        assert_eq!(comps[2], vec![6]);
    }

    #[test]
    fn connectivity_of_subsets() {
        let g = two_triangles_and_isolated();
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        assert!(!is_connected_subset(&g, &[0, 1, 3]));
        assert!(is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[6]));
    }

    #[test]
    fn min_degree_of_subsets() {
        let g = two_triangles_and_isolated();
        assert_eq!(min_degree_in_subset(&g, &[0, 1, 2]), Some(2));
        assert_eq!(min_degree_in_subset(&g, &[0, 1]), Some(1));
        assert_eq!(min_degree_in_subset(&g, &[0, 3]), Some(0));
        assert_eq!(min_degree_in_subset(&g, &[]), None);
    }
}
