//! # sac-graph
//!
//! Spatial-graph substrate for spatial-aware community (SAC) search.
//!
//! This crate provides the data model of Fang et al. (VLDB 2017): an undirected
//! **geo-social graph** `G(V, E)` in which every vertex carries a two-dimensional
//! location, together with the graph machinery every SAC algorithm is built on:
//!
//! * a compact CSR (compressed sparse row) adjacency representation ([`Graph`]) and
//!   a builder that deduplicates edges and drops self-loops ([`GraphBuilder`]),
//! * the spatial view pairing the graph with vertex locations and a grid index for
//!   circular range and nearest-neighbour queries ([`SpatialGraph`]),
//! * the O(m) k-core decomposition of Batagelj & Zaversnik ([`core_decomposition`])
//!   and the connected-k-core ("k-ĉore") queries the paper's algorithms use
//!   ([`connected_kcore`], [`KCoreSolver`]),
//! * traversal helpers (BFS, connected components, induced-subgraph degree checks),
//! * plain-text loaders/writers for SNAP-style edge lists and location files
//!   ([`io`]),
//! * summary statistics used to reproduce Table 4 of the paper ([`GraphStats`]).
//!
//! ## Example
//!
//! ```
//! use sac_graph::{GraphBuilder, SpatialGraph, connected_kcore};
//! use sac_geom::Point;
//!
//! // A triangle plus a pendant vertex.
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let graph = b.build();
//!
//! let positions = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.0),
//!     Point::new(0.5, 1.0),
//!     Point::new(5.0, 5.0),
//! ];
//! let sg = SpatialGraph::new(graph, positions).unwrap();
//!
//! // The 2-core containing vertex 0 is the triangle {0, 1, 2}.
//! let core = connected_kcore(sg.graph(), 0, 2).unwrap();
//! assert_eq!(core.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod builder;
mod core_decomp;
mod dynamic;
mod error;
mod graph;
pub mod io;
mod kcore;
mod shard;
mod spatial;
mod stats;
mod sweep;
mod traversal;
mod truss;

pub use builder::GraphBuilder;
pub use core_decomp::{core_decomposition, CoreDecomposition};
pub use dynamic::{BatchChange, BatchOp, BatchStrategy, DynamicGraph, EdgeChange};
pub use error::GraphError;
pub use graph::{Graph, VertexId};
pub use kcore::{connected_kcore, KCoreSolver};
pub use shard::{ShardMap, ShardedGraph};
pub use spatial::SpatialGraph;
pub use stats::{degree_histogram, GraphStats};
pub use sweep::{RadiusSweepSolver, SweepStats};
pub use traversal::{
    bfs_component, connected_components, is_connected_subset, min_degree_in_subset, VertexSet,
};
pub use truss::{connected_ktruss, is_ktruss, ktruss_in_subset};
