//! Incremental radius-sweep solver for connected-k-core probes.
//!
//! Every SAC search algorithm is a loop of *probes* — "is there a connected
//! k-core containing `q` among the vertices inside circle `O(c, r)`?" — over a
//! monotone nested family of circles.  The from-scratch path pays a full grid
//! range query plus a complete subset peel per probe.  [`RadiusSweepSolver`]
//! amortises both across the whole loop:
//!
//! * **Candidate view** — one grid query plus one sort at
//!   [`RadiusSweepSolver::begin`] materialises every vertex within the largest
//!   probe radius, ordered by distance from the sweep centre.  Because the
//!   grid query and [`sac_geom::Circle::contains`] share one inclusion bound
//!   ([`sac_geom::Circle::contains_bound_sq`], monotone in the radius), the
//!   vertex set of *any* probe radius `r ≤ r_max` is exactly a prefix of that
//!   array — no further spatial queries are needed.
//! * **Pre-peel state** — the prefix membership bitset and prefix-restricted
//!   degrees are maintained incrementally: moving the probe radius only
//!   touches the annulus ring of candidates between the old and new radius.
//! * **Incremental peel** — shrinking the radius removes the annulus from the
//!   current peeled state and continues the existing deletion cascade (the
//!   k-core of a subset is contained in the k-core of its superset, so no
//!   re-peel is needed); growing the radius re-seeds from the saved pre-peel
//!   state, skipping the per-probe degree recomputation entirely.  A
//!   checkpoint of the most recent feasible probe makes the shrink path
//!   available even after an infeasible probe wrecked the working state —
//!   exactly the access pattern of the paper's binary searches.
//!
//! Probe answers are bit-identical to running [`crate::KCoreSolver`] on the
//! from-scratch circle query (the `sac-core` property suite pins this),
//! turning the per-query cost from `O(probes × Σdeg(S))` toward
//! `O(Σdeg(S) + Σdeg(changed rings))`.

use crate::{bits, Graph, SpatialGraph, VertexId};
use sac_geom::{Circle, Point, EPS};

/// Cumulative counters of one [`RadiusSweepSolver`] (exposed per query as
/// `QueryTrace::probe_count`/`candidate_count` by the serving engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Sweeps started (`begin`/`begin_collect` calls).
    pub sweeps: u64,
    /// Feasibility probes answered (prefix, circle and collected probes).
    pub probes: u64,
    /// Candidates materialised across all sweep begins.
    pub candidates: u64,
    /// Probes that rebuilt the peel state from the pre-peel arrays.
    pub reseeds: u64,
    /// Probes served incrementally (in-place shrink or checkpoint restore).
    pub incremental: u64,
}

/// A saved peel: the alive bitset and restricted degrees of the first `len`
/// candidates of a sweep, plus the member list the probe answered with.
/// Bits are set only for candidates below `len`, which keeps saves, restores
/// and resets sparse (they iterate candidate ranges, never whole bitsets).
#[derive(Debug, Clone)]
struct PeelSnapshot {
    alive: Vec<u64>,
    deg: Vec<u32>,
    len: usize,
    valid: bool,
    members: Vec<VertexId>,
}

impl PeelSnapshot {
    fn new(n: usize) -> Self {
        PeelSnapshot {
            alive: vec![0; bits::words_for(n)],
            deg: vec![0; n],
            len: 0,
            valid: false,
            members: Vec::new(),
        }
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.deg.len() < n {
            self.alive.resize(bits::words_for(n), 0);
            self.deg.resize(n, 0);
        }
    }

    /// Clears every bit this snapshot may hold and invalidates it.
    fn reset(&mut self, cand: &[(f64, VertexId)]) {
        for &(_, v) in &cand[..self.len] {
            bits::clear(&mut self.alive, v);
        }
        self.len = 0;
        self.valid = false;
    }

    /// Overwrites this snapshot with the working peel (`alive`/`deg` over
    /// `cand[..len]`) and the member list it answered with.
    fn save(
        &mut self,
        cand: &[(f64, VertexId)],
        alive: &[u64],
        deg: &[u32],
        len: usize,
        members: &[VertexId],
    ) {
        for &(_, v) in &cand[len..self.len.max(len)] {
            bits::clear(&mut self.alive, v);
        }
        for &(_, v) in &cand[..len] {
            if bits::test(alive, v) {
                bits::set(&mut self.alive, v);
                self.deg[v as usize] = deg[v as usize];
            } else {
                bits::clear(&mut self.alive, v);
            }
        }
        self.len = len;
        self.valid = true;
        self.members.clear();
        self.members.extend_from_slice(members);
    }

    /// Restores this snapshot into a working peel whose bits currently live
    /// below `work_len`, refreshing the member cache; returns the restored
    /// prefix length.
    fn restore(
        &self,
        cand: &[(f64, VertexId)],
        alive: &mut [u64],
        deg: &mut [u32],
        work_len: usize,
        members: &mut Vec<VertexId>,
    ) -> usize {
        for &(_, v) in &cand[self.len..work_len.max(self.len)] {
            bits::clear(alive, v);
        }
        for &(_, v) in &cand[..self.len] {
            if bits::test(&self.alive, v) {
                bits::set(alive, v);
                deg[v as usize] = self.deg[v as usize];
            } else {
                bits::clear(alive, v);
            }
        }
        members.clear();
        members.extend_from_slice(&self.members);
        self.len
    }
}

/// A sweep-capable connected-k-core solver over a distance-ordered candidate
/// view: one spatial query per sweep, incremental peels per probe (see the
/// module docs above for the probe model).
///
/// ```
/// use sac_graph::{GraphBuilder, RadiusSweepSolver, SpatialGraph};
/// use sac_geom::Point;
///
/// // A triangle near the origin and a far-away pendant.
/// let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let positions = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(0.5, 1.0),
///     Point::new(9.0, 9.0),
/// ];
/// let sg = SpatialGraph::new(g, positions).unwrap();
///
/// let mut sweep = RadiusSweepSolver::new(sg.num_vertices());
/// sweep.begin(&sg, Point::new(0.0, 0.0), 20.0, 0, 2, None);
/// // Probes at any radius ≤ 20 reuse the one candidate view.
/// assert_eq!(sweep.probe_radius(sg.graph(), 2.0).unwrap(), vec![0, 1, 2]);
/// assert!(sweep.probe_radius(sg.graph(), 0.5).is_none());
/// assert_eq!(sweep.probe_radius(sg.graph(), 20.0).unwrap(), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct RadiusSweepSolver {
    q: VertexId,
    k: u32,
    center: Point,
    /// `q`'s rank in the candidate order (`None` when `q` is not a candidate).
    q_idx: Option<usize>,
    /// Whether the candidate view is distance-ordered (radius probes allowed).
    by_distance: bool,
    /// Candidates as `(distance² from the sweep centre, vertex)`, ascending.
    cand: Vec<(f64, VertexId)>,
    /// Scratch for the grid range query of `begin`.
    grid_buf: Vec<VertexId>,
    /// Scratch for the distance-ordered view the candidates are built from.
    view_buf: Vec<(VertexId, f64)>,
    // Pre-peel state: prefix membership + prefix-restricted degrees,
    // maintained incrementally (annulus updates only).
    in_prefix: Vec<u64>,
    predeg: Vec<u32>,
    prefix_len: usize,
    // Working peeled state.  `work_valid` means `alive`/`deg` are exactly the
    // k-core of the first `work_len` candidates (with `q` alive); bits are
    // set only for candidates below `work_len` even after a failed cascade
    // (peeling only clears bits).
    alive: Vec<u64>,
    deg: Vec<u32>,
    work_len: usize,
    work_valid: bool,
    // Snapshot of the most recent changed feasible probe — restoring it also
    // restores the member list, so unchanged peels answer without re-walking
    // the graph.
    ckpt: PeelSnapshot,
    // "Roof" snapshot: the feasible peel with the largest prefix seen this
    // sweep.  Binary searches restart high after converging low (`AppFast`
    // re-probes near its upper bound, `AppAcc` starts every anchor at the
    // pruning radius); the roof serves those re-ascents incrementally where
    // the recency checkpoint has already moved far down.
    roof: PeelSnapshot,
    /// The member list of the current working peel (valid ⇔ `work_valid`).
    cached_members: Vec<VertexId>,
    /// Largest prefix length known to be infeasible this sweep.  Probe
    /// answers are a pure function of the prefix length and feasibility is
    /// monotone in it, so anything at or below this frontier is `None` for
    /// free.
    max_infeasible_len: usize,
    // BFS scratch (always all-clear between probes).
    visited: Vec<u64>,
    stack: Vec<VertexId>,
    stats: SweepStats,
}

impl RadiusSweepSolver {
    /// Creates a solver for graphs with at most `n` vertices.
    pub fn new(n: usize) -> Self {
        let words = bits::words_for(n);
        RadiusSweepSolver {
            q: 0,
            k: 0,
            center: Point::ORIGIN,
            q_idx: None,
            by_distance: false,
            cand: Vec::new(),
            grid_buf: Vec::new(),
            view_buf: Vec::new(),
            in_prefix: vec![0; words],
            predeg: vec![0; n],
            prefix_len: 0,
            alive: vec![0; words],
            deg: vec![0; n],
            work_len: 0,
            work_valid: false,
            ckpt: PeelSnapshot::new(n),
            roof: PeelSnapshot::new(n),
            cached_members: Vec::new(),
            max_infeasible_len: 0,
            visited: vec![0; words],
            stack: Vec::new(),
            stats: SweepStats::default(),
        }
    }

    /// Grows the internal buffers if the graph has more vertices than anticipated.
    fn ensure_capacity(&mut self, n: usize) {
        if self.deg.len() < n {
            let words = bits::words_for(n);
            self.in_prefix.resize(words, 0);
            self.alive.resize(words, 0);
            self.visited.resize(words, 0);
            self.predeg.resize(n, 0);
            self.deg.resize(n, 0);
        }
        self.ckpt.ensure_capacity(n);
        self.roof.ensure_capacity(n);
    }

    /// Clears every bit the previous sweep may have set (sparse: iterates the
    /// old candidate list) and invalidates all derived state.
    fn reset_sweep(&mut self) {
        for i in 0..self.prefix_len {
            bits::clear(&mut self.in_prefix, self.cand[i].1);
        }
        for i in 0..self.work_len {
            bits::clear(&mut self.alive, self.cand[i].1);
        }
        self.ckpt.reset(&self.cand);
        self.roof.reset(&self.cand);
        self.prefix_len = 0;
        self.work_len = 0;
        self.work_valid = false;
        self.cached_members.clear();
        self.max_infeasible_len = 0;
        self.cand.clear();
        self.q_idx = None;
    }

    /// Starts a sweep: one grid range query at the largest probe radius
    /// `r_max`, one sort by distance from `center`.  Subsequent
    /// [`RadiusSweepSolver::probe_radius`] calls at any `r ≤ r_max` answer the
    /// exact circle query `O(center, r)` (optionally restricted to a
    /// `universe` bitmap) without touching the spatial index again.
    pub fn begin(
        &mut self,
        g: &SpatialGraph,
        center: Point,
        r_max: f64,
        q: VertexId,
        k: u32,
        universe: Option<&[bool]>,
    ) {
        self.ensure_capacity(g.num_vertices());
        self.reset_sweep();
        self.q = q;
        self.k = k;
        self.center = center;
        self.by_distance = true;
        // The distance-ordered view is built by the spatial index (one grid
        // query + one sort); a universe filter preserves its order, so the
        // prefix property carries over to the filtered candidate list.
        g.vertices_by_distance_into(center, r_max, &mut self.grid_buf, &mut self.view_buf);
        self.cand.extend(
            self.view_buf
                .iter()
                .filter(|&&(v, _)| universe.is_none_or(|mask| mask[v as usize]))
                .map(|&(v, d2)| (d2, v)),
        );
        self.q_idx = self.cand.iter().position(|&(_, v)| v == q);
        self.stats.sweeps += 1;
        self.stats.candidates += self.cand.len() as u64;
    }

    /// Starts a *collected* sweep with an initially empty candidate list:
    /// [`RadiusSweepSolver::push_candidate`] grows the subset one vertex at a
    /// time (maintaining the pre-peel state incrementally) and
    /// [`RadiusSweepSolver::probe_collected`] asks the feasibility question
    /// for the vertices pushed so far.  This is the access pattern of the
    /// paper's `AppInc` expansion.
    pub fn begin_collect(&mut self, n: usize, q: VertexId, k: u32) {
        self.ensure_capacity(n);
        self.reset_sweep();
        self.q = q;
        self.k = k;
        self.by_distance = false;
        self.stats.sweeps += 1;
    }

    /// Appends `v` to a collected sweep (must not already be a candidate).
    pub fn push_candidate(&mut self, g: &Graph, v: VertexId) {
        debug_assert!(!self.by_distance, "push_candidate on a radius sweep");
        debug_assert!(
            !bits::test(&self.in_prefix, v),
            "candidate {v} pushed twice"
        );
        if self.q_idx.is_none() && v == self.q {
            self.q_idx = Some(self.cand.len());
        }
        self.cand.push((0.0, v));
        self.stats.candidates += 1;
        self.adjust_prefix(g, self.cand.len());
    }

    /// Records a probe that was answered outside the prefix machinery (the
    /// arbitrary-circle path), so `probes` counts every feasibility question.
    pub fn count_probe(&mut self) {
        self.stats.probes += 1;
    }

    /// Cumulative sweep counters.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// Number of candidates in the current sweep.
    pub fn candidate_count(&self) -> usize {
        self.cand.len()
    }

    /// The smallest candidate distance strictly greater than `r`
    /// (`f64::INFINITY` when every candidate is within `r`).  Distances are
    /// computed as `Point::distance` does, so the value matches a linear scan
    /// over the candidates bit-for-bit.
    pub fn next_distance_above(&self, r: f64) -> f64 {
        debug_assert!(self.by_distance, "next_distance_above on a collected sweep");
        let i = self.cand.partition_point(|&(d2, _)| d2.sqrt() <= r);
        match self.cand.get(i) {
            Some(&(d2, _)) => d2.sqrt(),
            None => f64::INFINITY,
        }
    }

    /// The candidates inside an arbitrary `circle`, appended to `out`
    /// (cleared first).  The caller must guarantee the sweep's candidate view
    /// covers the circle (every vertex of `circle ∩ universe` lies within the
    /// sweep's `r_max` of its centre); membership uses the same
    /// [`Circle::contains`] bound as the spatial index, so the result equals
    /// the from-scratch grid query filtered by the universe.
    pub fn candidates_in_circle_into(
        &self,
        g: &SpatialGraph,
        circle: &Circle,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        // Conservative prefix cut: members lie within |center, circle.center|
        // + the circle's inclusion radius of the sweep centre; the EPS slack
        // dwarfs floating-point error, and exact membership is decided by
        // `contains` below.
        let reach = self.center.distance(circle.center) + circle.radius;
        let bound = reach + EPS * (1.0 + reach);
        let bound_sq = bound * bound;
        let cut = if self.by_distance {
            self.cand.partition_point(|&(d2, _)| d2 <= bound_sq)
        } else {
            self.cand.len()
        };
        for &(_, v) in &self.cand[..cut] {
            if circle.contains(g.position(v)) {
                out.push(v);
            }
        }
    }

    /// Answers the probe "does the subgraph induced by the candidates inside
    /// `O(center, r)` contain a connected k-core with `q`?", returning the
    /// sorted component when it does.  Bit-identical to running
    /// [`crate::KCoreSolver`] on the from-scratch circle query.
    pub fn probe_radius(&mut self, g: &Graph, r: f64) -> Option<Vec<VertexId>> {
        debug_assert!(self.by_distance, "probe_radius on a collected sweep");
        let bound_sq = Circle::new(self.center, r.max(0.0)).contains_bound_sq();
        let len = self.cand.partition_point(|&(d2, _)| d2 <= bound_sq);
        self.probe_len(g, len)
    }

    /// Answers the feasibility probe for every candidate pushed so far.
    pub fn probe_collected(&mut self, g: &Graph) -> Option<Vec<VertexId>> {
        self.probe_len(g, self.cand.len())
    }

    /// The probe core: feasibility of the first `len` candidates.
    ///
    /// Within one sweep the answer is a pure function of `len` (the candidate
    /// order is fixed), and feasibility is monotone in `len` (a larger prefix
    /// is a superset, and k-cores are monotone under subgraph inclusion) —
    /// the two facts behind the infeasibility-frontier and unchanged-peel
    /// fast paths.
    fn probe_len(&mut self, g: &Graph, len: usize) -> Option<Vec<VertexId>> {
        self.stats.probes += 1;
        // At or below a known-infeasible prefix: `None` without touching the
        // peel at all.
        if len <= self.max_infeasible_len {
            return None;
        }
        let q_idx = self.q_idx?;
        if q_idx >= len {
            self.max_infeasible_len = self.max_infeasible_len.max(len);
            return None;
        }
        // Path choice is cost-based: an incremental shrink touches the
        // annulus ring between the saved peel and the target prefix, a
        // re-seed touches the target prefix itself — when every ring
        // outweighs the prefix, rebuilding from the maintained pre-peel
        // degrees is the cheaper route.  Sources in preference order: the
        // in-place working peel (no restore copy), the recency checkpoint,
        // the roof (largest feasible peel — serves the re-ascents binary
        // searches make after converging low).
        let shrink_from_work =
            self.work_valid && self.work_len >= len && self.work_len - len <= len;
        let shrink_from_ckpt =
            self.ckpt.valid && self.ckpt.len >= len && self.ckpt.len - len <= len;
        let shrink_from_roof =
            self.roof.valid && self.roof.len >= len && self.roof.len - len <= len;
        // `Some(changed)`: q survives, `changed` says whether the alive set
        // differs from the state `cached_members` was collected for; `None`:
        // q was peeled.
        let outcome = if self.work_valid && self.work_len == len {
            // Same prefix as the previous (feasible) probe: answer directly.
            Some(false)
        } else if shrink_from_work {
            // Monotone shrink: remove the annulus ring, continue the cascade.
            self.stats.incremental += 1;
            self.shrink(g, len)
        } else if shrink_from_ckpt || shrink_from_roof {
            self.stats.incremental += 1;
            let snapshot = if shrink_from_ckpt {
                &self.ckpt
            } else {
                &self.roof
            };
            self.work_len = snapshot.restore(
                &self.cand,
                &mut self.alive,
                &mut self.deg,
                self.work_len,
                &mut self.cached_members,
            );
            self.work_valid = true;
            if self.work_len > len {
                self.shrink(g, len)
            } else {
                Some(false)
            }
        } else {
            // Growing past every saved peel (or shrinking far below them
            // all): re-seed from the pre-peel state — prefix degrees are
            // maintained, so no degree recomputation.
            self.stats.reseeds += 1;
            self.reseed(g, len)
        };
        let Some(changed) = outcome else {
            self.work_valid = false;
            self.max_infeasible_len = self.max_infeasible_len.max(len);
            return None;
        };
        self.work_valid = true;
        self.work_len = len;
        if changed {
            // The alive set moved: re-collect the component and re-anchor the
            // snapshots.  Unchanged probes keep the (larger) saved peels —
            // same alive set, wider restore coverage, no copying.
            self.cached_members = self.collect_component(g);
            self.ckpt.save(
                &self.cand,
                &self.alive,
                &self.deg,
                len,
                &self.cached_members,
            );
            if !self.roof.valid || len >= self.roof.len {
                self.roof.save(
                    &self.cand,
                    &self.alive,
                    &self.deg,
                    len,
                    &self.cached_members,
                );
            }
        }
        Some(self.cached_members.clone())
    }

    /// Moves the pre-peel state (prefix bitset + prefix-restricted degrees) to
    /// `len`, touching only the annulus of candidates in between.
    fn adjust_prefix(&mut self, g: &Graph, len: usize) {
        while self.prefix_len < len {
            let v = self.cand[self.prefix_len].1;
            bits::set(&mut self.in_prefix, v);
            let mut d = 0u32;
            for &u in g.neighbors(v) {
                if bits::test(&self.in_prefix, u) {
                    self.predeg[u as usize] += 1;
                    d += 1;
                }
            }
            // v's own bit is set above, but v is never its own neighbour
            // (the graph builder drops self-loops), so d counts exactly the
            // prefix members adjacent to v.
            self.predeg[v as usize] = d;
            self.prefix_len += 1;
        }
        while self.prefix_len > len {
            self.prefix_len -= 1;
            let v = self.cand[self.prefix_len].1;
            bits::clear(&mut self.in_prefix, v);
            for &u in g.neighbors(v) {
                if bits::test(&self.in_prefix, u) {
                    self.predeg[u as usize] -= 1;
                }
            }
        }
    }

    /// Rebuilds the working peel from the pre-peel state at `len` and runs the
    /// full deletion cascade.  `None` when `q` is peeled, `Some(true)` (the
    /// alive set must be re-collected) otherwise.
    fn reseed(&mut self, g: &Graph, len: usize) -> Option<bool> {
        self.adjust_prefix(g, len);
        for i in len..self.work_len {
            bits::clear(&mut self.alive, self.cand[i].1);
        }
        for i in 0..len {
            let v = self.cand[i].1;
            bits::set(&mut self.alive, v);
            self.deg[v as usize] = self.predeg[v as usize];
        }
        self.work_len = len;
        self.stack.clear();
        for i in 0..len {
            let v = self.cand[i].1;
            if self.deg[v as usize] < self.k {
                bits::clear(&mut self.alive, v);
                if v == self.q {
                    return None;
                }
                self.stack.push(v);
            }
        }
        if self.cascade(g) {
            Some(true)
        } else {
            None
        }
    }

    /// Shrinks the valid working peel from `work_len` down to `len` by
    /// removing the annulus ring and cascading.  `None` when `q` is peeled;
    /// `Some(false)` when the annulus held no alive vertex at all (the peel —
    /// and hence the component — is unchanged, only the prefix boundary
    /// moved), `Some(true)` otherwise.
    fn shrink(&mut self, g: &Graph, len: usize) -> Option<bool> {
        self.stack.clear();
        let mut removed_any = false;
        for i in len..self.work_len {
            let v = self.cand[i].1;
            // q's candidate rank is below `len`, so the annulus never holds q.
            if bits::test(&self.alive, v) {
                bits::clear(&mut self.alive, v);
                self.stack.push(v);
                removed_any = true;
            }
        }
        self.work_len = len;
        if !removed_any {
            return Some(false);
        }
        if self.cascade(g) {
            Some(true)
        } else {
            None
        }
    }

    /// Runs the deletion cascade from the removal stack, stopping early the
    /// moment `q` is peeled (the probe answer is already `None`; the partial
    /// state is discarded by the caller).  Returns whether `q` survives.
    fn cascade(&mut self, g: &Graph) -> bool {
        while let Some(v) = self.stack.pop() {
            for &u in g.neighbors(v) {
                if bits::test(&self.alive, u) {
                    self.deg[u as usize] -= 1;
                    if self.deg[u as usize] + 1 == self.k {
                        bits::clear(&mut self.alive, u);
                        if u == self.q {
                            self.stack.clear();
                            return false;
                        }
                        self.stack.push(u);
                    }
                }
            }
        }
        true
    }

    /// BFS from `q` over the peeled survivors (read-only on the peel state),
    /// returning the sorted component.
    ///
    /// The visited bitset *is* the component, so scanning its words in order
    /// emits the members already id-sorted — no comparison sort — and clears
    /// the scratch in the same pass.
    fn collect_component(&mut self, g: &Graph) -> Vec<VertexId> {
        self.stack.clear();
        self.stack.push(self.q);
        bits::set(&mut self.visited, self.q);
        let mut count = 0usize;
        let mut min_word = (self.q >> 6) as usize;
        let mut max_word = min_word;
        while let Some(v) = self.stack.pop() {
            count += 1;
            for &u in g.neighbors(v) {
                if bits::test(&self.alive, u) && !bits::test(&self.visited, u) {
                    bits::set(&mut self.visited, u);
                    min_word = min_word.min((u >> 6) as usize);
                    max_word = max_word.max((u >> 6) as usize);
                    self.stack.push(u);
                }
            }
        }
        let mut component = Vec::with_capacity(count);
        for w in min_word..=max_word {
            let mut word = self.visited[w];
            self.visited[w] = 0;
            while word != 0 {
                component.push(((w as u32) << 6) | word.trailing_zeros());
                word &= word - 1;
            }
        }
        component
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, KCoreSolver};

    /// The paper's Figure 3 layout: a left 2-ĉore {0..5}, a right triangle
    /// {6,7,8} and a pendant 9.
    fn figure3() -> SpatialGraph {
        let g = GraphBuilder::from_edges([
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (0, 4),
            (3, 4),
            (3, 5),
            (4, 5),
            (6, 7),
            (7, 8),
            (6, 8),
            (8, 9),
        ]);
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.3),
            Point::new(0.1, 0.5),
            Point::new(1.0, 0.2),
            Point::new(1.2, 0.8),
            Point::new(1.7, 0.5),
            Point::new(4.0, 4.0),
            Point::new(4.5, 4.2),
            Point::new(4.2, 4.7),
            Point::new(5.5, 5.5),
        ];
        SpatialGraph::new(g, positions).unwrap()
    }

    fn from_scratch(
        sg: &SpatialGraph,
        solver: &mut KCoreSolver,
        center: Point,
        r: f64,
        q: VertexId,
        k: u32,
    ) -> Option<Vec<VertexId>> {
        let subset = sg.vertices_in_circle(&Circle::new(center, r));
        solver.kcore_containing(sg.graph(), &subset, q, k)
    }

    #[test]
    fn probes_match_from_scratch_on_arbitrary_schedules() {
        let sg = figure3();
        let center = sg.position(0);
        let mut sweep = RadiusSweepSolver::new(sg.num_vertices());
        let mut reference = KCoreSolver::new(sg.num_vertices());
        sweep.begin(&sg, center, 10.0, 0, 2, None);
        // Shrinks, grows, repeats — every answer must match the scratch path.
        for r in [
            10.0, 2.0, 0.7, 1.5, 0.2, 9.0, 0.55, 0.55, 3.0, 0.0, 10.0, 1.0,
        ] {
            let via_sweep = sweep.probe_radius(sg.graph(), r);
            let scratch = from_scratch(&sg, &mut reference, center, r, 0, 2);
            assert_eq!(via_sweep, scratch, "radius {r}");
        }
        let stats = sweep.stats();
        assert_eq!(stats.probes, 12);
        assert!(
            stats.incremental > 0,
            "shrinking probes must be incremental"
        );
        assert!(stats.reseeds > 0, "growing probes must re-seed");
    }

    #[test]
    fn universe_restriction_and_recentred_sweeps() {
        let sg = figure3();
        let mut sweep = RadiusSweepSolver::new(sg.num_vertices());
        // Restrict to the triangle {0, 1, 2}.
        let mut universe = vec![false; sg.num_vertices()];
        for v in [0u32, 1, 2] {
            universe[v as usize] = true;
        }
        sweep.begin(&sg, sg.position(0), 10.0, 0, 2, Some(&universe));
        assert_eq!(sweep.probe_radius(sg.graph(), 10.0).unwrap(), vec![0, 1, 2]);
        assert!(sweep.probe_radius(sg.graph(), 0.1).is_none());
        // A second sweep on the same solver, centred elsewhere: stale bits
        // from the first sweep must not leak.
        sweep.begin(&sg, sg.position(6), 2.0, 6, 2, None);
        assert_eq!(sweep.probe_radius(sg.graph(), 1.0).unwrap(), vec![6, 7, 8]);
        assert!(sweep.probe_radius(sg.graph(), 0.3).is_none());
        // q outside the universe: every probe is infeasible.
        sweep.begin(&sg, sg.position(0), 10.0, 3, 2, Some(&universe));
        assert!(sweep.probe_radius(sg.graph(), 10.0).is_none());
    }

    #[test]
    fn collected_sweeps_match_subset_solver() {
        let sg = figure3();
        let g = sg.graph();
        let mut sweep = RadiusSweepSolver::new(sg.num_vertices());
        let mut reference = KCoreSolver::new(sg.num_vertices());
        sweep.begin_collect(sg.num_vertices(), 0, 2);
        let mut pushed = Vec::new();
        for v in [0u32, 3, 1, 4, 2, 5, 9] {
            sweep.push_candidate(g, v);
            pushed.push(v);
            assert_eq!(
                sweep.probe_collected(g),
                reference.kcore_containing(g, &pushed, 0, 2),
                "after pushing {v}"
            );
        }
    }

    #[test]
    fn candidate_view_answers_arbitrary_circles() {
        let sg = figure3();
        let mut sweep = RadiusSweepSolver::new(sg.num_vertices());
        sweep.begin(&sg, sg.position(0), 20.0, 0, 2, None);
        let mut got = Vec::new();
        for (center, r) in [
            (Point::new(1.2, 0.5), 0.9),
            (Point::new(0.0, 0.0), 0.45),
            (Point::new(4.3, 4.3), 1.0),
        ] {
            let circle = Circle::new(center, r);
            sweep.candidates_in_circle_into(&sg, &circle, &mut got);
            got.sort_unstable();
            let mut expected = sg.vertices_in_circle(&circle);
            expected.sort_unstable();
            assert_eq!(got, expected, "circle at {center:?} r={r}");
        }
    }

    #[test]
    fn next_distance_above_matches_linear_scan() {
        let sg = figure3();
        let center = sg.position(0);
        let mut sweep = RadiusSweepSolver::new(sg.num_vertices());
        sweep.begin(&sg, center, 100.0, 0, 2, None);
        for r in [0.0, 0.5, 1.0, 3.0, 7.7, 100.0] {
            let expected = (0..sg.num_vertices() as u32)
                .map(|v| sg.position(v).distance(center))
                .filter(|&d| d > r)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(sweep.next_distance_above(r), expected, "r = {r}");
        }
    }

    #[test]
    fn k_zero_and_growing_graphs() {
        let sg = figure3();
        let mut sweep = RadiusSweepSolver::new(2); // deliberately undersized
        sweep.begin(&sg, sg.position(0), 10.0, 0, 0, None);
        // k = 0: the probe answer is the connected reachable set inside r.
        assert_eq!(sweep.probe_radius(sg.graph(), 0.0).unwrap(), vec![0]);
        assert_eq!(
            sweep.probe_radius(sg.graph(), 2.0).unwrap(),
            vec![0, 1, 2, 3, 4, 5]
        );
    }
}
