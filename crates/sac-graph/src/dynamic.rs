//! Dynamic-graph write front: mutable adjacency with **incremental k-core
//! maintenance**.
//!
//! The serving stack ([`crate::SpatialGraph`] + the `sac-engine` snapshot
//! cache) is read-only by design; real geo-social graphs mutate continuously.
//! [`DynamicGraph`] is the mutable counterpart: an adjacency-list graph that
//! accepts single edge insertions/deletions and vertex additions while keeping
//! the core number of every vertex **exactly** up to date — without re-running
//! the `O(m)` [`crate::core_decomposition`] peel after every change.
//!
//! The maintenance algorithms are the classic subcore-traversal ones (Sarıyüce
//! et al., *Streaming algorithms for k-core decomposition*, VLDB 2013; Li, Yu
//! & Mao, TKDE 2014), the same family the paper's `AppInc` repair idea builds
//! on:
//!
//! * **Insertion** of `{u, v}`: let `K = min(core(u), core(v))`.  Only
//!   vertices with core number `K` in the subcore reachable from the lower
//!   endpoint(s) can rise, and only by one.  The candidate subcore is walked
//!   (BFS over `core == K` vertices), each candidate's *core degree*
//!   (neighbours with core ≥ K) is counted, and candidates are peeled while
//!   their degree is ≤ K; survivors rise to `K + 1`.
//! * **Removal** of `{u, v}`: only `core == K` vertices can drop, by one.  A
//!   lazy cascade starts at the endpoint(s) with core `K`: a vertex drops when
//!   its support (neighbours with core ≥ K, minus already-dropped ones) falls
//!   below `K`, and each drop decrements the support of its touched
//!   neighbours.
//!
//! Both cascades touch only the affected subcore — for a small delta this is
//! orders of magnitude less work than a full re-decomposition, and the result
//! is bit-identical (the property suite in `sac-live` asserts this on random
//! update streams).
//!
//! Each mutation reports an [`EdgeChange`] carrying the information a snapshot
//! cache needs for *selective* invalidation: the largest `k` whose k-core
//! (membership or component structure) may have changed.

use crate::{core_decomposition, CoreDecomposition, Graph, VertexId};

/// The effect of one edge mutation on the core decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeChange {
    /// Whether the mutation changed the graph at all (`false` for inserting an
    /// existing edge, removing an absent one, or a self-loop).
    pub applied: bool,
    /// Vertices whose core number changed (each by exactly ±1), sorted by id.
    pub changed: Vec<VertexId>,
    /// Upper bound on the `k` values whose k-core may differ from before the
    /// mutation: every `k` in `1..=dirty_up_to` may have changed membership or
    /// component structure; every `k > dirty_up_to` is untouched.  `0` when
    /// the mutation was a no-op.
    ///
    /// For an insertion this is `min(core(u), core(v))` *after* the update
    /// (the inserted edge only exists in k-cores up to that `k`, and any core
    /// rise lands exactly there); for a removal it is the same minimum
    /// *before* the update.
    pub dirty_up_to: u32,
}

/// One edge mutation of a bulk delta (see [`DynamicGraph::apply_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert the undirected edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Remove the undirected edge `{u, v}`.
    Remove(VertexId, VertexId),
}

impl BatchOp {
    /// The endpoints of the mutation.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            BatchOp::Insert(u, v) | BatchOp::Remove(u, v) => (u, v),
        }
    }
}

/// How [`DynamicGraph::apply_batch_with`] repairs core numbers for a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchStrategy {
    /// Pick per delta size: one shared peel for heavy deltas, per-edge
    /// cascades for small ones.
    #[default]
    Auto,
    /// Run the incremental subcore cascade once per applied edge.
    PerEdge,
    /// Apply all edges structurally, then repair with one shared `O(n + m)`
    /// peel over the whole adjacency.
    Recompute,
}

/// The effect of one bulk delta on the core decomposition (the batch
/// counterpart of [`EdgeChange`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchChange {
    /// The ops that changed the graph, in application order (no-ops dropped).
    pub applied: Vec<BatchOp>,
    /// Vertices whose core number differs between the batch boundaries,
    /// sorted by id.
    pub changed: Vec<VertexId>,
    /// Upper bound on the `k` values whose k-core (membership or component
    /// structure) may differ between the state before and after the batch;
    /// `0` when nothing applied.
    pub dirty_up_to: u32,
    /// Whether the shared-peel strategy ran (`false` = per-edge cascades).
    pub recomputed: bool,
    /// Microseconds spent repairing core numbers: the one shared peel on the
    /// recompute path, or the per-edge cascade loop (structural application
    /// included — the cascades interleave with the adjacency edits) on the
    /// per-edge path.  The commit pipeline's observability spans feed on
    /// this, so "peel" vs "delta apply" time stays attributable per batch.
    pub repair_micros: u64,
}

/// A mutable graph that maintains exact core numbers under edge insertions,
/// edge removals and vertex additions.
///
/// Adjacency is stored as one sorted `Vec<VertexId>` per vertex — cheap to
/// mutate, cheap to convert back to the immutable CSR [`Graph`] once per
/// published epoch ([`DynamicGraph::to_graph`]).  Scratch state for the
/// maintenance cascades is epoch-marked (the [`crate::KCoreSolver`] trick), so
/// a mutation allocates nothing beyond the cascade's output.
///
/// ```
/// use sac_graph::{DynamicGraph, GraphBuilder, core_decomposition};
///
/// // Triangle {0,1,2} plus pendant 3.
/// let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let mut dynamic = DynamicGraph::from_graph(&g);
/// assert_eq!(dynamic.core_number(3), 1);
///
/// // Closing the triangle {1, 2, 3} lifts vertex 3 into the 2-core.
/// let change = dynamic.insert_edge(1, 3).unwrap();
/// assert_eq!(change.changed, vec![3]);
/// assert_eq!(dynamic.core_number(3), 2);
///
/// // The maintained numbers equal a full recomputation.
/// let rebuilt = dynamic.to_graph();
/// assert_eq!(
///     core_decomposition(&rebuilt).core_numbers(),
///     dynamic.core_numbers()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
    core: Vec<u32>,
    // Epoch-marked scratch for the maintenance cascades.
    epoch: u32,
    mark: Vec<u32>,
    evicted: Vec<u32>,
    processed: Vec<u32>,
    cd: Vec<u32>,
    queue: Vec<VertexId>,
}

impl DynamicGraph {
    /// A write front over `graph`, computing the core decomposition from
    /// scratch.
    pub fn from_graph(graph: &Graph) -> Self {
        let decomposition = core_decomposition(graph);
        DynamicGraph::from_parts(graph, &decomposition)
    }

    /// A write front over `graph` seeded with an already-computed
    /// decomposition (e.g. the serving engine's cached one), skipping the
    /// `O(m)` peel.
    ///
    /// # Panics
    ///
    /// Panics when the decomposition does not match the graph's vertex count.
    pub fn from_parts(graph: &Graph, decomposition: &CoreDecomposition) -> Self {
        let n = graph.num_vertices();
        assert_eq!(
            decomposition.core_numbers().len(),
            n,
            "decomposition does not match graph"
        );
        let adj: Vec<Vec<VertexId>> = (0..n)
            .map(|v| graph.neighbors(v as VertexId).to_vec())
            .collect();
        DynamicGraph {
            adj,
            num_edges: graph.num_edges(),
            core: decomposition.core_numbers().to_vec(),
            epoch: 0,
            mark: vec![0; n],
            evicted: vec![0; n],
            processed: vec![0; n],
            cd: vec![0; n],
            queue: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Current degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maintained core number of `v`.
    #[inline]
    pub fn core_number(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// Maintained core numbers, indexed by vertex id.
    #[inline]
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// The largest maintained core number (the graph's degeneracy).
    pub fn max_core(&self) -> u32 {
        self.core.iter().copied().max().unwrap_or(0)
    }

    /// Returns `true` when the undirected edge `{u, v}` currently exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if (u as usize) >= self.adj.len() || (v as usize) >= self.adj.len() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Appends a new isolated vertex (core number 0) and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.adj.len() as VertexId;
        self.adj.push(Vec::new());
        self.core.push(0);
        self.mark.push(0);
        self.evicted.push(0);
        self.processed.push(0);
        self.cd.push(0);
        v
    }

    fn check_endpoints(&self, u: VertexId, v: VertexId) -> Result<(), crate::GraphError> {
        let n = self.adj.len() as u64;
        for w in [u, v] {
            if (w as u64) >= n {
                return Err(crate::GraphError::VertexOutOfRange(w));
            }
        }
        Ok(())
    }

    fn bump_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.mark.iter_mut().for_each(|x| *x = 0);
            self.evicted.iter_mut().for_each(|x| *x = 0);
            self.processed.iter_mut().for_each(|x| *x = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Inserts the undirected edge `{u, v}` and incrementally repairs the core
    /// numbers.
    ///
    /// Self-loops and already-present edges are no-ops (`applied == false`).
    /// Returns an error when either endpoint is out of range.
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
    ) -> Result<EdgeChange, crate::GraphError> {
        self.check_endpoints(u, v)?;
        if u == v || self.has_edge(u, v) {
            return Ok(EdgeChange::default());
        }
        for (a, b) in [(u, v), (v, u)] {
            let list = &mut self.adj[a as usize];
            let pos = list.binary_search(&b).unwrap_err();
            list.insert(pos, b);
        }
        self.num_edges += 1;

        // Purecore traversal (insertion): only core == K vertices reachable
        // from the lower-core endpoint(s) can rise, each by exactly one — and
        // a riser needs K + 1 supporters among {core > K} ∪ {fellow risers},
        // so every vertex on a riser path has core degree cd > K.  The BFS
        // therefore expands only through vertices with cd > K: vertices with
        // cd <= K are still *visited* (they sit on the candidate boundary and
        // must feed the eviction cascade) but never expanded, which keeps the
        // walk local instead of flooding the whole core-K level of the graph.
        let k = self.core[u as usize].min(self.core[v as usize]);
        let epoch = self.bump_epoch();

        self.queue.clear();
        for root in [u, v] {
            if self.core[root as usize] == k && self.mark[root as usize] != epoch {
                self.mark[root as usize] = epoch;
                self.queue.push(root);
            }
        }
        let mut candidates: Vec<VertexId> = Vec::new();
        let mut head = 0usize;
        while head < self.queue.len() {
            let w = self.queue[head];
            head += 1;
            candidates.push(w);
            let mut support = 0u32;
            for &x in &self.adj[w as usize] {
                if self.core[x as usize] >= k {
                    support += 1;
                }
            }
            self.cd[w as usize] = support;
            if support > k {
                for &x in &self.adj[w as usize] {
                    if self.core[x as usize] == k && self.mark[x as usize] != epoch {
                        self.mark[x as usize] = epoch;
                        self.queue.push(x);
                    }
                }
            }
        }

        // Peel candidates whose support cannot reach K + 1; survivors rise.
        // Every core == K vertex has >= K neighbours with core >= K, so
        // supports start at K or above and eviction triggers exactly when a
        // decrement lands on K.
        self.queue.clear();
        for &w in &candidates {
            if self.cd[w as usize] <= k {
                self.evicted[w as usize] = epoch;
                self.queue.push(w);
            }
        }
        while let Some(w) = self.queue.pop() {
            for &x in &self.adj[w as usize] {
                if self.mark[x as usize] == epoch && self.evicted[x as usize] != epoch {
                    self.cd[x as usize] -= 1;
                    if self.cd[x as usize] == k {
                        self.evicted[x as usize] = epoch;
                        self.queue.push(x);
                    }
                }
            }
        }

        let mut changed: Vec<VertexId> = candidates
            .into_iter()
            .filter(|&w| self.evicted[w as usize] != epoch)
            .collect();
        for &w in &changed {
            self.core[w as usize] = k + 1;
        }
        changed.sort_unstable();

        // The inserted edge exists in every k-core up to min(core) after the
        // update; a rise lands exactly at K + 1 == that minimum.
        let dirty_up_to = self.core[u as usize].min(self.core[v as usize]);
        Ok(EdgeChange {
            applied: true,
            changed,
            dirty_up_to,
        })
    }

    /// Removes the undirected edge `{u, v}` and incrementally repairs the core
    /// numbers.
    ///
    /// Removing an absent edge (or a self-loop) is a no-op
    /// (`applied == false`).  Returns an error when either endpoint is out of
    /// range.
    pub fn remove_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
    ) -> Result<EdgeChange, crate::GraphError> {
        self.check_endpoints(u, v)?;
        if u == v || !self.has_edge(u, v) {
            return Ok(EdgeChange::default());
        }
        // The removed edge existed in every k-core up to min(core) before the
        // update; drops land exactly at that minimum.
        let k = self.core[u as usize].min(self.core[v as usize]);
        for (a, b) in [(u, v), (v, u)] {
            let list = &mut self.adj[a as usize];
            let pos = list.binary_search(&b).expect("edge exists");
            list.remove(pos);
        }
        self.num_edges -= 1;

        // Lazy drop cascade (removal): only core == K vertices can drop, each
        // by exactly one.  `mark` flags vertices whose support has been
        // counted; `evicted` flags dropped vertices (core updated at the end
        // so supports are counted against pre-cascade numbers); `processed`
        // flags evicted vertices whose decrement pass has already run.  A
        // first-touch support count must exclude exactly the `processed`
        // droppers: the still-queued ones remain counted and subtract
        // themselves when they pop — excluding them up front too would
        // double-count the loss and drop vertices that actually survive.
        let epoch = self.bump_epoch();
        self.queue.clear();
        let mut dropped: Vec<VertexId> = Vec::new();
        for root in [u, v] {
            if self.core[root as usize] != k || self.mark[root as usize] == epoch {
                continue;
            }
            self.mark[root as usize] = epoch;
            let support = self.adj[root as usize]
                .iter()
                .filter(|&&x| self.core[x as usize] >= k)
                .count() as u32;
            self.cd[root as usize] = support;
            if support < k {
                self.evicted[root as usize] = epoch;
                self.queue.push(root);
            }
        }
        while let Some(w) = self.queue.pop() {
            dropped.push(w);
            self.processed[w as usize] = epoch;
            for i in 0..self.degree(w) {
                let x = self.adj[w as usize][i];
                if self.core[x as usize] != k || self.evicted[x as usize] == epoch {
                    continue;
                }
                if self.mark[x as usize] != epoch {
                    // First touch: count x's support now, excluding droppers
                    // that already ran their decrement pass (w included).
                    self.mark[x as usize] = epoch;
                    let support = self.adj[x as usize]
                        .iter()
                        .filter(|&&y| {
                            self.core[y as usize] >= k
                                && (self.core[y as usize] > k
                                    || self.processed[y as usize] != epoch)
                        })
                        .count() as u32;
                    self.cd[x as usize] = support;
                } else {
                    self.cd[x as usize] -= 1;
                }
                if self.cd[x as usize] < k {
                    self.evicted[x as usize] = epoch;
                    self.queue.push(x);
                }
            }
        }
        for &w in &dropped {
            self.core[w as usize] = k - 1;
        }
        dropped.sort_unstable();
        Ok(EdgeChange {
            applied: true,
            changed: dropped,
            dirty_up_to: k,
        })
    }

    /// Applies a whole batch of edge mutations with the automatically chosen
    /// repair strategy (see [`DynamicGraph::apply_batch_with`] and
    /// [`BatchStrategy::Auto`]).
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<BatchChange, crate::GraphError> {
        self.apply_batch_with(ops, BatchStrategy::Auto)
    }

    /// Applies a batch of edge mutations and repairs the core numbers once
    /// for the whole delta.
    ///
    /// Endpoints of **every** op are validated before anything mutates, so a
    /// bad batch is all-or-nothing.  Ops apply in order with the usual no-op
    /// semantics (self-loops, duplicate inserts, absent removals are skipped)
    /// — a batch may legitimately toggle the same edge several times.
    ///
    /// Two repair strategies produce bit-identical core numbers:
    ///
    /// * [`BatchStrategy::PerEdge`] runs the incremental subcore cascade per
    ///   applied edge — optimal for small deltas.
    /// * [`BatchStrategy::Recompute`] applies all edges structurally first and
    ///   then runs **one shared peel** over the adjacency (`O(n + m)`),
    ///   amortising the repair across the whole delta — for heavy-churn
    ///   deltas this beats paying a cascade per edge (the `sharded_scaling`
    ///   bench gates the win).
    /// * [`BatchStrategy::Auto`] picks `Recompute` when the delta is large
    ///   relative to the graph, `PerEdge` otherwise.
    ///
    /// The returned [`BatchChange`] reports the applied ops (in application
    /// order), the vertices whose core number changed between the batch
    /// boundaries, and a `dirty_up_to` bound valid for the old-epoch →
    /// new-epoch transition (intermediate states are never published).
    pub fn apply_batch_with(
        &mut self,
        ops: &[BatchOp],
        strategy: BatchStrategy,
    ) -> Result<BatchChange, crate::GraphError> {
        for op in ops {
            let (u, v) = op.endpoints();
            self.check_endpoints(u, v)?;
        }
        let per_edge = match strategy {
            BatchStrategy::PerEdge => true,
            BatchStrategy::Recompute => false,
            // Heuristic crossover: one shared `O(n + m)` peel amortises once
            // the delta stops being tiny relative to the graph; below that,
            // per-edge subcore cascades are cheaper.
            BatchStrategy::Auto => ops.len() < 8 || ops.len() * 12 < self.num_edges().max(1),
        };
        if per_edge {
            return Ok(self.apply_batch_per_edge(ops));
        }

        // Shared-repair path: snapshot the old cores, apply every op
        // structurally, recompute the decomposition with one peel.
        let old_core = self.core.clone();
        let mut applied: Vec<BatchOp> = Vec::new();
        for op in ops {
            let (u, v) = op.endpoints();
            if u == v {
                continue;
            }
            match op {
                BatchOp::Insert(..) => {
                    if self.has_edge(u, v) {
                        continue;
                    }
                    for (a, b) in [(u, v), (v, u)] {
                        let list = &mut self.adj[a as usize];
                        let pos = list.binary_search(&b).unwrap_err();
                        list.insert(pos, b);
                    }
                    self.num_edges += 1;
                }
                BatchOp::Remove(..) => {
                    if !self.has_edge(u, v) {
                        continue;
                    }
                    for (a, b) in [(u, v), (v, u)] {
                        let list = &mut self.adj[a as usize];
                        let pos = list.binary_search(&b).expect("edge exists");
                        list.remove(pos);
                    }
                    self.num_edges -= 1;
                }
            }
            applied.push(*op);
        }
        let repair_start = std::time::Instant::now();
        self.recompute_cores();
        let repair_micros = repair_start.elapsed().as_micros() as u64;

        // Dirty bound for cache invalidation across the epoch boundary: an
        // inserted edge lives in the *new* k-cores up to min(new core of its
        // endpoints); a removed edge lived in the *old* k-cores up to
        // min(old core); a vertex whose core moved changes membership of
        // every k-core up to max(old, new).  (Conservative for edges toggled
        // back and forth within the batch.)
        let mut dirty_up_to = 0u32;
        for op in &applied {
            let (u, v) = op.endpoints();
            let bound = match op {
                BatchOp::Insert(..) => self.core[u as usize].min(self.core[v as usize]),
                BatchOp::Remove(..) => old_core[u as usize].min(old_core[v as usize]),
            };
            dirty_up_to = dirty_up_to.max(bound);
        }
        let mut changed: Vec<VertexId> = (0..self.core.len() as VertexId)
            .filter(|&v| self.core[v as usize] != old_core[v as usize])
            .collect();
        for &v in &changed {
            dirty_up_to = dirty_up_to.max(self.core[v as usize].max(old_core[v as usize]));
        }
        changed.sort_unstable();
        Ok(BatchChange {
            applied,
            changed,
            dirty_up_to,
            recomputed: true,
            repair_micros,
        })
    }

    /// The per-edge strategy: the existing incremental cascades, one per
    /// applied op, with the dirty bounds and core changes accumulated.
    fn apply_batch_per_edge(&mut self, ops: &[BatchOp]) -> BatchChange {
        let old_core = self.core.clone();
        let mut applied = Vec::new();
        let mut dirty_up_to = 0u32;
        let repair_start = std::time::Instant::now();
        for op in ops {
            let (u, v) = op.endpoints();
            let change = match op {
                BatchOp::Insert(..) => self.insert_edge(u, v),
                BatchOp::Remove(..) => self.remove_edge(u, v),
            }
            .expect("endpoints validated up front");
            if change.applied {
                applied.push(*op);
                dirty_up_to = dirty_up_to.max(change.dirty_up_to);
            }
        }
        let repair_micros = repair_start.elapsed().as_micros() as u64;
        let mut changed: Vec<VertexId> = (0..self.core.len() as VertexId)
            .filter(|&v| self.core[v as usize] != old_core[v as usize])
            .collect();
        changed.sort_unstable();
        BatchChange {
            applied,
            changed,
            dirty_up_to,
            recomputed: false,
            repair_micros,
        }
    }

    /// One shared peel over the mutable adjacency — the batch counterpart of
    /// [`crate::core_decomposition`], sharing its Batagelj–Zaversnik
    /// implementation while avoiding a CSR round trip.
    fn recompute_cores(&mut self) {
        self.core = crate::core_decomp::peel_core_numbers(self.adj.len(), |v| {
            self.adj[v as usize].as_slice()
        });
    }

    /// Builds the immutable CSR [`Graph`] for the current state (the per-epoch
    /// rebuild of the publish path).
    pub fn to_graph(&self) -> Graph {
        let n = self.adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut total = 0u64;
        for list in &self.adj {
            total += list.len() as u64;
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total as usize);
        for list in &self.adj {
            neighbors.extend_from_slice(list);
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// The maintained core numbers as a [`CoreDecomposition`] (bit-identical
    /// to recomputing from scratch on [`DynamicGraph::to_graph`]).
    pub fn decomposition(&self) -> CoreDecomposition {
        CoreDecomposition::from_core_numbers(self.core.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn assert_cores_match(dynamic: &DynamicGraph) {
        let rebuilt = dynamic.to_graph();
        let fresh = core_decomposition(&rebuilt);
        assert_eq!(
            fresh.core_numbers(),
            dynamic.core_numbers(),
            "incremental maintenance diverged from full recomputation"
        );
    }

    #[test]
    fn insertion_lifts_a_subcore() {
        // Triangle {0,1,2} + pendant 3.
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut d = DynamicGraph::from_graph(&g);
        assert_eq!(d.core_numbers(), &[2, 2, 2, 1]);

        let change = d.insert_edge(1, 3).unwrap();
        assert!(change.applied);
        assert_eq!(change.changed, vec![3]);
        assert_eq!(change.dirty_up_to, 2);
        assert_eq!(d.core_numbers(), &[2, 2, 2, 2]);
        assert_cores_match(&d);
    }

    #[test]
    fn insertion_between_high_cores_changes_nothing_structural() {
        // Two triangles; bridging them merges 2-core components but changes no
        // core numbers.
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let mut d = DynamicGraph::from_graph(&g);
        let change = d.insert_edge(0, 3).unwrap();
        assert!(change.applied);
        assert!(change.changed.is_empty());
        // Connectivity of k-cores up to min(core) may still have changed.
        assert_eq!(change.dirty_up_to, 2);
        assert_cores_match(&d);
    }

    #[test]
    fn removal_cascades() {
        // K4 on {0,1,2,3}: every vertex core 3.  Removing one edge drops all
        // four to core 2 (the cascade must propagate past the endpoints).
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut d = DynamicGraph::from_graph(&g);
        assert_eq!(d.core_numbers(), &[3, 3, 3, 3]);
        let change = d.remove_edge(0, 1).unwrap();
        assert_eq!(change.changed, vec![0, 1, 2, 3]);
        assert_eq!(change.dirty_up_to, 3);
        assert_eq!(d.core_numbers(), &[2, 2, 2, 2]);
        assert_cores_match(&d);
    }

    #[test]
    fn removal_with_two_queued_droppers_sharing_a_neighbour() {
        // Regression: triangle {0,1,2} with 2 also in triangle {2,3,4} —
        // every vertex has core 2.  Removing (0,1) evicts both 0 and 1 before
        // either runs its decrement pass; vertex 2 is first-touched while one
        // dropper is still queued.  Counting correctly, 2 keeps supporters
        // {3, 4} plus the queued dropper until it pops — net support 2 — so
        // the triangle {2,3,4} must survive at core 2 (a double-count would
        // cascade it down to 1).
        let g = GraphBuilder::from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        let mut d = DynamicGraph::from_graph(&g);
        assert_eq!(d.core_numbers(), &[2, 2, 2, 2, 2]);
        let change = d.remove_edge(0, 1).unwrap();
        assert_eq!(change.changed, vec![0, 1]);
        assert_eq!(d.core_numbers(), &[1, 1, 2, 2, 2]);
        assert_cores_match(&d);
    }

    #[test]
    fn removal_without_core_change_reports_dirty_range() {
        // Square 0-1-2-3-0 plus diagonal 0-2: all core 2; removing the
        // diagonal keeps every core at 2 (cycle remains).
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let mut d = DynamicGraph::from_graph(&g);
        let change = d.remove_edge(0, 2).unwrap();
        assert!(change.applied);
        assert!(change.changed.is_empty());
        assert_eq!(change.dirty_up_to, 2);
        assert_cores_match(&d);
    }

    #[test]
    fn noop_mutations() {
        let g = GraphBuilder::from_edges([(0, 1)]);
        let mut d = DynamicGraph::from_graph(&g);
        assert!(!d.insert_edge(0, 1).unwrap().applied); // already present
        assert!(!d.insert_edge(1, 1).unwrap().applied); // self-loop
        assert!(!d.remove_edge(0, 0).unwrap().applied); // self-loop
        d.remove_edge(0, 1).unwrap();
        assert!(!d.remove_edge(0, 1).unwrap().applied); // already absent
        assert!(d.insert_edge(0, 7).is_err());
        assert!(d.remove_edge(9, 0).is_err());
        assert_cores_match(&d);
    }

    #[test]
    fn vertex_addition_and_attachment() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2)]);
        let mut d = DynamicGraph::from_graph(&g);
        let v = d.add_vertex();
        assert_eq!(v, 3);
        assert_eq!(d.core_number(v), 0);
        assert_cores_match(&d);

        // First edge lifts the newcomer to core 1.
        let change = d.insert_edge(v, 0).unwrap();
        assert_eq!(change.changed, vec![v]);
        assert_eq!(d.core_number(v), 1);
        // Two more edges pull it into the 3-core (K4).
        d.insert_edge(v, 1).unwrap();
        let change = d.insert_edge(v, 2).unwrap();
        assert_eq!(change.changed, vec![0, 1, 2, v]);
        assert_eq!(d.core_numbers(), &[3, 3, 3, 3]);
        assert_cores_match(&d);
    }

    #[test]
    fn isolated_pair_connection() {
        let mut d = DynamicGraph::from_graph(&Graph::empty(2));
        let change = d.insert_edge(0, 1).unwrap();
        assert_eq!(change.changed, vec![0, 1]);
        assert_eq!(d.core_numbers(), &[1, 1]);
        assert_cores_match(&d);
    }

    #[test]
    fn random_stream_matches_full_recompute() {
        // Deterministic pseudo-random toggles over 60 vertices; check the
        // maintained cores against a fresh decomposition after every step.
        let mut d = DynamicGraph::from_graph(&Graph::empty(60));
        let mut x: u64 = 0xD1E5;
        for step in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 60) as VertexId;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 60) as VertexId;
            if u == v {
                continue;
            }
            let change = if d.has_edge(u, v) {
                d.remove_edge(u, v).unwrap()
            } else {
                d.insert_edge(u, v).unwrap()
            };
            assert!(change.applied, "step {step}");
            // Change magnitude is always exactly one level.
            let rebuilt = core_decomposition(&d.to_graph());
            assert_eq!(
                rebuilt.core_numbers(),
                d.core_numbers(),
                "divergence at step {step} ({u}, {v})"
            );
        }
        assert!(d.num_edges() > 0);
    }

    #[test]
    fn batch_apply_matches_sequential_per_edge() {
        // Deterministic pseudo-random batches over 50 vertices: both batch
        // strategies must land on the same cores as applying the ops one by
        // one, and the recompute path must agree with the cascade path.
        let mut x: u64 = 0xBA7C;
        let mut rand = move |m: u64| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % m
        };
        let mut reference = DynamicGraph::from_graph(&Graph::empty(50));
        let mut per_edge = reference.clone();
        let mut recompute = reference.clone();
        for round in 0..12 {
            let mut ops = Vec::new();
            for _ in 0..(4 + rand(40)) {
                let u = rand(50) as VertexId;
                let v = rand(50) as VertexId;
                // Toggle against the reference's *current* state interleaved
                // with the batch being built, so batches contain genuine
                // insert/remove mixes and repeated toggles of one edge.
                if rand(2) == 0 {
                    ops.push(BatchOp::Insert(u, v));
                } else {
                    ops.push(BatchOp::Remove(u, v));
                }
            }
            // Reference: sequential application through the single-edge API.
            let mut ref_applied = 0usize;
            for op in &ops {
                let (u, v) = op.endpoints();
                let change = match op {
                    BatchOp::Insert(..) => reference.insert_edge(u, v).unwrap(),
                    BatchOp::Remove(..) => reference.remove_edge(u, v).unwrap(),
                };
                if change.applied {
                    ref_applied += 1;
                }
            }
            let a = per_edge
                .apply_batch_with(&ops, BatchStrategy::PerEdge)
                .unwrap();
            let b = recompute
                .apply_batch_with(&ops, BatchStrategy::Recompute)
                .unwrap();
            assert!(!a.recomputed && b.recomputed);
            assert_eq!(a.applied.len(), ref_applied, "round {round}");
            assert_eq!(a.applied, b.applied);
            assert_eq!(a.changed, b.changed, "round {round}");
            assert_eq!(per_edge.core_numbers(), reference.core_numbers());
            assert_eq!(recompute.core_numbers(), reference.core_numbers());
            assert_eq!(per_edge.num_edges(), recompute.num_edges());
            // The recompute dirty bound covers the per-edge one for k-core
            // membership purposes: every k above either bound has identical
            // vertex membership across the batch.
            let max_core = recompute.max_core();
            for k in (b.dirty_up_to + 1)..=max_core {
                // No vertex crossing k means k-core membership unchanged.
                assert!(
                    b.changed
                        .iter()
                        .all(|&v| (recompute.core_number(v) >= k) == (per_edge.core_number(v) >= k)),
                    "round {round}, k {k}"
                );
            }
            assert_cores_match(&recompute);
        }
        assert!(reference.num_edges() > 0);
    }

    #[test]
    fn batch_apply_validates_and_reports() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut d = DynamicGraph::from_graph(&g);
        // One bad endpoint poisons the whole batch, atomically.
        let before = d.core_numbers().to_vec();
        assert!(d
            .apply_batch(&[BatchOp::Insert(0, 3), BatchOp::Insert(0, 99)])
            .is_err());
        assert_eq!(d.core_numbers(), before.as_slice());
        assert!(!d.has_edge(0, 3));

        // No-ops are dropped; a closing batch lifts the pendant into the
        // 2-core with the right dirty bound.
        let change = d
            .apply_batch_with(
                &[
                    BatchOp::Insert(0, 0), // self-loop: no-op
                    BatchOp::Remove(0, 3), // absent: no-op
                    BatchOp::Insert(1, 3), // closes triangle {1, 2, 3}
                    BatchOp::Insert(1, 3), // duplicate: no-op
                ],
                BatchStrategy::Recompute,
            )
            .unwrap();
        assert_eq!(change.applied, vec![BatchOp::Insert(1, 3)]);
        assert_eq!(change.changed, vec![3]);
        assert_eq!(change.dirty_up_to, 2);
        assert_eq!(d.core_numbers(), &[2, 2, 2, 2]);

        // An empty batch is a no-op.
        let change = d.apply_batch(&[]).unwrap();
        assert!(change.applied.is_empty() && change.changed.is_empty());
        assert_eq!(change.dirty_up_to, 0);
    }

    #[test]
    fn csr_roundtrip_preserves_structure() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let d = DynamicGraph::from_graph(&g);
        let rebuilt = d.to_graph();
        assert_eq!(rebuilt, g);
        assert_eq!(d.decomposition().core_numbers(), d.core_numbers());
        assert_eq!(d.decomposition().max_core(), d.max_core());
    }
}
