//! Flat-bitset helpers shared by the k-core solvers.
//!
//! The subset/removed working sets of [`crate::KCoreSolver`] and the
//! radius-sweep solver are hot: every edge relaxation in a peel tests one or
//! two of them.  Packing them into `u64` words cuts the memory traffic of
//! those tests ~32x compared to the former `Vec<u32>` epoch arrays, and a
//! whole-prefix reset is a handful of word writes instead of an epoch bump.

use crate::VertexId;

/// Number of `u64` words needed for `n` bits.
#[inline]
pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Tests bit `v`.
#[inline]
pub(crate) fn test(words: &[u64], v: VertexId) -> bool {
    words[(v >> 6) as usize] & (1u64 << (v & 63)) != 0
}

/// Sets bit `v`.
#[inline]
pub(crate) fn set(words: &mut [u64], v: VertexId) {
    words[(v >> 6) as usize] |= 1u64 << (v & 63);
}

/// Clears bit `v`.
#[inline]
pub(crate) fn clear(words: &mut [u64], v: VertexId) {
    words[(v >> 6) as usize] &= !(1u64 << (v & 63));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_round_trip() {
        let mut w = vec![0u64; words_for(130)];
        for v in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!test(&w, v));
            set(&mut w, v);
            assert!(test(&w, v));
        }
        clear(&mut w, 64);
        assert!(!test(&w, 64));
        assert!(test(&w, 63) && test(&w, 65));
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
    }
}
