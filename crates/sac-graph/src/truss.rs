//! Connected k-truss queries.
//!
//! The paper notes (Section 3, "Remarks") that its minimum-degree structure
//! cohesiveness can be swapped for stronger notions such as the **k-truss**
//! (every edge of the community participates in at least `k − 2` triangles inside
//! the community).  This module provides the truss machinery needed by the
//! `sac-core::truss` extension: a global connected-k-truss query and a
//! subset-restricted solver mirroring [`crate::KCoreSolver`].

use crate::{Graph, VertexId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Key of an undirected edge with the endpoints in ascending order.
#[inline]
fn edge_key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Computes the connected k-truss containing `q` within the subgraph of `graph`
/// induced by `subset`.
///
/// A k-truss (k ≥ 2) is a subgraph in which every edge is contained in at least
/// `k − 2` triangles of the subgraph.  The returned community is the connected
/// component of `q` in the edge-maximal k-truss of `G[subset]`, as a sorted vertex
/// list; `None` when `q` has no incident k-truss edge (for `k ≥ 3`) or when `q` is
/// not in `subset`.
///
/// For `k ≤ 2` the k-truss degenerates to "any connected subgraph with at least one
/// edge", matching the usual convention.
pub fn ktruss_in_subset(
    graph: &Graph,
    subset: &[VertexId],
    q: VertexId,
    k: u32,
) -> Option<Vec<VertexId>> {
    if (q as usize) >= graph.num_vertices() {
        return None;
    }
    let members: HashSet<VertexId> = subset.iter().copied().collect();
    if !members.contains(&q) {
        return None;
    }

    // Local adjacency restricted to the subset, sorted for fast intersections.
    let mut adj: HashMap<VertexId, Vec<VertexId>> = HashMap::with_capacity(members.len());
    for &v in &members {
        let mut local: Vec<VertexId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|u| members.contains(u))
            .collect();
        local.sort_unstable();
        adj.insert(v, local);
    }

    // Support (triangle count) of every subset edge.
    let mut support: HashMap<(VertexId, VertexId), i64> = HashMap::new();
    let mut alive: HashSet<(VertexId, VertexId)> = HashSet::new();
    for (&v, neighbours) in &adj {
        for &u in neighbours {
            if u <= v {
                continue;
            }
            let key = (v, u);
            let s = sorted_intersection_count(&adj[&v], &adj[&u]) as i64;
            support.insert(key, s);
            alive.insert(key);
        }
    }
    if alive.is_empty() {
        return None;
    }

    // Peel edges whose support is below k − 2.
    let threshold = k.saturating_sub(2) as i64;
    let mut queue: VecDeque<(VertexId, VertexId)> = support
        .iter()
        .filter(|(_, &s)| s < threshold)
        .map(|(&e, _)| e)
        .collect();
    let mut removed: HashSet<(VertexId, VertexId)> = HashSet::new();
    while let Some((u, v)) = queue.pop_front() {
        if removed.contains(&(u, v)) || !alive.contains(&(u, v)) {
            continue;
        }
        removed.insert((u, v));
        alive.remove(&(u, v));
        // Every common neighbour w loses one triangle on edges (u, w) and (v, w).
        let common = sorted_intersection(&adj[&u], &adj[&v]);
        for w in common {
            for e in [edge_key(u, w), edge_key(v, w)] {
                if alive.contains(&e) {
                    if let Some(s) = support.get_mut(&e) {
                        *s -= 1;
                        if *s < threshold {
                            queue.push_back(e);
                        }
                    }
                }
            }
        }
        // Keep the adjacency consistent with the surviving edge set.
        if let Some(nu) = adj.get_mut(&u) {
            if let Ok(pos) = nu.binary_search(&v) {
                nu.remove(pos);
            }
        }
        if let Some(nv) = adj.get_mut(&v) {
            if let Ok(pos) = nv.binary_search(&u) {
                nv.remove(pos);
            }
        }
    }

    // BFS from q over surviving edges.
    if adj.get(&q).is_none_or(|n| n.is_empty()) {
        // q has no surviving incident edge: a k-truss community around q exists only
        // in the degenerate k ≤ 2 sense when q still has subset neighbours.
        return None;
    }
    let mut visited: HashSet<VertexId> = HashSet::new();
    let mut component = Vec::new();
    let mut bfs = VecDeque::new();
    visited.insert(q);
    bfs.push_back(q);
    while let Some(v) = bfs.pop_front() {
        component.push(v);
        for &u in &adj[&v] {
            if visited.insert(u) {
                bfs.push_back(u);
            }
        }
    }
    component.sort_unstable();
    Some(component)
}

/// The connected k-truss of the whole graph containing `q` (the truss analogue of
/// [`crate::connected_kcore`]).
pub fn connected_ktruss(graph: &Graph, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
    let all: Vec<VertexId> = graph.vertices().collect();
    ktruss_in_subset(graph, &all, q, k)
}

/// Returns `true` when every edge of the subgraph induced by `members` is contained
/// in at least `k − 2` triangles of that subgraph — i.e. `members` induces a
/// k-truss.  Used by tests and by the truss-based SAC validity checks.
pub fn is_ktruss(graph: &Graph, members: &[VertexId], k: u32) -> bool {
    let set: HashSet<VertexId> = members.iter().copied().collect();
    let threshold = k.saturating_sub(2) as usize;
    let mut adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &v in &set {
        let mut local: Vec<VertexId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|u| set.contains(u))
            .collect();
        local.sort_unstable();
        adj.insert(v, local);
    }
    for (&v, neighbours) in &adj {
        for &u in neighbours {
            if u <= v {
                continue;
            }
            if sorted_intersection_count(&adj[&v], &adj[&u]) < threshold {
                return false;
            }
        }
    }
    true
}

fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn sorted_intersection(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two triangles sharing vertex 0, plus a path hanging off vertex 3.
    fn butterfly_with_tail() -> Graph {
        GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (0, 2),
            (0, 3),
            (3, 4),
            (0, 4),
            (3, 5),
            (5, 6),
        ])
    }

    #[test]
    fn triangle_is_a_3_truss() {
        let g = butterfly_with_tail();
        // Both triangles survive the peeling; they share vertex 0, so the connected
        // 3-truss around any wing vertex spans both wings (the tail dissolves).
        let t = connected_ktruss(&g, 1, 3).unwrap();
        assert_eq!(t, vec![0, 1, 2, 3, 4]);
        assert_eq!(connected_ktruss(&g, 4, 3).unwrap(), vec![0, 1, 2, 3, 4]);
        // Path vertices have no 3-truss.
        assert!(connected_ktruss(&g, 6, 3).is_none());
        assert!(connected_ktruss(&g, 99, 3).is_none());
        assert!(is_ktruss(&g, &[0, 1, 2], 3));
        assert!(!is_ktruss(&g, &[3, 5, 6], 3));
    }

    #[test]
    fn four_truss_requires_denser_structure() {
        // K4 is a 4-truss; K4 minus an edge is not.
        let k4 = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(connected_ktruss(&k4, 0, 4).unwrap(), vec![0, 1, 2, 3]);
        assert!(is_ktruss(&k4, &[0, 1, 2, 3], 4));

        let broken = GraphBuilder::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        assert!(connected_ktruss(&broken, 0, 4).is_none());
        assert!(!is_ktruss(&broken, &[0, 1, 2, 3], 4));
    }

    #[test]
    fn subset_restriction_is_respected() {
        let g = butterfly_with_tail();
        // Restricting to the right wing only: {0, 3, 4} is still a 3-truss.
        assert_eq!(
            ktruss_in_subset(&g, &[0, 3, 4], 0, 3).unwrap(),
            vec![0, 3, 4]
        );
        // Restricting away vertex 4 leaves no triangle through 3.
        assert!(ktruss_in_subset(&g, &[0, 1, 2, 3], 3, 3).is_none());
        // q outside the subset.
        assert!(ktruss_in_subset(&g, &[0, 1, 2], 4, 3).is_none());
    }

    #[test]
    fn truss_peeling_cascades() {
        // A 5-cycle with one chord: the chord's triangle... actually a cycle has no
        // triangles, so the whole thing dissolves for k = 3.
        let cycle = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(connected_ktruss(&cycle, 0, 3).is_none());
        // For k = 2 (degenerate) the cycle survives as a connected edge set.
        assert_eq!(connected_ktruss(&cycle, 0, 2).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_vertex_of_a_ktruss_has_degree_at_least_k_minus_1() {
        // Structural sanity on a denser pseudo-random graph: the (k)-truss is a
        // (k-1)-core, so each member keeps at least k-1 truss neighbours.
        let mut b = GraphBuilder::new();
        let mut x: u64 = 99;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 60) as VertexId;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 60) as VertexId;
            b.add_edge(u, v);
        }
        let g = b.build();
        let k = 4;
        for q in 0..60u32 {
            if let Some(members) = connected_ktruss(&g, q, k) {
                assert!(members.contains(&q));
                let set: std::collections::HashSet<_> = members.iter().copied().collect();
                for &v in &members {
                    let deg = g.neighbors(v).iter().filter(|u| set.contains(u)).count();
                    assert!(deg + 1 >= k as usize, "vertex {v} has truss-degree {deg}");
                }
            }
        }
    }
}
