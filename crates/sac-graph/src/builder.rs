//! Incremental graph construction with deduplication.

use crate::{Graph, VertexId};

/// Builds an undirected [`Graph`] from an edge stream.
///
/// The builder tolerates messy real-world input: self-loops are dropped, duplicate
/// edges (in either direction) are deduplicated, and the vertex count grows to the
/// largest id mentioned.  Isolated vertices can be reserved with
/// [`GraphBuilder::ensure_vertex`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    max_vertex: Option<VertexId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            max_vertex: None,
        }
    }

    /// Ensures vertex `v` exists even if no edge mentions it.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        self.max_vertex = Some(self.max_vertex.map_or(v, |m| m.max(v)));
    }

    /// Adds the undirected edge `{u, v}`.  Self-loops are ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Adds every edge of `edges`.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, edges: I) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Number of (possibly duplicated) edges recorded so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph, deduplicating edges.
    pub fn build(mut self) -> Graph {
        let n = self.max_vertex.map_or(0, |m| m as usize + 1);
        if n == 0 {
            return Graph::empty(0);
        }
        self.edges.sort_unstable();
        self.edges.dedup();

        // Counting sort into CSR: each undirected edge contributes to both endpoints.
        let mut offsets = vec![0u64; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut neighbors = vec![0 as VertexId; self.edges.len() * 2];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list so `has_edge` can binary-search.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// Convenience constructor: builds a graph directly from an edge list.
    pub fn from_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(edges: I) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edges(edges);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_and_ignores_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2); // self-loop, ignored (but vertex 2 exists)
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn ensure_vertex_reserves_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(9);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn from_edges_convenience() {
        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn empty_builder_yields_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn large_random_like_graph_is_consistent() {
        // Deterministic pseudo-random edges; verifies CSR symmetry.
        let mut b = GraphBuilder::new();
        let mut x: u64 = 12345;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 500) as VertexId;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 500) as VertexId;
            b.add_edge(u, v);
        }
        let g = b.build();
        // Every edge must be stored symmetrically.
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).binary_search(&u).is_ok());
            }
        }
        // Handshake lemma.
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }
}
