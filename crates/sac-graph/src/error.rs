//! Error types for the graph substrate.

use crate::VertexId;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced when constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// The number of vertex positions does not match the number of vertices.
    PositionCountMismatch {
        /// Number of vertices in the graph.
        vertices: usize,
        /// Number of positions supplied.
        positions: usize,
    },
    /// A vertex position is NaN or infinite.
    InvalidPosition(VertexId),
    /// A vertex id is outside the graph's vertex range.
    VertexOutOfRange(VertexId),
    /// The graph has no vertices where at least one is required.
    EmptyGraph,
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(io::Error),
    /// Invalid sharding parameters (zero shards, or a non-finite/negative
    /// halo fraction).
    InvalidShardConfig,
    /// Externally supplied CSR arrays violate a structural invariant
    /// (see [`crate::Graph::try_from_csr`]).
    InvalidCsr(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::PositionCountMismatch {
                vertices,
                positions,
            } => write!(
                f,
                "graph has {vertices} vertices but {positions} positions were supplied"
            ),
            GraphError::InvalidPosition(v) => {
                write!(f, "vertex {v} has a non-finite position")
            }
            GraphError::VertexOutOfRange(v) => write!(f, "vertex {v} is out of range"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::InvalidShardConfig => write!(
                f,
                "invalid shard configuration (need >= 1 shard and a finite non-negative halo)"
            ),
            GraphError::InvalidCsr(detail) => write!(f, "invalid CSR arrays: {detail}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::PositionCountMismatch {
            vertices: 3,
            positions: 2,
        };
        assert!(e.to_string().contains("3 vertices"));
        assert!(GraphError::InvalidPosition(7).to_string().contains('7'));
        assert!(GraphError::VertexOutOfRange(9).to_string().contains('9'));
        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
        let p = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 12"));
        let io_err = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "missing"));
        assert!(io_err.to_string().contains("missing"));
    }

    #[test]
    fn io_error_has_source() {
        let io_err = GraphError::from(io::Error::other("boom"));
        assert!(io_err.source().is_some());
        assert!(GraphError::EmptyGraph.source().is_none());
    }
}
