//! Spatially sharded snapshots: a KD-style partitioner ([`ShardMap`]) and the
//! per-shard induced subgraphs ([`ShardedGraph`]) the serving engine fans
//! queries out to.
//!
//! The paper's SAC queries are inherently local: every algorithm's spatial
//! activity stays inside a *cover circle* around the query vertex (a few
//! multiples of the distance from `q` to the farthest member of its k-ĉore,
//! or `θ` for radius-constrained queries).  Sharding exploits that locality:
//!
//! * [`ShardMap`] recursively median-splits the vertex positions into `N`
//!   rectangular **regions** that tile the whole plane (the outermost regions
//!   are unbounded, so vertices added later always map to some shard).
//! * Each shard **materialises** the subgraph induced by every vertex inside
//!   its region expanded by a *halo ring* of width [`ShardMap::halo`].  Vertex
//!   ids, positions and the spatial grid are kept in the **global** id space —
//!   only the adjacency is restricted — so a query answered on a shard is
//!   bit-for-bit the answer the global graph would give, with no id
//!   remapping.
//! * A query whose cover circle fits inside a shard's **interior** (the
//!   region expanded by the halo minus a small floating-point guard) touches
//!   only vertices whose full circle-local neighbourhood the shard carries:
//!   every vertex inside the circle is a shard member, and every edge between
//!   two such vertices is present in the induced subgraph.  Peeling a circle
//!   therefore produces the identical result on the shard and on the global
//!   graph (`sac-engine`'s property suite pins this).  Queries whose circle
//!   crosses shard interiors fall back to the global snapshot (shard ∞ in the
//!   engine), so correctness never depends on the halo width — the halo only
//!   decides how many queries take the single-shard fast path.
//!
//! The guard absorbs the inclusion tolerance of
//! [`sac_geom::Circle::contains_bound_sq`]: a circle contained in the
//! interior can pull in tolerance-ring vertices just outside it, and those
//! must still be shard members.

use crate::{Graph, GraphError, SpatialGraph, VertexId};
use sac_geom::{Circle, Point, Rect, EPS};
use std::sync::Arc;

/// One split of the KD partition tree.
#[derive(Debug, Clone)]
enum KdNode {
    /// A leaf holding its shard id.
    Leaf(u32),
    /// An axis-aligned split: `axis == 0` splits on x, `1` on y; points with
    /// coordinate `< at` go low.
    Split {
        axis: u8,
        at: f64,
        lo: Box<KdNode>,
        hi: Box<KdNode>,
    },
}

/// A spatial partitioner over a point set: KD-style recursive median split
/// into `N` rectangular regions tiling the plane, with per-shard halo and
/// floating-point guard widths.
///
/// A `ShardMap` is built once per engine from the initial snapshot's
/// positions and kept across epochs (regions are stable; only shard
/// *contents* are rebuilt as the graph mutates).
#[derive(Debug, Clone)]
pub struct ShardMap {
    root: KdNode,
    regions: Vec<Rect>,
    halo: f64,
    guard: f64,
    /// The largest circle radius any single interior can contain (`2r` must
    /// fit both interior dimensions); cover radii above this always take the
    /// global fallback, which lets the router stop bounding a k-ĉore's
    /// spatial extent early.
    max_routable: f64,
}

impl ShardMap {
    /// Partitions `positions` into (at most) `shards` regions by recursive
    /// median split, always splitting the most populated region along its
    /// wider data extent.  `halo_frac` scales the halo ring relative to the
    /// data bounding-box diagonal.
    ///
    /// Fewer than `shards` regions are produced when a region cannot be split
    /// (all its points share one location); [`ShardMap::num_shards`] reports
    /// the actual count.
    pub fn build(positions: &[Point], shards: usize, halo_frac: f64) -> Result<Self, GraphError> {
        if positions.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        if shards == 0 || !halo_frac.is_finite() || halo_frac < 0.0 {
            return Err(GraphError::InvalidShardConfig);
        }
        let bounds = Rect::bounding(positions).expect("non-empty positions");
        let diag = bounds.min.distance(bounds.max);
        // The guard absorbs the circle-inclusion tolerance for any cover
        // circle a shard can possibly contain (radius bounded by the data
        // extent plus halo), with generous slack.
        let guard = EPS * (16.0 + 16.0 * diag);
        let halo = halo_frac * diag + 2.0 * guard;

        // Work list of (point indices, region) pairs; split the largest until
        // we have `shards` leaves or nothing splits any more.
        let everything = Rect {
            min: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            max: Point::new(f64::INFINITY, f64::INFINITY),
        };
        let all: Vec<u32> = (0..positions.len() as u32).collect();
        let mut leaves: Vec<(Vec<u32>, Rect)> = vec![(all, everything)];
        while leaves.len() < shards {
            // Most populated splittable leaf first.
            let Some(idx) = (0..leaves.len())
                .filter(|&i| leaves[i].0.len() >= 2)
                .max_by_key(|&i| leaves[i].0.len())
            else {
                break;
            };
            let (points, region) = leaves.swap_remove(idx);
            match split_median(positions, &points, &region) {
                Some((lo, hi)) => {
                    leaves.push(lo);
                    leaves.push(hi);
                }
                None => {
                    // Unsplittable (all coordinates equal): keep as leaf and
                    // stop — any other leaf is no bigger.
                    leaves.push((points, region));
                    break;
                }
            }
        }

        // Assign shard ids in a deterministic order (by region min corner)
        // and build the lookup tree from the region rectangles.
        leaves.sort_by(|a, b| {
            (a.1.min.x, a.1.min.y)
                .partial_cmp(&(b.1.min.x, b.1.min.y))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let regions: Vec<Rect> = leaves.iter().map(|(_, r)| *r).collect();
        let root = build_tree(&regions, (0..regions.len() as u32).collect());
        let interior_margin = halo - guard;
        let max_routable = regions
            .iter()
            .map(|r| {
                let w = r.width() + 2.0 * interior_margin;
                let h = r.height() + 2.0 * interior_margin;
                0.5 * w.min(h)
            })
            .fold(0.0f64, f64::max);
        Ok(ShardMap {
            root,
            regions,
            halo,
            guard,
            max_routable,
        })
    }

    /// Reassembles a `ShardMap` from its serialized parts (durability hook:
    /// `sac-wal` snapshots store regions, halo and guard so recovery restores
    /// the *boot-time* partition exactly — rebuilding from current positions
    /// would shift region boundaries and break bit-identical recovery).
    ///
    /// `regions` must be the disjoint, plane-tiling rectangles a
    /// [`ShardMap::build`] produced, in their original shard-id order; the
    /// lookup tree and the routable-radius bound are derived from them.
    pub fn from_parts(regions: Vec<Rect>, halo: f64, guard: f64) -> Result<Self, GraphError> {
        if regions.is_empty()
            || !halo.is_finite()
            || halo < 0.0
            || !guard.is_finite()
            || guard < 0.0
        {
            return Err(GraphError::InvalidShardConfig);
        }
        let root = build_tree(&regions, (0..regions.len() as u32).collect());
        let interior_margin = halo - guard;
        let max_routable = regions
            .iter()
            .map(|r| {
                let w = r.width() + 2.0 * interior_margin;
                let h = r.height() + 2.0 * interior_margin;
                0.5 * w.min(h)
            })
            .fold(0.0f64, f64::max);
        Ok(ShardMap {
            root,
            regions,
            halo,
            guard,
            max_routable,
        })
    }

    /// The floating-point guard width (see the module docs); exposed so the
    /// partition can be serialized and restored bit-identically.
    pub fn guard(&self) -> f64 {
        self.guard
    }

    /// The largest cover radius [`ShardMap::single_shard_for`] can possibly
    /// route: a circle of radius `r` fits inside an axis-aligned interior
    /// only when `2r` is at most both its width and height, so any cover
    /// radius above this bound is guaranteed to take the global fallback.
    /// Infinite when some interior is unbounded in both dimensions (the
    /// single-region map).
    pub fn max_routable_radius(&self) -> f64 {
        self.max_routable
    }

    /// Number of shard regions.
    pub fn num_shards(&self) -> usize {
        self.regions.len()
    }

    /// The halo-ring width: shard `s` materialises every vertex within
    /// [`ShardMap::region`]`(s).expanded(halo)`.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The core region of shard `s` (regions tile the plane; outer regions
    /// have unbounded sides).
    pub fn region(&self, s: u32) -> Rect {
        self.regions[s as usize]
    }

    /// The materialised coverage of shard `s`: its region expanded by the
    /// halo ring.  Every vertex located inside this rectangle is a member of
    /// shard `s`'s induced subgraph.
    pub fn covered(&self, s: u32) -> Rect {
        self.regions[s as usize].expanded(self.halo)
    }

    /// The routable interior of shard `s`: the coverage shrunk by the
    /// floating-point guard.  A circle contained in the interior peels
    /// bit-identically on the shard (tolerance-ring vertices included).
    pub fn interior(&self, s: u32) -> Rect {
        self.regions[s as usize].expanded(self.halo - self.guard)
    }

    /// The shard whose region contains `p` (ties on split boundaries resolve
    /// deterministically: the low side takes coordinates strictly below the
    /// split, the high side the rest).
    pub fn shard_of(&self, p: Point) -> u32 {
        let mut node = &self.root;
        loop {
            match node {
                KdNode::Leaf(s) => return *s,
                KdNode::Split { axis, at, lo, hi } => {
                    let c = if *axis == 0 { p.x } else { p.y };
                    node = if c < *at { lo } else { hi };
                }
            }
        }
    }

    /// The single shard that can answer a query with cover circle
    /// `O(center, radius)` bit-identically, or `None` when the circle
    /// straddles shard interiors (the caller falls back to the global
    /// snapshot).
    pub fn single_shard_for(&self, center: Point, radius: f64) -> Option<u32> {
        let s = self.shard_of(center);
        self.interior(s)
            .contains_circle(center, radius)
            .then_some(s)
    }

    /// Number of shard *regions* the circle `O(center, radius)` intersects —
    /// the fan-out a multi-shard execution would touch (reported as
    /// `shards_touched` in the engine's query trace).
    pub fn shards_intersecting(&self, center: Point, radius: f64) -> u32 {
        let circle = Circle::new(center, radius.max(0.0));
        self.regions
            .iter()
            .filter(|r| r.intersects_circle(&circle))
            .count() as u32
    }

    /// The shards whose **coverage** (region + halo) contains `p` — every
    /// shard whose materialised subgraph depends on a vertex at `p`.  Used by
    /// the live-update path to mark dirty shards.
    pub fn shards_covering(&self, p: Point) -> impl Iterator<Item = u32> + '_ {
        (0..self.regions.len() as u32).filter(move |&s| self.covered(s).contains(p))
    }
}

/// Splits `points` (indices into `positions`) inside `region` at the median
/// of the wider data extent.  Returns `None` when every point shares both
/// coordinates (nothing separates).
#[allow(clippy::type_complexity)]
fn split_median(
    positions: &[Point],
    points: &[u32],
    region: &Rect,
) -> Option<((Vec<u32>, Rect), (Vec<u32>, Rect))> {
    let data = Rect::bounding(
        &points
            .iter()
            .map(|&i| positions[i as usize])
            .collect::<Vec<_>>(),
    )?;
    // Try the wider axis first, the other as a fallback.
    let axes = if data.width() >= data.height() {
        [0u8, 1u8]
    } else {
        [1u8, 0u8]
    };
    for axis in axes {
        let mut coords: Vec<f64> = points
            .iter()
            .map(|&i| {
                let p = positions[i as usize];
                if axis == 0 {
                    p.x
                } else {
                    p.y
                }
            })
            .collect();
        coords.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let at = coords[coords.len() / 2];
        if at <= coords[0] {
            // Median equals the minimum: `< at` would put nothing low.
            continue;
        }
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        for &i in points {
            let p = positions[i as usize];
            let c = if axis == 0 { p.x } else { p.y };
            if c < at {
                lo.push(i);
            } else {
                hi.push(i);
            }
        }
        debug_assert!(!lo.is_empty() && !hi.is_empty());
        let (lo_rect, hi_rect) = split_rect(region, axis, at);
        return Some(((lo, lo_rect), (hi, hi_rect)));
    }
    None
}

/// Splits `region` at coordinate `at` along `axis`.
fn split_rect(region: &Rect, axis: u8, at: f64) -> (Rect, Rect) {
    if axis == 0 {
        (
            Rect {
                min: region.min,
                max: Point::new(at, region.max.y),
            },
            Rect {
                min: Point::new(at, region.min.y),
                max: region.max,
            },
        )
    } else {
        (
            Rect {
                min: region.min,
                max: Point::new(region.max.x, at),
            },
            Rect {
                min: Point::new(region.min.x, at),
                max: region.max,
            },
        )
    }
}

/// Rebuilds the KD lookup tree from the final (disjoint, plane-tiling) region
/// list: recursively find a coordinate line separating the regions.
fn build_tree(regions: &[Rect], ids: Vec<u32>) -> KdNode {
    if ids.len() == 1 {
        return KdNode::Leaf(ids[0]);
    }
    // A valid split line is a region boundary that cleanly separates the set.
    for axis in [0u8, 1u8] {
        let mut cuts: Vec<f64> = ids
            .iter()
            .map(|&s| {
                let r = &regions[s as usize];
                if axis == 0 {
                    r.max.x
                } else {
                    r.max.y
                }
            })
            .filter(|c| c.is_finite())
            .collect();
        cuts.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        cuts.dedup();
        for &at in &cuts {
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            let mut clean = true;
            for &s in &ids {
                let r = &regions[s as usize];
                let (r_min, r_max) = if axis == 0 {
                    (r.min.x, r.max.x)
                } else {
                    (r.min.y, r.max.y)
                };
                if r_max <= at {
                    lo.push(s);
                } else if r_min >= at {
                    hi.push(s);
                } else {
                    clean = false;
                    break;
                }
            }
            if clean && !lo.is_empty() && !hi.is_empty() {
                return KdNode::Split {
                    axis,
                    at,
                    lo: Box::new(build_tree(regions, lo)),
                    hi: Box::new(build_tree(regions, hi)),
                };
            }
        }
    }
    // Regions produced by recursive splitting always admit a separating line;
    // this is unreachable for ShardMap-built inputs but keeps the function
    // total.
    KdNode::Leaf(ids[0])
}

/// The per-shard materialisation of one graph snapshot: for every shard, the
/// subgraph induced by the vertices inside the shard's coverage (region +
/// halo), in the **global** vertex-id space.
///
/// Each shard's [`SpatialGraph`] has the full vertex count and the full
/// position array (so positions, distances and grid queries are identical to
/// the global snapshot), but its adjacency keeps only edges whose *both*
/// endpoints are shard members.  Memory is therefore `O(N·n + Σ shard
/// edges)`; the intended shard counts are small (2–16).
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    map: Arc<ShardMap>,
    shards: Vec<Arc<SpatialGraph>>,
}

impl ShardedGraph {
    /// Materialises every shard of `graph` under `map`.
    pub fn build(graph: &SpatialGraph, map: Arc<ShardMap>) -> Result<Self, GraphError> {
        let shards = (0..map.num_shards() as u32)
            .map(|s| Self::build_shard(graph, &map, s).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedGraph { map, shards })
    }

    /// Materialises one shard of `graph`: the induced subgraph of the
    /// vertices inside `map.covered(s)`, with global ids, positions and grid.
    pub fn build_shard(
        graph: &SpatialGraph,
        map: &ShardMap,
        s: u32,
    ) -> Result<SpatialGraph, GraphError> {
        let covered = map.covered(s);
        let n = graph.num_vertices();
        let positions = graph.positions();
        let mut member = vec![false; n];
        for (v, p) in positions.iter().enumerate() {
            member[v] = covered.contains(*p);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut neighbors: Vec<VertexId> = Vec::new();
        for v in 0..n {
            if member[v] {
                neighbors.extend(
                    graph
                        .neighbors(v as VertexId)
                        .iter()
                        .copied()
                        .filter(|&u| member[u as usize]),
                );
            }
            offsets.push(neighbors.len() as u64);
        }
        let induced = Graph::from_csr(offsets, neighbors);
        SpatialGraph::new(induced, positions.to_vec())
    }

    /// The partitioner these shards were materialised under.
    pub fn map(&self) -> &Arc<ShardMap> {
        &self.map
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The induced snapshot of shard `s`.
    pub fn shard(&self, s: u32) -> &Arc<SpatialGraph> {
        &self.shards[s as usize]
    }

    /// Iterates over the shard snapshots in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<SpatialGraph>> {
        self.shards.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A 6x6 grid of vertices with row edges and a few long-range chords.
    fn clustered_graph() -> SpatialGraph {
        let mut b = GraphBuilder::new();
        let mut positions = Vec::new();
        for i in 0..36u32 {
            b.ensure_vertex(i);
            positions.push(Point::new((i % 6) as f64, (i / 6) as f64));
            if i % 6 > 0 {
                b.add_edge(i - 1, i);
            }
            if i >= 6 {
                b.add_edge(i - 6, i);
            }
        }
        // Long-range chords crossing the space.
        b.add_edge(0, 35);
        b.add_edge(5, 30);
        SpatialGraph::new(b.build(), positions).unwrap()
    }

    #[test]
    fn map_partitions_the_plane() {
        let g = clustered_graph();
        let map = ShardMap::build(g.positions(), 4, 0.1).unwrap();
        assert_eq!(map.num_shards(), 4);
        // Every vertex maps to the shard whose region contains it.
        for (v, p) in g.positions().iter().enumerate() {
            let s = map.shard_of(*p);
            assert!(
                map.region(s).contains(*p),
                "vertex {v} at {p} not in region {s}"
            );
        }
        // Points far outside the data bounding box still map somewhere.
        for p in [
            Point::new(-1e9, -1e9),
            Point::new(1e9, 0.0),
            Point::new(0.0, 1e9),
        ] {
            let s = map.shard_of(p);
            assert!(map.region(s).contains(p));
        }
        // Regions are disjoint: no point is claimed by two regions' interiors
        // (shared boundaries are fine).
        let total: usize = (0..4u32)
            .map(|s| {
                g.positions()
                    .iter()
                    .filter(|p| {
                        let r = map.region(s);
                        p.x >= r.min.x && p.x < r.max.x && p.y >= r.min.y && p.y < r.max.y
                    })
                    .count()
            })
            .sum();
        assert!(total <= 36);
        // Roughly balanced: the median split puts ~n/4 in each region.
        for s in 0..4u32 {
            let count = g
                .positions()
                .iter()
                .filter(|p| map.shard_of(**p) == s)
                .count();
            assert!((6..=12).contains(&count), "shard {s} holds {count}");
        }
    }

    #[test]
    fn degenerate_point_sets_stop_splitting() {
        let same = vec![Point::new(1.0, 1.0); 8];
        let map = ShardMap::build(&same, 4, 0.1).unwrap();
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.shard_of(Point::new(1.0, 1.0)), 0);
        assert!(ShardMap::build(&[], 4, 0.1).is_err());
        assert!(ShardMap::build(&same, 0, 0.1).is_err());
        assert!(ShardMap::build(&same, 4, -0.5).is_err());
        assert!(ShardMap::build(&same, 4, f64::NAN).is_err());
    }

    #[test]
    fn induced_shards_keep_exactly_the_member_edges() {
        let g = clustered_graph();
        let map = Arc::new(ShardMap::build(g.positions(), 4, 0.25).unwrap());
        let sharded = ShardedGraph::build(&g, Arc::clone(&map)).unwrap();
        assert_eq!(sharded.num_shards(), 4);
        for s in 0..4u32 {
            let shard = sharded.shard(s);
            assert_eq!(shard.num_vertices(), g.num_vertices());
            assert_eq!(shard.positions(), g.positions());
            let covered = map.covered(s);
            for v in 0..g.num_vertices() as VertexId {
                let member = covered.contains(g.position(v));
                for &u in g.neighbors(v) {
                    let expected = member && covered.contains(g.position(u));
                    assert_eq!(
                        shard.graph().has_edge(v, u),
                        expected,
                        "shard {s} edge ({v}, {u})"
                    );
                }
                if !member {
                    assert_eq!(shard.degree(v), 0, "non-member {v} must be isolated");
                }
            }
        }
    }

    #[test]
    fn single_shard_routing_requires_interior_containment() {
        let g = clustered_graph();
        let map = ShardMap::build(g.positions(), 4, 0.1).unwrap();
        // A tiny circle well inside one region routes to it.
        let p = Point::new(1.0, 1.0);
        let s = map.shard_of(p);
        assert_eq!(map.single_shard_for(p, 0.25), Some(s));
        assert_eq!(map.shards_intersecting(p, 0.25), 1);
        // A circle covering the whole graph cannot be single-shard.
        assert_eq!(map.single_shard_for(p, 100.0), None);
        assert_eq!(map.shards_intersecting(p, 100.0), 4);
        // Interior containment uses the halo: a circle slightly crossing the
        // region boundary but within the halo still routes single-shard.
        let map_wide = ShardMap::build(g.positions(), 4, 0.3).unwrap();
        let region = map_wide.region(s);
        let near_edge = Point::new(region.max.x.min(5.0) - 0.1, p.y);
        let r = 0.2; // crosses the region edge, stays within the halo
        if region.max.x.is_finite() {
            assert_eq!(map_wide.single_shard_for(near_edge, r), Some(s));
        }
        // Every position's covering shards include its own region's shard.
        for p in g.positions() {
            let own = map.shard_of(*p);
            assert!(map.shards_covering(*p).any(|s| s == own));
        }
    }
}
