//! Loading and saving spatial graphs in simple text formats.
//!
//! Two file formats are supported, chosen to match the SNAP dumps the paper's real
//! datasets (Brightkite, Gowalla, …) ship in, so that the real data can be dropped
//! into the experiment harness unchanged:
//!
//! * **Edge list** — one edge per line, `u v`, whitespace separated; `#` starts a
//!   comment line.  Edges are undirected and deduplicated.
//! * **Location list** — one vertex per line, `v x y`; vertices without a location
//!   keep the default `(0, 0)` unless `strict` loading is requested.

use crate::{Graph, GraphBuilder, GraphError, SpatialGraph, VertexId};
use sac_geom::Point;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parses an edge list from a reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, GraphError> {
    let mut builder = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u = parse_vertex(it.next(), lineno + 1)?;
        let v = parse_vertex(it.next(), lineno + 1)?;
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Loads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Parses a location list (`v x y` per line) from a reader.
///
/// Returns positions for vertices `0..n` where `n` is `num_vertices`; vertices not
/// mentioned in the file keep the origin.  Positions for ids `>= num_vertices` are
/// rejected.
pub fn read_locations<R: BufRead>(
    reader: R,
    num_vertices: usize,
) -> Result<Vec<Point>, GraphError> {
    let mut positions = vec![Point::ORIGIN; num_vertices];
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let v = parse_vertex(it.next(), lineno + 1)?;
        let x = parse_coord(it.next(), lineno + 1)?;
        let y = parse_coord(it.next(), lineno + 1)?;
        if (v as usize) >= num_vertices {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: format!("vertex {v} out of range (graph has {num_vertices} vertices)"),
            });
        }
        positions[v as usize] = Point::new(x, y);
    }
    Ok(positions)
}

/// Loads a location list from a file path.
pub fn load_locations<P: AsRef<Path>>(
    path: P,
    num_vertices: usize,
) -> Result<Vec<Point>, GraphError> {
    read_locations(BufReader::new(File::open(path)?), num_vertices)
}

/// Loads a spatial graph from an edge-list file and a location file.
pub fn load_spatial_graph<P: AsRef<Path>, Q: AsRef<Path>>(
    edges_path: P,
    locations_path: Q,
) -> Result<SpatialGraph, GraphError> {
    let graph = load_edge_list(edges_path)?;
    let positions = load_locations(locations_path, graph.num_vertices())?;
    SpatialGraph::new(graph, positions)
}

/// Writes a graph as an edge list (`u v` per line, one line per undirected edge).
pub fn write_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(
        w,
        "# sackit edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes vertex locations (`v x y` per line).
pub fn write_locations<P: AsRef<Path>>(positions: &[Point], path: P) -> Result<(), GraphError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# sackit locations: {} vertices", positions.len())?;
    for (v, p) in positions.iter().enumerate() {
        writeln!(w, "{v} {} {}", p.x, p.y)?;
    }
    Ok(())
}

fn parse_vertex(token: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected a vertex id".into(),
    })?;
    token.parse::<VertexId>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid vertex id `{token}`"),
    })
}

fn parse_coord(token: Option<&str>, line: usize) -> Result<f64, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected a coordinate".into(),
    })?;
    let value = token.parse::<f64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid coordinate `{token}`"),
    })?;
    if !value.is_finite() {
        return Err(GraphError::Parse {
            line,
            message: format!("non-finite coordinate `{token}`"),
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_edge_list_with_comments_and_blanks() {
        let input = "# a comment\n\n0 1\n1 2\n2 0\n2 3\n1 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn parse_edge_list_rejects_garbage() {
        let err = read_edge_list(Cursor::new("0 x\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list(Cursor::new("42\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_locations() {
        let input = "0 0.5 0.25\n1 0.75 0.75\n# trailing comment\n";
        let pos = read_locations(Cursor::new(input), 3).unwrap();
        assert_eq!(pos[0], Point::new(0.5, 0.25));
        assert_eq!(pos[1], Point::new(0.75, 0.75));
        assert_eq!(pos[2], Point::ORIGIN);
    }

    #[test]
    fn locations_out_of_range_or_invalid() {
        assert!(read_locations(Cursor::new("5 0.1 0.2\n"), 3).is_err());
        assert!(read_locations(Cursor::new("0 nan 0.2\n"), 3).is_err());
        assert!(read_locations(Cursor::new("0 0.1\n"), 3).is_err());
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join("sackit_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges_path = dir.join("edges.txt");
        let locs_path = dir.join("locs.txt");

        let g = GraphBuilder::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let positions = vec![
            Point::new(0.1, 0.1),
            Point::new(0.2, 0.1),
            Point::new(0.15, 0.2),
            Point::new(0.9, 0.9),
        ];
        write_edge_list(&g, &edges_path).unwrap();
        write_locations(&positions, &locs_path).unwrap();

        let sg = load_spatial_graph(&edges_path, &locs_path).unwrap();
        assert_eq!(sg.num_vertices(), 4);
        assert_eq!(sg.num_edges(), 4);
        assert_eq!(sg.position(3), Point::new(0.9, 0.9));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_edge_list("/definitely/not/a/file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
