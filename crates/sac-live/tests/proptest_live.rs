//! Property suite for the live-update subsystem: random edge insert/delete
//! streams (with vertex additions) must keep the incrementally maintained
//! core numbers **bit-identical** to a full recomputation at every commit,
//! and the engine's cache-served structural answers must match the library.

use proptest::collection::vec;
use proptest::prelude::*;
use sac_engine::SacEngine;
use sac_geom::Point;
use sac_graph::{core_decomposition, GraphBuilder, SpatialGraph};
use sac_live::LiveEngine;
use std::sync::Arc;

const N: u32 = 40;

/// Deterministic distinct-ish positions on a grid.
fn grid_positions(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new((i % 8) as f64, (i / 8) as f64 + 0.25 * (i % 3) as f64))
        .collect()
}

fn live_over(initial: &[(u32, u32)]) -> (Arc<SacEngine>, LiveEngine) {
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(N - 1);
    builder.add_edges(initial.iter().copied().filter(|(u, v)| u != v));
    let graph = builder.build();
    let spatial = SpatialGraph::new(graph, grid_positions(N as usize)).unwrap();
    let engine = Arc::new(SacEngine::new(spatial));
    engine.warm(&[2, 3]);
    let live = LiveEngine::new(Arc::clone(&engine));
    (engine, live)
}

/// Asserts the published epoch is internally consistent: maintained cores
/// equal a fresh decomposition, and the cache-served k-ĉore queries agree
/// with the library computed from scratch.
fn check_epoch(engine: &SacEngine) -> Result<(), TestCaseError> {
    let snapshot = engine.snapshot();
    let fresh = core_decomposition(snapshot.graph());
    let published = engine.decomposition();
    prop_assert_eq!(
        published.core_numbers(),
        fresh.core_numbers(),
        "incremental cores diverged from full recomputation"
    );
    for q in [0u32, 7, 19, N - 1] {
        for k in [1u32, 2, 3] {
            let cached = engine.connected_core(q, k);
            let direct = sac_graph::connected_kcore(snapshot.graph(), q, k);
            prop_assert_eq!(cached, direct, "k-ĉore mismatch at q={}, k={}", q, k);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random toggle streams with interleaved commits: every published epoch
    /// must be exact.
    #[test]
    fn incremental_cores_match_full_recompute_at_every_commit(
        initial in vec((0u32..N, 0u32..N), 0usize..90),
        stream in vec((0u32..N, 0u32..N, 0u32..8), 20usize..140),
        commit_every in 1usize..9,
    ) {
        let (engine, live) = live_over(&initial);
        let mut commits = 0usize;
        for (i, &(u, v, op)) in stream.iter().enumerate() {
            if op == 7 {
                // Occasionally a new vertex joins and befriends u.
                let newcomer = live.add_vertex(Point::new(9.0, i as f64)).unwrap();
                live.add_edge(newcomer, u % N).unwrap();
            } else if u != v {
                // Toggle the edge: insert when absent, remove when present.
                let inserted = live.add_edge(u, v).unwrap();
                if !inserted.applied {
                    let removed = live.remove_edge(u, v).unwrap();
                    prop_assert!(removed.applied);
                }
            }
            if (i + 1) % commit_every == 0 && live.pending() > 0 {
                live.commit().unwrap();
                commits += 1;
                check_epoch(&engine)?;
            }
        }
        live.commit().unwrap();
        check_epoch(&engine)?;
        prop_assert_eq!(engine.epoch(), engine.stats().epochs_published + 1);
        prop_assert!(commits <= engine.stats().epochs_published as usize);
    }

    /// Carry-over safety: whatever the stream, a query against a carried
    /// per-k index must answer exactly like a freshly built one.
    #[test]
    fn carried_indexes_answer_like_fresh_ones(
        initial in vec((0u32..N, 0u32..N), 30usize..90),
        stream in vec((0u32..N, 0u32..N), 5usize..40),
    ) {
        let (engine, live) = live_over(&initial);
        // Make the per-k indexes resident before mutating.
        engine.warm(&[1, 2, 3, 4]);
        for &(u, v) in &stream {
            if u == v {
                continue;
            }
            let inserted = live.add_edge(u, v).unwrap();
            if !inserted.applied {
                live.remove_edge(u, v).unwrap();
            }
        }
        live.commit().unwrap();
        // The selective invalidation decides which of k=1..4 carried; every
        // answer — carried or rebuilt — must match a from-scratch engine.
        let reference = SacEngine::new((*engine.snapshot()).clone());
        for q in 0..N {
            for k in [1u32, 2, 3, 4] {
                prop_assert_eq!(
                    engine.connected_core(q, k),
                    reference.connected_core(q, k),
                    "carried index diverged at q={}, k={}", q, k
                );
            }
        }
    }
}
