//! Failover end-to-end suite: lease-based leadership over the replication
//! stream, deterministic promotion, and epoch/term fencing of a deposed
//! zombie primary.
//!
//! The acceptance gate: kill the primary mid-stream, and
//!
//! * the replica holding the lowest id in the last broadcast roster
//!   promotes itself — tailer stopped, fresh WAL seeded from its applied
//!   state, term bumped, shipping endpoint opened — **within two lease
//!   windows**, and accepts writes;
//! * the losing candidate re-points at the winner, force-bootstraps from
//!   its snapshot (the winner's log is a new history with unrelated
//!   coordinates), and converges bit-identically — also under injected
//!   link faults (the proptest below);
//! * a restarted zombie primary cannot fork history: its recovery
//!   re-establishes its stale term, the boot-time peer probe finds the new
//!   leader at a higher term, and the zombie rejoins as that leader's
//!   replica — unreplicated zombie writes are discarded by the snapshot
//!   bootstrap and the cluster converges bit-identically.

use proptest::collection::vec;
use proptest::prelude::*;
use sac_engine::{EngineConfig, SacEngine, SacRequest};
use sac_geom::Point;
use sac_graph::{GraphBuilder, SpatialGraph};
use sac_live::failover::{arm, find_superseding_primary};
use sac_live::{
    spawn_shipper, Durability, FailoverConfig, FailoverHandle, FaultPlan, LiveEngine, Replica,
    ReplicaConfig, RetryPolicy, Role, SacService, ServiceConfig, ShipConfig, ShipHandle,
    SyncPolicy,
};
use sac_proto::{ProtoRequest, ProtoResponse};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: u32 = 32;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sac-failover-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reserves a free loopback address for a promotion candidate to advertise
/// (bound, read, released — the promotion re-binds it).
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

fn positions(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new((i % 8) as f64 * 3.0, (i / 8) as f64 * 3.0))
        .collect()
}

fn spatial(initial: &[(u32, u32)]) -> SpatialGraph {
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(N - 1);
    builder.add_edges(initial.iter().copied().filter(|(u, v)| u != v));
    SpatialGraph::new(builder.build(), positions(N as usize)).unwrap()
}

fn durability(dir: &Path) -> Durability {
    Durability {
        dir: dir.to_path_buf(),
        sync: SyncPolicy::Never,
        checkpoint_every: 0,
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(5),
        max: Duration::from_millis(50),
        multiplier: 2.0,
        jitter: 0.2,
        attempt_timeout: Duration::from_secs(2),
    }
}

/// Everything "bit-identical" means, captured from an engine.
#[derive(Clone, PartialEq, Debug)]
struct StateFingerprint {
    epoch: u64,
    cores: Vec<u32>,
    position_bits: Vec<(u64, u64)>,
    answers: Vec<Option<Vec<u32>>>,
}

fn fingerprint(engine: &SacEngine) -> StateFingerprint {
    let snapshot = engine.snapshot();
    let n = snapshot.num_vertices() as u32;
    let mut answers = Vec::new();
    for q in (0..n).step_by(5) {
        for k in 1..4u32 {
            let response = engine.execute(&SacRequest::new(u64::from(q), q, k));
            answers.push(response.community().map(|c| c.members().to_vec()));
        }
    }
    StateFingerprint {
        epoch: engine.epoch(),
        cores: engine.decomposition().core_numbers().to_vec(),
        position_bits: snapshot
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect(),
        answers,
    }
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

/// Boots a durable primary over `initial` with a lease-stamping shipper.
fn primary_with_lease(
    dir: &Path,
    initial: &[(u32, u32)],
    lease_ms: u64,
) -> (Arc<SacEngine>, LiveEngine, ShipHandle) {
    let engine = Arc::new(SacEngine::with_config(
        Arc::new(spatial(initial)),
        EngineConfig::default(),
    ));
    let live = LiveEngine::with_durability(Arc::clone(&engine), durability(dir)).unwrap();
    let ship = spawn_shipper(
        TcpListener::bind("127.0.0.1:0").unwrap(),
        dir.to_path_buf(),
        Arc::clone(&engine),
        ShipConfig {
            lease_ms,
            ..ShipConfig::default()
        },
    )
    .unwrap();
    (engine, live, ship)
}

/// Boots a promotion candidate of `ship`: a replica announcing `id` and
/// `advertise`, fronted by a service with an armed failover watchdog.
fn candidate(
    ship: &ShipHandle,
    id: u64,
    advertise: &str,
    failover_dir: &Path,
    lease_ms: u64,
    faults: Option<FaultPlan>,
) -> (Arc<SacService>, FailoverHandle) {
    let mut config = ReplicaConfig::new(ship.addr().to_string());
    config.retry = fast_retry();
    config.staleness = Duration::from_secs(60);
    config.seed = id ^ 0xFA11;
    config.replica_id = Some(id);
    config.advertise = Some(advertise.to_string());
    config.faults = faults;
    let replica = Replica::boot(config).unwrap();
    let service = Arc::new(SacService::for_replica(replica, ServiceConfig::default()));
    let mut failover = FailoverConfig::new(id, advertise, failover_dir);
    failover.ship = ShipConfig {
        lease_ms,
        ..ShipConfig::default()
    };
    failover.poll = Some(Duration::from_millis(20));
    let handle = arm(Arc::clone(&service), failover).expect("service fronts a replica");
    (service, handle)
}

/// Commits one edge through a service's typed API; returns the new epoch.
fn write_through(service: &SacService, u: u32, v: u32) -> Result<u64, String> {
    match service.handle(&ProtoRequest::AddEdge { u, v }) {
        Some(ProtoResponse::Mutation(_)) => {}
        other => return Err(format!("add_edge answered {other:?}")),
    }
    match service.handle(&ProtoRequest::Commit { trace: false }) {
        Some(ProtoResponse::Commit(reply)) => Ok(reply.epoch),
        other => Err(format!("commit answered {other:?}")),
    }
}

/// The tentpole gate: kill -9 the primary (its shipper dies mid-stream);
/// the lowest-id candidate promotes within two lease windows and accepts
/// writes; the loser re-points, force-bootstraps and converges
/// bit-identically to the new history.
#[test]
fn lease_expiry_promotes_lowest_id_within_two_windows() {
    const LEASE_MS: u64 = 600;
    let dir = temp_dir("promote");
    let initial: Vec<(u32, u32)> = (0..N).map(|v| (v, (v + 3) % N)).collect();
    let (engine, live, ship) = primary_with_lease(&dir, &initial, LEASE_MS);

    let advert1 = free_addr();
    let advert2 = free_addr();
    let fdir1 = temp_dir("promote-f1");
    let fdir2 = temp_dir("promote-f2");
    let (svc1, _watch1) = candidate(&ship, 1, &advert1, &fdir1, LEASE_MS, None);
    let (svc2, watch2) = candidate(&ship, 2, &advert2, &fdir2, LEASE_MS, None);

    // A couple of pre-failover epochs flow to both candidates.
    live.add_edge(0, 9).unwrap();
    live.commit().unwrap();
    live.add_edge(1, 12).unwrap();
    live.commit().unwrap();
    let target = engine.epoch();
    for svc in [&svc1, &svc2] {
        let status = svc.replica_status().unwrap();
        assert!(
            wait_until(Duration::from_secs(20), || {
                status.applied_epoch() == target && status.roster().len() == 2
            }),
            "candidate stalled at {} (roster {:?})",
            status.applied_epoch(),
            status.roster()
        );
        assert_eq!(status.lease_ms(), LEASE_MS, "lease must be armed");
    }

    // Kill the primary: the shipper stops serving, the lease runs out.
    let killed = Instant::now();
    ship.stop();

    // Candidate 1 (lowest id in the broadcast roster) promotes itself.
    assert!(
        wait_until(Duration::from_millis(2 * LEASE_MS), || {
            svc1.role() == Role::Primary
        }),
        "no promotion within two lease windows ({}ms)",
        killed.elapsed().as_millis()
    );
    // ...and accepts writes through the same service handle.
    let epoch = write_through(&svc1, 2, 17).expect("the promoted primary takes writes");
    assert!(
        killed.elapsed() <= Duration::from_millis(2 * LEASE_MS),
        "write unavailability window exceeded two lease windows: {}ms",
        killed.elapsed().as_millis()
    );
    assert!(epoch > target, "the new history continues past {target}");
    assert_eq!(svc1.engine().term(), 1, "promotion adopts observed+1");
    assert!(svc1.replica_status().is_none(), "no replica state remains");

    // The loser follows the winner: re-pointed, re-bootstrapped, converged.
    let status2 = svc2.replica_status().expect("the loser stays a replica");
    assert!(
        wait_until(Duration::from_secs(30), || status2.primary() == advert1),
        "loser still believes {}",
        status2.primary()
    );
    let final_epoch = write_through(&svc1, 3, 20).unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || {
            status2.applied_epoch() == final_epoch
        }),
        "loser stalled at {} of {} (bootstraps {})",
        status2.applied_epoch(),
        final_epoch,
        status2.snapshot_bootstraps()
    );
    assert_eq!(svc2.role(), Role::Replica);
    assert_eq!(status2.term(), 1, "the loser observed the new term");
    // No snapshot-bootstrap count is asserted: a loser that was fully caught
    // up realigns to the winner's log coordinates through the snapshot
    // handshake without jumping state, and that is the desired behaviour.
    assert_eq!(
        fingerprint(&svc2.engine()),
        fingerprint(&svc1.engine()),
        "loser must converge bit-identically to the promoted primary"
    );

    watch2.stop();
    svc2.stop_replica();
    svc1.live().shutdown_flush().unwrap();
    for d in [&dir, &fdir1, &fdir2] {
        let _ = std::fs::remove_dir_all(d);
    }
    drop(live);
}

/// The fencing gate: a deposed primary keeps writing its own WAL (the
/// fork), restarts, recovers at its stale term, and the boot-time peer
/// probe demotes it — it rejoins as a replica of the new leader and
/// converges bit-identically, the forked writes discarded.
#[test]
fn restarted_zombie_primary_is_fenced_and_rejoins() {
    const LEASE_MS: u64 = 400;
    let dir = temp_dir("zombie");
    let initial: Vec<(u32, u32)> = (0..N).map(|v| (v, (v + 5) % N)).collect();
    let (engine, live, ship) = primary_with_lease(&dir, &initial, LEASE_MS);

    let advert = free_addr();
    let fdir = temp_dir("zombie-f");
    let (svc, _watch) = candidate(&ship, 1, &advert, &fdir, LEASE_MS, None);
    live.add_edge(0, 11).unwrap();
    live.commit().unwrap();
    let target = engine.epoch();
    let status = svc.replica_status().unwrap();
    assert!(wait_until(Duration::from_secs(20), || {
        status.applied_epoch() == target && status.lease_ms() == LEASE_MS
    }));

    // The primary is partitioned away (its shipper dies); the candidate
    // promotes and the new history grows.
    ship.stop();
    assert!(wait_until(Duration::from_secs(5), || {
        svc.role() == Role::Primary
    }));
    write_through(&svc, 4, 19).unwrap();

    // Meanwhile the zombie keeps committing to its own WAL: the fork.
    live.add_edge(30, 25).unwrap();
    live.commit().unwrap();
    live.shutdown_flush().unwrap();
    drop(live);

    // "Restart" the zombie: recovery replays its forked log consistently —
    // fencing happens at the cluster boundary, not in the local replay.
    let (zombie, report) = LiveEngine::recover(durability(&dir), EngineConfig::default()).unwrap();
    assert_eq!(report.term, 0, "the zombie recovers at its stale term");
    let zombie_fork = fingerprint(zombie.engine());

    // The boot-time probe finds the new leader at a higher term: demote.
    let superseding = find_superseding_primary(
        &[advert.clone(), "127.0.0.1:1".to_string()],
        report.term,
        Duration::from_millis(500),
    );
    assert_eq!(superseding, Some((advert.clone(), 1)));
    drop(zombie);

    // Rejoining as a replica discards the fork via the snapshot bootstrap.
    let mut config = ReplicaConfig::new(advert.clone());
    config.retry = fast_retry();
    config.staleness = Duration::from_secs(60);
    config.seed = 0xDEAD;
    let rejoined = Replica::boot(config).unwrap();
    let final_epoch = svc.engine().epoch();
    assert!(
        wait_until(Duration::from_secs(30), || {
            rejoined.status().applied_epoch() == final_epoch
        }),
        "rejoined zombie stalled at {} of {final_epoch}",
        rejoined.status().applied_epoch()
    );
    let converged = fingerprint(rejoined.engine());
    assert_eq!(
        converged,
        fingerprint(&svc.engine()),
        "the rejoined zombie must serve the leader's history"
    );
    assert_ne!(
        converged, zombie_fork,
        "the forked write must not survive the rejoin"
    );
    assert_eq!(rejoined.status().term(), 1);

    rejoined.stop();
    svc.live().shutdown_flush().unwrap();
    for d in [&dir, &fdir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The acceptance property under faults: kill the primary, let the
    /// winner promote, stream writes into the new history over a faulty
    /// link — the losing candidate still converges bit-identically.
    #[test]
    fn failover_under_link_faults_converges_bit_identical(
        initial in vec((0u32..N, 0u32..N), 20usize..40),
        stream in vec((0u32..N, 0u32..N), 6usize..12),
        fault_seed in 0u64..1_000,
    ) {
        const LEASE_MS: u64 = 300;
        let dir = temp_dir("faulty");
        let (engine, live, ship) = primary_with_lease(&dir, &initial, LEASE_MS);
        let plan = FaultPlan::parse(&format!(
            "seed={fault_seed},drop=0.06,dup=0.06,corrupt=0.05,truncate=0.03,delay=0.05:1"
        ))
        .unwrap();

        let advert1 = free_addr();
        let advert2 = free_addr();
        let fdir1 = temp_dir("faulty-f1");
        let fdir2 = temp_dir("faulty-f2");
        // The winner's link stays clean (its promotion must be prompt); the
        // loser tails every history through a mangling link.
        let (svc1, _watch1) = candidate(&ship, 1, &advert1, &fdir1, LEASE_MS, None);
        let (svc2, watch2) = candidate(&ship, 2, &advert2, &fdir2, LEASE_MS, Some(plan));

        let target = engine.epoch();
        for svc in [&svc1, &svc2] {
            let status = svc.replica_status().unwrap();
            prop_assert!(
                wait_until(Duration::from_secs(60), || {
                    status.applied_epoch() == target && status.roster().len() == 2
                }),
                "candidate stalled at {} of {target}",
                status.applied_epoch()
            );
        }

        ship.stop();
        prop_assert!(
            wait_until(Duration::from_secs(10), || svc1.role() == Role::Primary),
            "no promotion under faults"
        );

        // Stream writes into the new history.
        let mut last = 0;
        for &(u, v) in &stream {
            if u != v {
                if let Ok(epoch) = write_through(&svc1, u, v) {
                    last = epoch;
                }
            }
        }
        if last == 0 {
            last = write_through(&svc1, 0, 1).unwrap();
        }

        let status2 = svc2.replica_status().expect("loser stays a replica");
        prop_assert!(
            wait_until(Duration::from_secs(60), || {
                status2.applied_epoch() == last
            }),
            "loser stalled at {} of {last} under faults (seed {fault_seed}, \
             bootstraps {}, reconnects {})",
            status2.applied_epoch(),
            status2.snapshot_bootstraps(),
            status2.reconnects()
        );
        prop_assert_eq!(
            fingerprint(&svc2.engine()),
            fingerprint(&svc1.engine()),
            "divergence after failover under faults (seed {})",
            fault_seed
        );

        watch2.stop();
        svc2.stop_replica();
        svc1.live().shutdown_flush().unwrap();
        for d in [&dir, &fdir1, &fdir2] {
            let _ = std::fs::remove_dir_all(d);
        }
        drop(live);
    }
}
