//! Property suite pinning the sharded engine **bit-identical** to the
//! unsharded one: over random graphs, shard counts, query mixes and
//! interleaved update/commit streams, every response (plan label,
//! feasibility, member set, MCC radius/centre) must match the unsharded
//! engine exactly — including queries whose cover circle straddles shard
//! boundaries (which must take the global fallback, never a wrong shard).

use proptest::collection::vec;
use proptest::prelude::*;
use sac_engine::{EngineConfig, QueryBudget, SacEngine, SacRequest};
use sac_geom::Point;
use sac_graph::{BatchOp, GraphBuilder, SpatialGraph};
use sac_live::LiveEngine;
use std::sync::Arc;

const N: u32 = 48;

/// Four spatial clusters far apart, with deterministic in-cluster jitter:
/// shard splits isolate clusters, while random edges still create k-ĉores
/// that straddle them — so query mixes exercise both the single-shard fast
/// path and the multi-shard fallback.
fn clustered_positions(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let cluster = i % 4;
            let (cx, cy) = ((cluster % 2) as f64 * 100.0, (cluster / 2) as f64 * 100.0);
            Point::new(
                cx + (i / 4 % 4) as f64 + 0.3 * (i % 3) as f64,
                cy + (i / 16) as f64 + 0.2 * (i % 5) as f64,
            )
        })
        .collect()
}

fn spatial(initial: &[(u32, u32)], n: u32) -> SpatialGraph {
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(n - 1);
    builder.add_edges(initial.iter().copied().filter(|(u, v)| u != v));
    SpatialGraph::new(builder.build(), clustered_positions(n as usize)).unwrap()
}

/// Asserts every query of the mix answers identically on both engines.
fn check_equivalence(
    sharded: &SacEngine,
    unsharded: &SacEngine,
    label: &str,
) -> Result<(), TestCaseError> {
    let budgets = [
        QueryBudget::exact(),
        QueryBudget::balanced(),
        QueryBudget::interactive(),
        QueryBudget::within_ratio(2.0),
        // Small θ: the circle sits inside one shard (fast path); large θ:
        // it spans every cluster (fallback).
        QueryBudget::balanced().with_theta(3.0),
        QueryBudget::balanced().with_theta(250.0),
    ];
    let n = unsharded.snapshot().num_vertices() as u32;
    for q in 0..n {
        for k in [2u32, 3] {
            for budget in &budgets {
                let request = SacRequest::new(u64::from(q), q, k).with_budget(*budget);
                let a = sharded.execute(&request);
                let b = unsharded.execute(&request);
                prop_assert_eq!(
                    a.plan.label(),
                    b.plan.label(),
                    "{}: plan mismatch at q={}, k={}",
                    label,
                    q,
                    k
                );
                let (ca, cb) = (a.community(), b.community());
                prop_assert_eq!(
                    ca.map(|c| c.members().to_vec()),
                    cb.map(|c| c.members().to_vec()),
                    "{}: member mismatch at q={}, k={}, budget={:?}",
                    label,
                    q,
                    k,
                    budget
                );
                if let (Some(ca), Some(cb)) = (ca, cb) {
                    // Bit-identical includes the geometric answer.
                    prop_assert_eq!(ca.radius().to_bits(), cb.radius().to_bits());
                    prop_assert_eq!(ca.mcc.center.x.to_bits(), cb.mcc.center.x.to_bits());
                    prop_assert_eq!(ca.mcc.center.y.to_bits(), cb.mcc.center.y.to_bits());
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Static snapshots: any shard count answers exactly like the global
    /// engine over the full query mix.
    #[test]
    fn sharded_answers_are_bit_identical(
        initial in vec((0u32..N, 0u32..N), 30usize..140),
        shards in 2usize..5,
    ) {
        let graph = spatial(&initial, N);
        let unsharded = SacEngine::new(graph.clone());
        let sharded = SacEngine::with_shards(graph, shards);
        check_equivalence(&sharded, &unsharded, "static")?;
        // The clustered layout must actually exercise the fast path
        // somewhere in the mix (θ=3 queries at minimum)...
        let stats = sharded.stats();
        prop_assert!(stats.single_shard_queries + stats.fallback_queries > 0);
    }

    /// Interleaved update/commit streams (single edges, bulk batches, vertex
    /// additions and moves): after every commit both engines keep answering
    /// identically, with clean shards carried across epochs.
    #[test]
    fn sharded_live_streams_stay_bit_identical(
        initial in vec((0u32..N, 0u32..N), 20usize..90),
        stream in vec((0u32..N, 0u32..N, 0u32..10), 16usize..60),
        shards in 2usize..5,
        commit_every in 3usize..9,
    ) {
        let graph = spatial(&initial, N);
        let unsharded = Arc::new(SacEngine::new(graph.clone()));
        let sharded = Arc::new(SacEngine::with_config(
            Arc::new(graph),
            EngineConfig { shards, ..EngineConfig::default() },
        ));
        let live_a = LiveEngine::new(Arc::clone(&sharded));
        let live_b = LiveEngine::new(Arc::clone(&unsharded));
        let mut carried_total = 0u64;
        for (i, &(u, v, op)) in stream.iter().enumerate() {
            match op {
                8 => {
                    // Position-only move: grid-only epochs downstream.
                    let p = Point::new((u % 7) as f64 * 31.0, (v % 7) as f64 * 29.0);
                    prop_assert_eq!(
                        live_a.move_vertex(u % N, p).unwrap(),
                        live_b.move_vertex(u % N, p).unwrap()
                    );
                }
                9 => {
                    // Bulk batch: a fan of toggles around (u, v).
                    let ops: Vec<BatchOp> = (0..6u32)
                        .map(|d| {
                            let a = (u + d) % N;
                            let b = (v + 2 * d) % N;
                            if d % 2 == 0 { BatchOp::Insert(a, b) } else { BatchOp::Remove(a, b) }
                        })
                        .filter(|op| {
                            let (a, b) = op.endpoints();
                            a != b
                        })
                        .collect();
                    let ra = live_a.apply_batch(&ops).unwrap();
                    let rb = live_b.apply_batch(&ops).unwrap();
                    prop_assert_eq!(ra.applied, rb.applied);
                    prop_assert_eq!(ra.cores_changed, rb.cores_changed);
                }
                _ if u != v => {
                    let ia = live_a.add_edge(u, v).unwrap();
                    let ib = live_b.add_edge(u, v).unwrap();
                    prop_assert_eq!(ia.applied, ib.applied);
                    if !ia.applied {
                        let ra = live_a.remove_edge(u, v).unwrap();
                        let rb = live_b.remove_edge(u, v).unwrap();
                        prop_assert_eq!(ra.applied, rb.applied);
                    }
                }
                _ => {}
            }
            if (i + 1) % commit_every == 0 {
                let ra = live_a.commit().unwrap();
                let rb = live_b.commit().unwrap();
                prop_assert_eq!(ra.epoch, rb.epoch);
                prop_assert_eq!(ra.dirty_up_to, rb.dirty_up_to);
                prop_assert_eq!(ra.mutations, rb.mutations);
                // An all-no-op window publishes nothing (empty-delta commits
                // short-circuit with a zeroed report), so shard accounting
                // only holds for commits that actually published.
                if ra.mutations > 0 {
                    prop_assert_eq!(
                        ra.shards_rebuilt + ra.shards_carried,
                        shards as u32,
                        "every shard accounted for at each publishing commit"
                    );
                }
                carried_total += u64::from(ra.shards_carried);
                check_equivalence(&sharded, &unsharded, "after commit")?;
            }
        }
        live_a.commit().unwrap();
        live_b.commit().unwrap();
        check_equivalence(&sharded, &unsharded, "final")?;
        // Not asserted per-case (a wide delta can dirty everything), but the
        // counter is read so regressions in carry bookkeeping would surface
        // as overflow/underflow here.
        let _ = carried_total;
    }
}

/// Deterministic regression: with clustered data and a local query, the
/// single-shard fast path engages and still answers identically — including
/// a halo-boundary query vertex sitting right on a shard seam.
#[test]
fn fast_path_engages_on_clustered_data() {
    // A dense triangle fan inside each cluster: every vertex has a small,
    // spatially tight 2-ĉore, so cover circles stay inside one shard.
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(N - 1);
    for c in 0..4u32 {
        let members: Vec<u32> = (0..N).filter(|v| v % 4 == c).collect();
        for w in members.windows(2) {
            builder.add_edge(w[0], w[1]);
        }
        builder.add_edge(members[0], members[2]);
        builder.add_edge(members[1], members[3]);
        builder.add_edge(members[members.len() - 2], members[0]);
    }
    let graph = SpatialGraph::new(builder.build(), clustered_positions(N as usize)).unwrap();
    let unsharded = SacEngine::new(graph.clone());
    let sharded = SacEngine::with_shards(graph, 4);
    for q in 0..N {
        let request = SacRequest::new(u64::from(q), q, 2).with_budget(QueryBudget::balanced());
        let a = sharded.execute(&request);
        let b = unsharded.execute(&request);
        assert_eq!(
            a.community().map(|c| c.members().to_vec()),
            b.community().map(|c| c.members().to_vec()),
            "q={q}"
        );
    }
    let stats = sharded.stats();
    assert!(
        stats.single_shard_queries > 0,
        "clustered queries must hit the fast path (got {stats:?})"
    );
}
