//! Replication end-to-end suite: a read replica tailing a live primary's
//! WAL-shipping endpoint must converge to a state **bit-identical** to the
//! primary — core numbers, positions, shard layout and query answers — at
//! every applied epoch, even when the link injects drops, delays,
//! duplicates, corruption and mid-frame truncation on both sides.
//!
//! Also covered here:
//!
//! * checkpoint truncation racing a disconnected replica: on reconnect the
//!   stale tail position resolves to `SnapshotRequired` and the replica
//!   re-bootstraps from the primary's latest snapshot (never a wrong apply);
//! * staleness-aware degradation: a replica that loses its primary keeps
//!   answering at its last applied epoch, reports `degraded`, and recovers
//!   on its own once the primary is back;
//! * the read-only contract: mutations on a replica get a typed redirect
//!   carrying the primary's address.

use proptest::collection::vec;
use proptest::prelude::*;
use sac_engine::{EngineConfig, SacEngine, SacRequest};
use sac_geom::Point;
use sac_graph::{GraphBuilder, SpatialGraph};
use sac_live::{
    spawn_shipper, Durability, FaultPlan, LiveEngine, Replica, ReplicaConfig, RetryPolicy,
    SacService, ServiceConfig, ShipConfig, SyncPolicy,
};
use sac_proto::{ProtoRequest, ProtoResponse};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: u32 = 32;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sac-replication-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Clustered positions so sharded runs exercise real partitions.
fn positions(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let cluster = i % 4;
            let (cx, cy) = ((cluster % 2) as f64 * 100.0, (cluster / 2) as f64 * 100.0);
            Point::new(
                cx + (i / 4 % 4) as f64 + 0.3 * (i % 3) as f64,
                cy + (i / 16) as f64,
            )
        })
        .collect()
}

fn spatial(initial: &[(u32, u32)], n: u32) -> SpatialGraph {
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(n - 1);
    builder.add_edges(initial.iter().copied().filter(|(u, v)| u != v));
    SpatialGraph::new(builder.build(), positions(n as usize)).unwrap()
}

fn durability(dir: &Path) -> Durability {
    Durability {
        dir: dir.to_path_buf(),
        sync: SyncPolicy::Never,
        checkpoint_every: 0, // manual only: the log keeps every record
    }
}

/// A retry policy tight enough that fault-driven reconnects cost
/// milliseconds, not the production-scale backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(5),
        max: Duration::from_millis(50),
        multiplier: 2.0,
        jitter: 0.2,
        attempt_timeout: Duration::from_secs(2),
    }
}

/// Everything "bit-identical" means, captured from an engine.
#[derive(Clone, PartialEq, Debug)]
struct StateFingerprint {
    epoch: u64,
    cores: Vec<u32>,
    position_bits: Vec<(u64, u64)>,
    shard_count: u32,
    answers: Vec<Option<Vec<u32>>>,
}

fn fingerprint(engine: &SacEngine) -> StateFingerprint {
    let snapshot = engine.snapshot();
    let n = snapshot.num_vertices() as u32;
    let mut answers = Vec::new();
    for q in (0..n).step_by(5) {
        for k in 1..4u32 {
            let response = engine.execute(&SacRequest::new(u64::from(q), q, k));
            answers.push(response.community().map(|c| c.members().to_vec()));
        }
    }
    StateFingerprint {
        epoch: engine.epoch(),
        cores: engine.decomposition().core_numbers().to_vec(),
        position_bits: snapshot
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect(),
        shard_count: engine.shard_count() as u32,
        answers,
    }
}

/// Applies stream op `i` to the live front; returns whether it buffered
/// a mutation.
fn apply_op(live: &LiveEngine, u: u32, v: u32, op: u32) -> bool {
    match op {
        7 => {
            let p = Point::new((u % 9) as f64 * 23.0, (v % 9) as f64 * 17.0);
            live.move_vertex(u % N, p).unwrap()
        }
        8 => {
            live.add_vertex(Point::new((u % 11) as f64, (v % 11) as f64))
                .unwrap();
            true
        }
        _ if u != v => live.add_edge(u, v).unwrap().applied,
        _ => false,
    }
}

/// Polls `done` until it returns true or `deadline` elapses.
fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

/// Boots a durable primary over `initial` plus its shipping endpoint.
fn primary(
    dir: &Path,
    initial: &[(u32, u32)],
    shards: usize,
    faults: Option<FaultPlan>,
) -> (Arc<SacEngine>, LiveEngine, sac_live::ShipHandle) {
    let graph = spatial(initial, N);
    let engine = Arc::new(SacEngine::with_config(
        Arc::new(graph),
        EngineConfig {
            shards,
            ..EngineConfig::default()
        },
    ));
    let live = LiveEngine::with_durability(Arc::clone(&engine), durability(dir)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let ship = spawn_shipper(
        listener,
        dir.to_path_buf(),
        Arc::clone(&engine),
        ShipConfig {
            faults,
            ..ShipConfig::default()
        },
    )
    .unwrap();
    (engine, live, ship)
}

fn replica_config(primary: &sac_live::ShipHandle, shards: usize, seed: u64) -> ReplicaConfig {
    let mut config = ReplicaConfig::new(primary.addr().to_string());
    config.retry = fast_retry();
    config.staleness = Duration::from_secs(60); // degradation tested separately
    config.engine = EngineConfig {
        shards,
        ..EngineConfig::default()
    };
    config.seed = seed;
    config
}

/// Commits on the primary one at a time over a clean link; the replica must
/// land on a bit-identical fingerprint at **every** applied epoch.
#[test]
fn replica_converges_in_lockstep_with_identical_fingerprints() {
    let dir = temp_dir("lockstep");
    let initial: Vec<(u32, u32)> = (0..N).map(|v| (v, (v + 3) % N)).collect();
    let (engine, live, ship) = primary(&dir, &initial, 3, None);
    let replica = Replica::boot(replica_config(&ship, 3, 11)).unwrap();

    // Bootstrap lands on the base checkpoint's state.
    assert!(
        wait_until(Duration::from_secs(20), || {
            replica.status().applied_epoch() == engine.epoch()
        }),
        "bootstrap stalled: replica at {}, primary at {}",
        replica.status().applied_epoch(),
        engine.epoch()
    );
    assert_eq!(fingerprint(replica.engine()), fingerprint(&engine));

    let stream: [(u32, u32, u32); 10] = [
        (1, 2, 0),
        (5, 9, 7),
        (3, 4, 0),
        (0, 0, 8),
        (1, 3, 0),
        (7, 8, 7),
        (2, 4, 0),
        (0, 0, 8),
        (9, 14, 0),
        (12, 13, 7),
    ];
    for &(u, v, op) in &stream {
        if !apply_op(&live, u, v, op) {
            continue;
        }
        live.commit().unwrap();
        let target = engine.epoch();
        assert!(
            wait_until(Duration::from_secs(20), || {
                replica.status().applied_epoch() == target
            }),
            "replica stalled at {} waiting for epoch {}",
            replica.status().applied_epoch(),
            target
        );
        assert_eq!(
            fingerprint(replica.engine()),
            fingerprint(&engine),
            "divergence at epoch {target}"
        );
    }
    assert!(replica.status().records_applied() > 0);
    assert_eq!(replica.status().lag_epochs(), 0);

    replica.stop();
    ship.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property: under fault injection on **both** sides of
    /// the link (drops, delays, duplicates, corruption, mid-frame
    /// truncation), a replica tailing a live primary still converges
    /// bit-identical at every applied epoch it waits for.
    #[test]
    fn faulty_link_replica_converges_bit_identical(
        initial in vec((0u32..N, 0u32..N), 20usize..60),
        stream in vec((0u32..N, 0u32..N, 0u32..10), 10usize..20),
        shard_toggle in 0usize..2,
        commit_every in 2usize..4,
        fault_seed in 0u64..1_000,
    ) {
        let shards = shard_toggle * 3; // 0 = unsharded, 3 = sharded
        let dir = temp_dir("faulty");
        let plan = FaultPlan::parse(&format!(
            "seed={fault_seed},drop=0.08,dup=0.08,corrupt=0.06,truncate=0.04,delay=0.05:1"
        ))
        .unwrap();
        let (engine, live, ship) = primary(&dir, &initial, shards, Some(plan));
        let mut config = replica_config(&ship, shards, fault_seed ^ 0xD1CE);
        config.faults = Some(plan); // receive side mangles frames too
        let replica = Replica::boot(config).unwrap();

        prop_assert!(
            wait_until(Duration::from_secs(60), || {
                replica.status().applied_epoch() == engine.epoch()
            }),
            "bootstrap stalled: replica at {}, primary at {}",
            replica.status().applied_epoch(),
            engine.epoch()
        );

        for (i, &(u, v, op)) in stream.iter().enumerate() {
            apply_op(&live, u, v, op);
            if (i + 1) % commit_every == 0 && live.pending() > 0 {
                live.commit().unwrap();
                let target = engine.epoch();
                prop_assert!(
                    wait_until(Duration::from_secs(60), || {
                        replica.status().applied_epoch() == target
                    }),
                    "replica stalled at {} waiting for epoch {} (reconnects: {})",
                    replica.status().applied_epoch(),
                    target,
                    replica.status().reconnects()
                );
                prop_assert_eq!(
                    fingerprint(replica.engine()),
                    fingerprint(&engine),
                    "divergence at epoch {} under faults (seed {})",
                    target,
                    fault_seed
                );
            }
        }
        if live.pending() > 0 {
            live.commit().unwrap();
        }
        let target = engine.epoch();
        prop_assert!(
            wait_until(Duration::from_secs(60), || {
                replica.status().applied_epoch() == target
            }),
            "final convergence stalled at {} of {}",
            replica.status().applied_epoch(),
            target
        );
        prop_assert_eq!(fingerprint(replica.engine()), fingerprint(&engine));

        replica.stop();
        ship.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite: a checkpoint on the primary truncates the log segments a
/// disconnected replica's tail position points into.  On reconnect the
/// replica must get a clean `SnapshotRequired`, re-bootstrap from the new
/// snapshot via the restored-publish path, and converge — and in between it
/// must keep serving at its last applied epoch, flipping health to
/// `degraded` past the staleness threshold and back once caught up.
#[test]
fn checkpoint_truncation_forces_snapshot_rebootstrap() {
    let dir = temp_dir("truncate");
    let initial: Vec<(u32, u32)> = (0..N).map(|v| (v, (v + 5) % N)).collect();
    let (engine, live, ship) = primary(&dir, &initial, 0, None);
    let port_addr = ship.addr();

    let mut config = replica_config(&ship, 0, 29);
    config.staleness = Duration::from_millis(300);
    let replica = Replica::boot(config).unwrap();

    for i in 0..3u32 {
        live.add_edge(i, i + 7).unwrap();
        live.commit().unwrap();
    }
    let pre_partition = engine.epoch();
    assert!(wait_until(Duration::from_secs(20), || {
        replica.status().applied_epoch() == pre_partition
    }));
    assert_eq!(fingerprint(replica.engine()), fingerprint(&engine));
    assert!(!replica.status().degraded());

    // Partition: the shipping endpoint goes away entirely.
    ship.stop();
    assert!(
        wait_until(Duration::from_secs(10), || replica.status().degraded()),
        "replica never degraded after losing its primary"
    );
    // Degraded, not dead: reads still answer at the last applied epoch.
    assert_eq!(replica.engine().epoch(), pre_partition);
    let reply = replica.engine().execute(&SacRequest::new(1, 0, 1));
    assert!(reply.community().is_some() || reply.community().is_none()); // served, not panicked
    assert!(replica.status().stats_reply().degraded);

    // Meanwhile the primary advances and checkpoints: every segment the
    // replica's tail position points into is truncated away.
    for i in 0..4u32 {
        live.add_edge(i + 2, i + 11).unwrap();
        live.commit().unwrap();
    }
    let report = live.checkpoint().unwrap();
    assert_eq!(report.epoch, engine.epoch());
    assert!(engine.epoch() > pre_partition);

    // The primary comes back on the same address (new listener, same port).
    let start = Instant::now();
    let listener = loop {
        match TcpListener::bind(port_addr) {
            Ok(listener) => break listener,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "cannot rebind {port_addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    let ship2 = spawn_shipper(
        listener,
        dir.clone(),
        Arc::clone(&engine),
        ShipConfig::default(),
    )
    .unwrap();

    // The replica re-bootstraps from the snapshot and converges.
    assert!(
        wait_until(Duration::from_secs(20), || {
            replica.status().applied_epoch() == engine.epoch()
        }),
        "replica stalled at {} after checkpoint truncation (bootstraps: {})",
        replica.status().applied_epoch(),
        replica.status().snapshot_bootstraps()
    );
    assert!(
        replica.status().snapshot_bootstraps() >= 1,
        "stale tail position must force a snapshot re-bootstrap"
    );
    assert_eq!(fingerprint(replica.engine()), fingerprint(&engine));
    assert!(
        wait_until(Duration::from_secs(10), || !replica.status().degraded()),
        "health must recover once the replica is caught up"
    );

    // And the link keeps working: one more commit flows through.
    live.add_edge(20, 27).unwrap();
    live.commit().unwrap();
    let target = engine.epoch();
    assert!(wait_until(Duration::from_secs(20), || {
        replica.status().applied_epoch() == target
    }));
    assert_eq!(fingerprint(replica.engine()), fingerprint(&engine));

    replica.stop();
    ship2.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The read-only contract: on a replica-backed service, every mutation gets
/// a typed redirect carrying the primary's address, queries are served
/// normally, and `stats` exposes the replication state.
#[test]
fn mutations_on_a_replica_redirect_to_the_primary() {
    let dir = temp_dir("redirect");
    let initial: Vec<(u32, u32)> = (0..N).map(|v| (v, (v + 2) % N)).collect();
    let (engine, _live, ship) = primary(&dir, &initial, 0, None);
    let replica = Replica::boot(replica_config(&ship, 0, 41)).unwrap();
    assert!(wait_until(Duration::from_secs(20), || {
        replica.status().applied_epoch() == engine.epoch()
    }));
    let service = SacService::for_replica(replica, ServiceConfig::default());

    let primary_addr = ship.addr().to_string();
    for request in [
        ProtoRequest::AddEdge { u: 1, v: 2 },
        ProtoRequest::RemoveEdge { u: 1, v: 2 },
        ProtoRequest::Commit { trace: false },
    ] {
        match service.handle(&request) {
            Some(ProtoResponse::Redirect { primary, .. }) => {
                assert_eq!(primary, primary_addr);
            }
            other => panic!("expected redirect, got {other:?}"),
        }
    }
    let line = service
        .handle_line(r#"{"cmd":"add_edge","u":1,"v":2}"#)
        .unwrap();
    assert!(
        line.contains(r#""redirect_to":"#) && line.contains(&primary_addr),
        "got: {line}"
    );

    // Queries still flow.
    let line = service.handle_line(r#"{"q":0,"k":1}"#).unwrap();
    assert!(line.contains(r#""ok":true"#), "got: {line}");

    // Stats carry the replication block.
    match service.handle(&ProtoRequest::Stats) {
        Some(ProtoResponse::Stats(reply)) => {
            let replication = reply.replication.expect("replica stats");
            assert_eq!(replication.primary, primary_addr);
            assert_eq!(replication.last_applied_epoch, engine.epoch());
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Every engine mode reports its role; this service fronts a replica.
    assert_eq!(service.role(), sac_live::Role::Replica);

    service.stop_replica();
    ship.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
