//! Crash-recovery property suite: for a WAL-backed live engine,
//! [`sac_live::LiveEngine::recover`] must rebuild a state **bit-identical**
//! to the pre-crash epoch — core numbers, positions, shard layout and query
//! answers — no matter where the crash lands:
//!
//! * exactly on a record boundary (the durable prefix of commits),
//! * mid-record (a torn tail, truncated on open and resolved to the last
//!   complete record),
//! * after a clean shutdown (the marker vouches for the tail, so recovery
//!   replays everything and reports `clean_shutdown`).
//!
//! A flipped byte inside a *complete* record is never survivable: it must be
//! a hard error, not a silent rollback.

use proptest::collection::vec;
use proptest::prelude::*;
use sac_engine::{EngineConfig, SacEngine, SacRequest};
use sac_geom::Point;
use sac_graph::{GraphBuilder, SpatialGraph};
use sac_live::{Durability, LiveEngine, SyncPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N: u32 = 32;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sac-wal-recovery-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Clustered positions so sharded runs exercise real partitions.
fn positions(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let cluster = i % 4;
            let (cx, cy) = ((cluster % 2) as f64 * 100.0, (cluster / 2) as f64 * 100.0);
            Point::new(
                cx + (i / 4 % 4) as f64 + 0.3 * (i % 3) as f64,
                cy + (i / 16) as f64,
            )
        })
        .collect()
}

fn spatial(initial: &[(u32, u32)], n: u32) -> SpatialGraph {
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(n - 1);
    builder.add_edges(initial.iter().copied().filter(|(u, v)| u != v));
    SpatialGraph::new(builder.build(), positions(n as usize)).unwrap()
}

fn durability(dir: &Path) -> Durability {
    Durability {
        dir: dir.to_path_buf(),
        sync: SyncPolicy::Never,
        checkpoint_every: 0, // manual only: the log keeps every record
    }
}

/// Everything "bit-identical" means, captured from a live engine.
#[derive(Clone, PartialEq, Debug)]
struct StateFingerprint {
    epoch: u64,
    cores: Vec<u32>,
    position_bits: Vec<(u64, u64)>,
    shard_count: u32,
    answers: Vec<Option<Vec<u32>>>,
}

fn fingerprint(engine: &SacEngine) -> StateFingerprint {
    let snapshot = engine.snapshot();
    let n = snapshot.num_vertices() as u32;
    let mut answers = Vec::new();
    for q in (0..n).step_by(5) {
        for k in 1..4u32 {
            let response = engine.execute(&SacRequest::new(u64::from(q), q, k));
            answers.push(response.community().map(|c| c.members().to_vec()));
        }
    }
    StateFingerprint {
        epoch: engine.epoch(),
        cores: engine.decomposition().core_numbers().to_vec(),
        position_bits: snapshot
            .positions()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect(),
        shard_count: engine.shard_count() as u32,
        answers,
    }
}

/// Applies stream op `i` to the live front; returns whether it buffered
/// a mutation.
fn apply_op(live: &LiveEngine, u: u32, v: u32, op: u32) -> bool {
    match op {
        7 => {
            let p = Point::new((u % 9) as f64 * 23.0, (v % 9) as f64 * 17.0);
            live.move_vertex(u % N, p).unwrap()
        }
        8 => {
            live.add_vertex(Point::new((u % 11) as f64, (v % 11) as f64))
                .unwrap();
            true
        }
        _ if u != v => live.add_edge(u, v).unwrap().applied,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crash simulation at every record boundary plus torn mid-record
    /// offsets: recovery lands exactly on the durable prefix's state.
    #[test]
    fn crash_at_every_record_boundary_recovers_bit_identical(
        initial in vec((0u32..N, 0u32..N), 20usize..60),
        stream in vec((0u32..N, 0u32..N, 0u32..10), 12usize..30),
        shard_toggle in 0usize..2,
        commit_every in 2usize..5,
    ) {
        let shards = shard_toggle * 3; // 0 = unsharded, 3 = sharded
        let dir = temp_dir("prop");
        let graph = spatial(&initial, N);
        let engine = Arc::new(SacEngine::with_config(
            Arc::new(graph),
            EngineConfig { shards, ..EngineConfig::default() },
        ));
        let live = LiveEngine::with_durability(Arc::clone(&engine), durability(&dir)).unwrap();

        // `states[j]` = the expected post-recovery state when the log holds
        // exactly `j` records (`states[0]` is the base checkpoint's state).
        let mut states = vec![fingerprint(&engine)];
        for (i, &(u, v, op)) in stream.iter().enumerate() {
            apply_op(&live, u, v, op);
            if (i + 1) % commit_every == 0 && live.pending() > 0 {
                live.commit().unwrap();
                states.push(fingerprint(&engine));
            }
        }
        if live.pending() > 0 {
            live.commit().unwrap();
            states.push(fingerprint(&engine));
        }

        // No clean marker was written: this is the crashed directory.
        let log = sac_wal::read_log(&dir, true).unwrap();
        prop_assert_eq!(log.truncated_bytes, 0);
        prop_assert_eq!(log.records.len() + 1, states.len(), "one record per publish");

        // Crash with an empty log (right after the base checkpoint)...
        let scratch = temp_dir("cut");
        for (j, expected) in states.iter().enumerate() {
            let _ = std::fs::remove_dir_all(&scratch);
            copy_dir(&dir, &scratch);
            // ...and after each record boundary: keep the first j records.
            let (seg, cut) = if j == 0 {
                (*log.segments.last().unwrap(), 0)
            } else {
                log.boundaries[j - 1]
            };
            let path = sac_wal::segment_path(&scratch, seg);
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(cut).unwrap();
            drop(file);

            let (recovered, report) = LiveEngine::recover(
                durability(&scratch),
                EngineConfig { shards, ..EngineConfig::default() },
            )
            .unwrap();
            prop_assert!(!report.clean_shutdown);
            prop_assert_eq!(report.records_replayed as usize, j);
            let got = fingerprint(recovered.engine());
            prop_assert_eq!(&got, expected, "crash after record {}", j);
        }

        // Torn tails: cut mid-record (1 and 5 bytes past the previous
        // boundary, and 1 byte short of the full record) — the partial
        // record is truncated and the state rolls back to the boundary.
        if let Some(&(seg, end)) = log.boundaries.last() {
            let prev = if log.boundaries.len() >= 2 {
                log.boundaries[log.boundaries.len() - 2].1
            } else {
                0
            };
            for cut in [prev + 1, prev + 5, end - 1] {
                if cut <= prev || cut >= end {
                    continue;
                }
                let _ = std::fs::remove_dir_all(&scratch);
                copy_dir(&dir, &scratch);
                let path = sac_wal::segment_path(&scratch, seg);
                let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                file.set_len(cut).unwrap();
                drop(file);
                let (recovered, report) = LiveEngine::recover(
                    durability(&scratch),
                    EngineConfig { shards, ..EngineConfig::default() },
                )
                .unwrap();
                prop_assert!(report.truncated_bytes > 0, "cut at {} is mid-record", cut);
                prop_assert_eq!(report.records_replayed as usize, states.len() - 2);
                let got = fingerprint(recovered.engine());
                prop_assert_eq!(&got, &states[states.len() - 2], "torn cut at {}", cut);
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

/// Mixed update/commit/move stream on a sharded engine with a mid-stream
/// checkpoint: a recovered engine answers every query exactly like the
/// still-running original.
#[test]
fn recovery_matches_live_after_mixed_stream_and_checkpoint() {
    let dir = temp_dir("mixed");
    let initial: Vec<(u32, u32)> = (0..N).map(|v| (v, (v + 4) % N)).collect();
    let graph = spatial(&initial, N);
    let config = EngineConfig {
        shards: 3,
        ..EngineConfig::default()
    };
    let engine = Arc::new(SacEngine::with_config(Arc::new(graph), config));
    let live = LiveEngine::with_durability(Arc::clone(&engine), durability(&dir)).unwrap();

    let stream: [(u32, u32, u32); 12] = [
        (1, 2, 0),
        (2, 3, 0),
        (5, 9, 7),
        (3, 4, 0),
        (0, 0, 8),
        (1, 3, 0),
        (7, 8, 7),
        (2, 4, 0),
        (9, 14, 0),
        (0, 0, 8),
        (6, 11, 0),
        (12, 13, 7),
    ];
    for (i, &(u, v, op)) in stream.iter().enumerate() {
        apply_op(&live, u, v, op);
        if (i + 1) % 3 == 0 {
            live.commit().unwrap();
        }
        if i + 1 == 6 {
            // Mid-stream checkpoint: older segments are gone, later records
            // replay on top of the new snapshot.
            let report = live.checkpoint().unwrap();
            assert_eq!(report.epoch, engine.epoch());
        }
    }

    // Crash (no clean marker): recover and compare against the original.
    let (recovered, report) = LiveEngine::recover(durability(&dir), config).unwrap();
    assert!(!report.clean_shutdown);
    assert!(
        report.snapshot_epoch > 1,
        "recovery starts at the checkpoint"
    );
    assert_eq!(recovered.engine().epoch(), engine.epoch());
    assert_eq!(
        fingerprint(recovered.engine()),
        fingerprint(&engine),
        "recovered state must be bit-identical to the live engine"
    );
    // Both fronts keep working and agree on the next commit's epoch.
    recovered.add_edge(0, 16).unwrap();
    live.add_edge(0, 16).unwrap();
    assert_eq!(
        recovered.commit().unwrap().epoch,
        live.commit().unwrap().epoch
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte inside a complete record is detected as corruption — a
/// hard error, never a silent rollback.
#[test]
fn flipped_byte_is_a_hard_recovery_error() {
    let dir = temp_dir("flip");
    let graph = spatial(&[(0, 1), (1, 2), (2, 0)], N);
    let engine = Arc::new(SacEngine::new(graph));
    let live = LiveEngine::with_durability(Arc::clone(&engine), durability(&dir)).unwrap();
    for i in 0..4u32 {
        live.add_edge(i, i + 5).unwrap();
        live.commit().unwrap();
    }
    let log = sac_wal::read_log(&dir, true).unwrap();
    // Flip a payload byte of the FIRST record: a complete frame whose CRC
    // can no longer match (the last record's bytes are ambiguous with a torn
    // tail, the first record's never are).
    let (seg, _) = log.boundaries[0];
    let path = sac_wal::segment_path(&dir, seg);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = sac_wal::FRAME_HEADER_BYTES + 2;
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = LiveEngine::recover(durability(&dir), EngineConfig::default());
    assert!(err.is_err(), "corruption must fail recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean shutdown leaves the marker; boot reports it, replays the full
/// log in strict mode, and lands on the same state.
#[test]
fn clean_shutdown_marker_round_trips() {
    let dir = temp_dir("clean");
    let graph = spatial(&[(0, 1), (1, 2)], N);
    let engine = Arc::new(SacEngine::new(graph));
    let live = LiveEngine::with_durability(Arc::clone(&engine), durability(&dir)).unwrap();
    live.add_edge(3, 4).unwrap();
    live.commit().unwrap();
    assert!(live.shutdown_flush().unwrap());
    assert_eq!(sac_wal::read_clean_marker(&dir), Some(engine.epoch()));
    let expected = fingerprint(&engine);

    let (recovered, report) =
        LiveEngine::recover(durability(&dir), EngineConfig::default()).unwrap();
    assert!(report.clean_shutdown);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(fingerprint(recovered.engine()), expected);
    // Reopening for appends consumed the marker: the next boot scans again.
    assert_eq!(sac_wal::read_clean_marker(&dir), None);
    let _ = std::fs::remove_dir_all(&dir);
}
