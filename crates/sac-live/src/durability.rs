//! Durability wiring for the live engine: the [`Durability`] config, the
//! WAL-side state a [`crate::LiveEngine`] carries when persistence is
//! enabled, and the report/stat types the service layer surfaces.
//!
//! The mechanics (record framing, segments, snapshot codec) live in
//! [`sac_wal`]; this module owns *policy*: when to append (every commit,
//! before the epoch swap), when to checkpoint, which shard frames can be
//! reused, and how the shared metrics registry and event log observe it all.

use crate::delta::{GraphDelta, Mutation};
use sac_engine::SacEngine;
use sac_graph::GraphError;
use sac_obs::{Counter, Gauge, Histogram};
use sac_wal::{AppendInfo, SnapshotFrame, SyncPolicy, WalError, WalWriter};
use std::path::PathBuf;
use std::sync::Arc;

/// Durability configuration for a [`crate::LiveEngine`].
#[derive(Debug, Clone)]
pub struct Durability {
    /// Directory holding segments, snapshots and the clean-shutdown marker.
    pub dir: PathBuf,
    /// When commits fsync (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Automatic checkpoint cadence in commits (`0` = manual checkpoints
    /// only, via the `checkpoint` admin command).
    pub checkpoint_every: u64,
}

impl Durability {
    /// Durability under `dir` with the safe defaults: fsync every commit,
    /// checkpoint every 64 commits.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Durability {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            checkpoint_every: 64,
        }
    }
}

/// Why a [`crate::LiveEngine::commit`] failed.
#[derive(Debug)]
pub enum CommitError {
    /// The rebuilt snapshot failed graph-level validation.
    Graph(GraphError),
    /// The write-ahead log rejected the commit's record (the mutations stay
    /// buffered in the write front; nothing was published).
    Wal(WalError),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Graph(e) => write!(f, "{e}"),
            CommitError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CommitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommitError::Graph(e) => Some(e),
            CommitError::Wal(e) => Some(e),
        }
    }
}

impl From<GraphError> for CommitError {
    fn from(e: GraphError) -> Self {
        CommitError::Graph(e)
    }
}

impl From<WalError> for CommitError {
    fn from(e: WalError) -> Self {
        CommitError::Wal(e)
    }
}

/// What one checkpoint did.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// Epoch the snapshot captured.
    pub epoch: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
    /// Shard frames re-encoded (the rest were reused from the previous
    /// checkpoint's cache).
    pub frames_encoded: u32,
    /// Shard frames reused verbatim.
    pub frames_reused: u32,
    /// Log segments deleted (their records are covered by the snapshot).
    pub segments_removed: u64,
    /// Active segment id after the checkpoint's rotation.
    pub segment: u64,
    /// Wall-clock cost, microseconds.
    pub micros: u64,
}

/// What a [`crate::LiveEngine::recover`] replayed.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Epoch the recovered engine serves (snapshot epoch + replayed records).
    pub epoch: u64,
    /// Leadership term re-established by recovery: the maximum of the
    /// durable term marker and the terms carried by replayed records (terms
    /// may only rise across the replay — a regression is a fenced zombie's
    /// write and fails recovery).
    pub term: u64,
    /// Log records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Individual mutations inside those records.
    pub mutations_replayed: u64,
    /// Torn-tail bytes truncated from the final segment (0 on a clean log).
    pub truncated_bytes: u64,
    /// Whether a clean-shutdown marker vouched for the log tail (boot then
    /// skips torn-tail tolerance and treats any anomaly as corruption).
    pub clean_shutdown: bool,
    /// Wall-clock cost of the whole recovery, microseconds.
    pub micros: u64,
}

/// A point-in-time view of the WAL for `/stats`, `/healthz` and admin
/// replies.
#[derive(Debug, Clone)]
pub struct WalStats {
    /// The WAL directory.
    pub dir: PathBuf,
    /// Configured sync policy.
    pub sync: SyncPolicy,
    /// Live segment files.
    pub segments: u64,
    /// Bytes across segment files.
    pub log_bytes: u64,
    /// Bytes across snapshot files.
    pub snapshot_bytes: u64,
    /// Epoch of the newest checkpoint.
    pub last_checkpoint_epoch: u64,
    /// Records appended since this process opened the log.
    pub appended_records: u64,
    /// Epoch of the served (durably applied) state — the point a replication
    /// follower of this node would converge to.
    pub last_applied_epoch: u64,
    /// Segment id of the WAL tail (where the next record lands).
    pub tail_segment: u64,
    /// Byte offset of the WAL tail within `tail_segment`.
    pub tail_offset: u64,
}

/// Pre-bound WAL instruments in the engine's shared registry.
#[derive(Debug)]
pub(crate) struct WalObs {
    enabled: bool,
    appended_bytes: Arc<Counter>,
    appends: Arc<Counter>,
    fsync_micros: Arc<Histogram>,
    segments: Arc<Gauge>,
    checkpoints: Arc<Counter>,
    checkpoint_micros: Arc<Histogram>,
    last_checkpoint_epoch: Arc<Gauge>,
}

impl WalObs {
    pub(crate) fn new(engine: &SacEngine) -> WalObs {
        let registry = engine.metrics();
        WalObs {
            enabled: engine.observing(),
            appended_bytes: registry.counter(
                "sac_wal_appended_bytes_total",
                "Record bytes appended to the write-ahead log",
                &[],
            ),
            appends: registry.counter(
                "sac_wal_appends_total",
                "Records appended to the write-ahead log",
                &[],
            ),
            fsync_micros: registry.histogram(
                "sac_wal_fsync_micros",
                "WAL fsync latency, microseconds",
                &[],
            ),
            segments: registry.gauge("sac_wal_segments", "Live WAL segment files on disk", &[]),
            checkpoints: registry.counter(
                "sac_wal_checkpoints_total",
                "Snapshot checkpoints written",
                &[],
            ),
            checkpoint_micros: registry.histogram(
                "sac_wal_checkpoint_micros",
                "Checkpoint wall-clock cost, microseconds",
                &[],
            ),
            last_checkpoint_epoch: registry.gauge(
                "sac_wal_last_checkpoint_epoch",
                "Epoch captured by the newest snapshot checkpoint",
                &[],
            ),
        }
    }
}

/// The live engine's WAL-side state: the writer plus checkpoint bookkeeping.
/// Held behind the engine handle's own mutex; the commit path appends while
/// the write-front lock is held, so records and epoch swaps stay in lockstep.
#[derive(Debug)]
pub(crate) struct WalState {
    pub(crate) writer: WalWriter,
    pub(crate) config: Durability,
    pub(crate) obs: WalObs,
    pub(crate) commits_since_checkpoint: u64,
    pub(crate) last_checkpoint_epoch: u64,
    /// Vertex count at the last checkpoint; a mismatch forces a full frame
    /// re-encode (`usize::MAX` = no cached frames yet).
    pub(crate) last_checkpoint_vertices: usize,
    /// Cached per-shard frames from the last checkpoint, reused for shards
    /// that saw no mutations since.
    pub(crate) frames: Vec<SnapshotFrame>,
    /// Per-shard dirty flags accumulated since the last checkpoint (empty on
    /// unsharded engines).
    pub(crate) dirty_since_checkpoint: Vec<bool>,
    pub(crate) appended_records: u64,
    pub(crate) appended_bytes: u64,
    /// Oldest live segment id (checkpoints advance it), so the segment gauge
    /// needs no directory scan on the commit path.
    pub(crate) first_live_segment: u64,
}

impl WalState {
    /// Folds one append's facts into counters and metrics, and accumulates
    /// the commit's dirty-shard knowledge for the next checkpoint.
    pub(crate) fn note_append(&mut self, info: &AppendInfo, commit_dirty: &[bool]) {
        self.appended_records += 1;
        self.appended_bytes += info.bytes;
        if self.dirty_since_checkpoint.len() == commit_dirty.len() {
            for (acc, &d) in self.dirty_since_checkpoint.iter_mut().zip(commit_dirty) {
                *acc |= d;
            }
        }
        if self.obs.enabled {
            self.obs.appends.inc();
            self.obs.appended_bytes.add(info.bytes);
            if info.synced {
                self.obs.fsync_micros.record(info.sync_micros);
            }
            let live = info.segment.saturating_sub(self.first_live_segment) + 1;
            self.obs.segments.set(live as i64);
        }
    }

    /// Records a finished checkpoint into metrics and resets the cadence and
    /// dirty tracking.
    pub(crate) fn note_checkpoint(&mut self, report: &CheckpointReport, segments_now: u64) {
        self.commits_since_checkpoint = 0;
        self.last_checkpoint_epoch = report.epoch;
        self.dirty_since_checkpoint
            .iter_mut()
            .for_each(|d| *d = false);
        if self.obs.enabled {
            self.obs.checkpoints.inc();
            self.obs.checkpoint_micros.record(report.micros);
            self.obs.last_checkpoint_epoch.set(report.epoch as i64);
            self.obs.segments.set(segments_now as i64);
        }
    }
}

/// Converts a pending delta into WAL operations (application order).
pub(crate) fn wal_ops(delta: &GraphDelta) -> Vec<sac_wal::WalOp> {
    delta
        .ops()
        .iter()
        .map(|m| match *m {
            Mutation::InsertEdge(u, v) => sac_wal::WalOp::InsertEdge(u, v),
            Mutation::RemoveEdge(u, v) => sac_wal::WalOp::RemoveEdge(u, v),
            Mutation::AddVertex(p) => sac_wal::WalOp::AddVertex(p.x, p.y),
            Mutation::MoveVertex(v, p) => sac_wal::WalOp::MoveVertex(v, p.x, p.y),
        })
        .collect()
}
