//! Lease-based primary failover: promotion of a read replica to a writable
//! primary, epoch/term fencing of the deposed leader, and the boot-time
//! demotion probe that stops a restarted zombie from forking history.
//!
//! The protocol piggybacks on the replication stream — there is no separate
//! consensus service:
//!
//! * **Leases.** Every heartbeat the primary ships carries a lease duration
//!   (`ShipConfig::lease_ms`) and the roster of connected promotion
//!   candidates.  A replica that applies the heartbeat re-arms its lease;
//!   silence past the lease is the failure signal.
//! * **Deterministic election.** When the lease expires, every candidate
//!   evaluates the *same* rule over the *same* data — the lowest replica id
//!   in the last broadcast roster wins.  No votes are exchanged: the roster
//!   all candidates hold is the one the dead primary broadcast, so they
//!   agree on the winner without talking to each other.
//! * **Promotion.** The winner stops its tailer, seeds a fresh WAL directory
//!   from its applied state (the snapshot checkpoint the new log starts
//!   from), adopts `observed term + 1`, opens its own shipping endpoint on
//!   the advertised address, and swaps the service's live front in place —
//!   transports keep their handle, writes start landing.  Losers re-point
//!   their believed primary at the winner and force a snapshot re-bootstrap
//!   (the winner's log coordinates are unrelated to the dead primary's).
//! * **Fencing.** Terms are stamped into every WAL record and replication
//!   frame.  A restarted zombie primary recovers at its old term; before
//!   serving writes it probes its peers ([`find_superseding_primary`]) and,
//!   on finding a leader with a higher term, boots as that leader's replica
//!   instead — its unreplicated tail is discarded by the snapshot bootstrap,
//!   so history never forks.  Even without the probe, replicas refuse
//!   streams whose term regresses, and the shipper refuses replicas that
//!   observed a higher term, so a zombie cannot re-acquire followers.

use crate::replication;
use crate::service::{Role, SacService};
use crate::{Durability, LiveEngine, ShipConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Identity and resources a replica needs to stand for promotion.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Stable id this replica announced in its handshake (the election
    /// compares these; lowest connected id wins).
    pub replica_id: u64,
    /// Address to ship the WAL on after promotion (the same address peers
    /// learned from the heartbeat roster).
    pub advertise: String,
    /// Directory the promoted primary's fresh WAL is seeded into.  Must not
    /// hold prior WAL state: promotion starts a new log with a snapshot of
    /// the applied state as its base checkpoint.
    pub dir: PathBuf,
    /// Shipping configuration of the post-promotion endpoint (lease
    /// duration, poll cadence, fault injection).
    pub ship: ShipConfig,
    /// Watchdog poll period override; `None` derives lease/4 (50 ms floor
    /// fallback while no lease has been granted yet).
    pub poll: Option<Duration>,
}

impl FailoverConfig {
    /// A promotion-capable identity with default shipping and poll cadence.
    pub fn new(replica_id: u64, advertise: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        FailoverConfig {
            replica_id,
            advertise: advertise.into(),
            dir: dir.into(),
            ship: ShipConfig::default(),
            poll: None,
        }
    }
}

/// Handle on an armed failover watchdog.
#[derive(Debug)]
pub struct FailoverHandle {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl FailoverHandle {
    /// Asks the watchdog to wind down and waits for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Arms the failover watchdog on a replica-fronting service: a background
/// thread polls the lease and, when it expires, either promotes this node
/// (it holds the lowest id in the last roster) or re-points the service's
/// replica link at the deterministic winner.
///
/// Returns `None` when the service does not front a replica — a primary has
/// no lease to watch.
pub fn arm(service: Arc<SacService>, config: FailoverConfig) -> Option<FailoverHandle> {
    service.replica_status()?;
    let stop = Arc::new(AtomicBool::new(false));
    let watchdog_stop = Arc::clone(&stop);
    let thread = thread::spawn(move || watchdog(&service, &config, &watchdog_stop));
    Some(FailoverHandle {
        stop,
        thread: Some(thread),
    })
}

fn watchdog(service: &Arc<SacService>, config: &FailoverConfig, stop: &AtomicBool) {
    loop {
        let Some(status) = service.replica_status() else {
            return; // promoted (or torn down): nothing left to watch
        };
        let poll = config.poll.unwrap_or_else(|| {
            let lease = status.lease_ms();
            Duration::from_millis(if lease == 0 { 50 } else { (lease / 4).max(10) })
        });
        thread::sleep(poll);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if !status.lease_expired() {
            continue;
        }
        // Act on this expiry exactly once; a fresh heartbeat re-arms it.
        status.disarm_lease();
        let roster = status.roster();
        let winner = roster.first().cloned();
        match winner {
            Some((id, _)) if id == config.replica_id => {
                match promote(service, config, status.term()) {
                    Ok(term) => {
                        eprintln!(
                            "failover: lease expired, promoted to primary at term {term} \
                             (shipping on {})",
                            config.advertise
                        );
                        return;
                    }
                    Err(e) => {
                        // Promotion failed (bind error, WAL error): stay a
                        // replica and keep watching — the next expiry retries.
                        eprintln!("failover: promotion failed: {e}");
                        service.set_role(Role::Replica);
                    }
                }
            }
            Some((id, addr)) => {
                // A peer wins: follow it.  Its log is a different history
                // (new term, fresh coordinates), so the next connection must
                // bootstrap from its snapshot rather than resume our tail.
                eprintln!("failover: lease expired, following new primary {addr} (id {id})");
                status.repoint(addr);
                status.request_bootstrap();
            }
            None => {
                // No roster was ever broadcast: we are the only candidate we
                // know of — promote.
                match promote(service, config, status.term()) {
                    Ok(term) => {
                        eprintln!(
                            "failover: lease expired with empty roster, promoted at term {term}"
                        );
                        return;
                    }
                    Err(e) => {
                        eprintln!("failover: promotion failed: {e}");
                        service.set_role(Role::Replica);
                    }
                }
            }
        }
    }
}

/// Promotes the service's replica to a writable primary in place; returns
/// the adopted term.
fn promote(
    service: &Arc<SacService>,
    config: &FailoverConfig,
    observed_term: u64,
) -> Result<u64, String> {
    service.set_role(Role::Candidate);
    let replica = service
        .take_replica()
        .ok_or("no replica link to promote (already taken)")?;
    // Stop the tailer before opening the write path: no frame from the old
    // primary may land after we start a new history.
    let (engine, _status) = replica.into_parts();
    let term = observed_term + 1;
    // Seed a fresh WAL under the failover directory: attaching durability
    // writes a base checkpoint of the applied state, the root of the new log.
    let durability = Durability {
        dir: config.dir.clone(),
        ..Durability::new(&config.dir)
    };
    let live = LiveEngine::with_durability(engine, durability)
        .map_err(|e| format!("cannot seed WAL under {}: {e}", config.dir.display()))?;
    live.adopt_term(term)
        .map_err(|e| format!("cannot adopt term {term}: {e}"))?;
    let listener = TcpListener::bind(&config.advertise)
        .map_err(|e| format!("cannot bind {}: {e}", config.advertise))?;
    let handle = replication::spawn_shipper(
        listener,
        config.dir.clone(),
        Arc::clone(live.engine()),
        config.ship,
    )
    .map_err(|e| format!("cannot start shipper: {e}"))?;
    // The shipper outlives its handle; the endpoint serves until exit.
    let _ = handle;
    service.install_live(live);
    Ok(term)
}

/// Probes `peers` and returns the address and term of a live primary whose
/// term exceeds `local_term`, if any (the highest such term wins).
///
/// A restarted primary calls this before serving writes: a superseding
/// leader means this node was deposed while down — it must boot as a
/// replica of that leader instead of forking history from its stale WAL.
pub fn find_superseding_primary(
    peers: &[String],
    local_term: u64,
    timeout: Duration,
) -> Option<(String, u64)> {
    let mut best: Option<(String, u64)> = None;
    for peer in peers {
        let Ok(reply) = replication::probe(peer, timeout) else {
            continue; // an unreachable peer cannot supersede us
        };
        if reply.term <= local_term || reply.role != "primary" {
            continue;
        }
        let addr = reply.leader.unwrap_or_else(|| peer.clone());
        if best.as_ref().is_none_or(|(_, t)| reply.term > *t) {
            best = Some((addr, reply.term));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::spawn_shipper;
    use crate::ServiceConfig;
    use sac_core::fixtures::figure3_graph;
    use sac_engine::SacEngine;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sac-failover-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn arm_refuses_a_primary_service() {
        let service = Arc::new(SacService::new(
            Arc::new(SacEngine::new(figure3_graph())),
            ServiceConfig::default(),
        ));
        assert!(arm(service, FailoverConfig::new(1, "127.0.0.1:0", "/tmp/x")).is_none());
    }

    #[test]
    fn superseding_probe_ignores_lower_terms_and_dead_peers() {
        // A live shipper at term 0 never supersedes a node at term 0.
        let dir = temp_dir("probe");
        let engine = Arc::new(SacEngine::new(figure3_graph()));
        let live = LiveEngine::with_durability(Arc::clone(&engine), Durability::new(&dir)).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn_shipper(
            listener,
            dir.clone(),
            Arc::clone(&engine),
            ShipConfig::default(),
        )
        .unwrap();
        let addr = handle.addr().to_string();
        let timeout = Duration::from_millis(500);
        let peers = vec!["127.0.0.1:1".to_string(), addr.clone()];
        assert_eq!(find_superseding_primary(&peers, 0, timeout), None);
        // Raise the shipper's term above ours: now it supersedes.
        live.adopt_term(3).unwrap();
        assert_eq!(
            find_superseding_primary(&peers, 0, timeout),
            Some((addr.clone(), 3))
        );
        assert_eq!(
            find_superseding_primary(&peers, 3, timeout),
            None,
            "equal terms do not supersede"
        );
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
