//! The HTTP/1.1 transport: a hand-rolled `std::net::TcpListener` front end
//! speaking the same typed protocol as the LDJSON loop.
//!
//! No external HTTP crate is available in the build environment, so this
//! module implements the small, well-defined subset the protocol needs:
//! request-line + header parsing, `Content-Length` bodies, keep-alive, and
//! fixed-length responses.  Routing is deliberately tiny — the protocol
//! payloads are the *same bytes* the LDJSON transport reads and writes, so
//! both transports stay thin shells over one [`SacService`]:
//!
//! | route | behaviour |
//! |---|---|
//! | `POST /api` | body = one protocol JSON document; reply body = the protocol reply line |
//! | `GET /stats` | shorthand for `{"cmd":"stats"}` |
//! | `GET /metrics` | Prometheus text exposition (`{"cmd":"metrics"}` carries the same text as JSON) |
//! | `GET /events?since=N` | structured event-log page from cursor `N` (shorthand for `{"cmd":"events","since":N}`) |
//! | `GET /healthz` | liveness probe: `{"ok":true,"epoch":…,"shards":…,"uptime_secs":…,…,"role":"primary"\|"replica"\|"candidate"}` (plus a `wal` object when durability is on, and a `replication` object + `"status":"ok"|"degraded"` on replicas; `role` is always reported and tracks failover) |
//!
//! A `{"cmd":"quit"}` document closes the connection (the server keeps
//! accepting new ones); transport-level problems (unknown route, missing
//! body) use HTTP status codes, while protocol-level errors travel as normal
//! `{"ok":false,...}` payloads with status 200 — exactly what the LDJSON
//! transport would emit.

use crate::SacService;
use sac_proto::{ProtoRequest, ProtoResponse, TransportError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Default for [`HttpConfig::max_body_bytes`].  Protocol documents are small
/// (the biggest legitimate ones are query batches); anything larger is
/// rejected *before* the body buffer is allocated, so a hostile
/// `Content-Length` cannot force a huge allocation.
const DEFAULT_MAX_BODY_BYTES: usize = 16 << 20;

/// Default for [`HttpConfig::read_timeout`].
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Largest request line or header line, and the most header lines, the
/// server will read: the head is bounded just like the body, so an endless
/// unterminated header cannot grow a `String` without limit either.
const MAX_HEAD_LINE_BYTES: u64 = 8 << 10;
const MAX_HEADER_COUNT: usize = 128;

/// Transport hardening knobs of the HTTP front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// Largest request body accepted; a bigger declared `Content-Length` is
    /// refused with `413` before any allocation
    /// ([`TransportError::BodyTooLarge`]).
    pub max_body_bytes: usize,
    /// Per-request socket read timeout: a connection that stalls mid-request
    /// (or idles on keep-alive) longer than this is answered `408` and
    /// closed ([`TransportError::ReadTimeout`]).  `None` waits forever.
    pub read_timeout: Option<Duration>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
        }
    }
}

/// Reads one CRLF-terminated head line with [`MAX_HEAD_LINE_BYTES`] enforced;
/// `Ok(None)` signals an over-long line (connection must close — the rest of
/// the line is unread, so the stream cannot be resynchronised).
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<Option<usize>> {
    let n = reader.by_ref().take(MAX_HEAD_LINE_BYTES).read_line(line)?;
    if n as u64 >= MAX_HEAD_LINE_BYTES && !line.ends_with('\n') {
        return Ok(None);
    }
    Ok(Some(n))
}

/// One parsed HTTP request head plus its body.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
    /// Set when the head was readable but the request must be refused with
    /// this typed transport error (body unread — the connection cannot be
    /// resynchronised and must close after the error response).
    reject: Option<TransportError>,
}

/// Reads one HTTP/1.1 request; `Ok(None)` on a cleanly closed connection.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    config: &HttpConfig,
) -> std::io::Result<Option<HttpRequest>> {
    let mut reject: Option<TransportError> = None;
    let mut request_line = String::new();
    match read_head_line(reader, &mut request_line)? {
        Some(0) => return Ok(None),
        Some(_) => {}
        None => reject = Some(TransportError::HeadTooLarge),
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default().to_string();
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut headers_seen = 0usize;
    while reject.is_none() {
        let mut header = String::new();
        match read_head_line(reader, &mut header)? {
            Some(0) => return Ok(None),
            Some(_) => {}
            None => {
                reject = Some(TransportError::HeadTooLarge);
                break;
            }
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        headers_seen += 1;
        if headers_seen > MAX_HEADER_COUNT {
            reject = Some(TransportError::HeadTooLarge);
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "invalid Content-Length",
                        )
                    })?;
                }
                "connection" => {
                    keep_alive = !value.eq_ignore_ascii_case("close");
                }
                // Chunked (or any non-identity) transfer coding is not
                // implemented; reading on as if the body were fixed-length
                // would desynchronise the connection, so refuse and close.
                "transfer-encoding" if !value.eq_ignore_ascii_case("identity") => {
                    reject = Some(TransportError::UnsupportedTransferEncoding);
                }
                _ => {}
            }
        }
    }
    if content_length > config.max_body_bytes {
        reject = reject.or(Some(TransportError::BodyTooLarge {
            limit: config.max_body_bytes,
        }));
    }
    if reject.is_some() {
        // The body (if any) is deliberately left unread.
        return Ok(Some(HttpRequest {
            method,
            path,
            body: String::new(),
            keep_alive: false,
            reject,
        }));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
        reject: None,
    }))
}

/// Writes one fixed-length response with an explicit content type.
fn write_response_typed(
    writer: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Writes one JSON response, timing the socket write into
/// `sac_transport_io_micros{transport="http",op="write"}` and counting the
/// status into `sac_http_responses_total`.
fn write_response(
    service: &SacService,
    writer: &mut TcpStream,
    status: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_typed(
        service,
        writer,
        status,
        "application/json",
        body,
        keep_alive,
    )
}

/// [`write_response`] with an explicit content type (the `/metrics` text
/// exposition is not JSON).
fn write_typed(
    service: &SacService,
    writer: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let obs = service.obs();
    let span = obs.span(&obs.http_write);
    let result = write_response_typed(writer, status, content_type, body, keep_alive);
    span.finish();
    obs.count_status(status);
    result
}

/// Serves one connection with the default [`HttpConfig`].
pub fn handle_connection(service: &SacService, stream: TcpStream) -> std::io::Result<()> {
    handle_connection_with(service, stream, &HttpConfig::default())
}

/// Serves one connection until it closes, an IO error occurs, the client
/// sends `{"cmd":"quit"}`, or a transport limit trips (oversize body →
/// `413`, stalled read → `408`; the typed refusals of
/// [`sac_proto::TransportError`]).
pub fn handle_connection_with(
    service: &SacService,
    stream: TcpStream,
    config: &HttpConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let obs = service.obs();
        let read_span = obs.span(&obs.http_read);
        let read = read_request(&mut reader, config);
        read_span.finish();
        let request = match read {
            Ok(Some(request)) => request,
            Ok(None) => break,
            // A stalled read (no complete request within the timeout) gets a
            // typed 408 and a close; mid-head data may be unread, so the
            // stream cannot be reused.
            Err(e) if is_timeout(&e) => {
                let timeout = config.read_timeout.unwrap_or_default();
                let error = TransportError::ReadTimeout { timeout };
                let reply =
                    ProtoResponse::error(error.to_string()).encode_line(service.encode_options());
                let _ = write_response(
                    service,
                    &mut writer,
                    error.status_line(),
                    &format!("{reply}\n"),
                    false,
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let keep_alive = request.keep_alive;
        if let Some(error) = request.reject {
            let reply =
                ProtoResponse::error(error.to_string()).encode_line(service.encode_options());
            write_response(
                service,
                &mut writer,
                error.status_line(),
                &format!("{reply}\n"),
                false,
            )?;
            return Ok(());
        }
        // The query string only matters for `/events`; stripping it here
        // keeps every other route match exact.
        let (path, query) = match request.path.split_once('?') {
            Some((path, query)) => (path, Some(query)),
            None => (request.path.as_str(), None),
        };
        match (request.method.as_str(), path) {
            ("POST", "/api") | ("POST", "/") => {
                let body = request.body.trim();
                if body.is_empty() {
                    let reply = ProtoResponse::error("empty request body")
                        .encode_line(service.encode_options());
                    write_response(
                        service,
                        &mut writer,
                        "400 Bad Request",
                        &format!("{reply}\n"),
                        keep_alive,
                    )?;
                } else {
                    match service.handle_line(body) {
                        Some(reply) => write_response(
                            service,
                            &mut writer,
                            "200 OK",
                            &format!("{reply}\n"),
                            keep_alive,
                        )?,
                        // quit: acknowledge and close this connection (the
                        // listener keeps accepting others).
                        None => {
                            write_response(
                                service,
                                &mut writer,
                                "200 OK",
                                "{\"ok\":true}\n",
                                false,
                            )?;
                            return Ok(());
                        }
                    }
                }
            }
            ("GET", "/stats") => {
                let reply = service
                    .handle(&ProtoRequest::Stats)
                    .expect("stats never quits")
                    .encode_line(service.encode_options());
                write_response(
                    service,
                    &mut writer,
                    "200 OK",
                    &format!("{reply}\n"),
                    keep_alive,
                )?;
            }
            ("GET", "/metrics") => {
                // Prometheus scrapers expect the text exposition format, not
                // JSON — the one route with a different content type.
                let text = service.metrics_text();
                write_typed(
                    service,
                    &mut writer,
                    "200 OK",
                    "text/plain; version=0.0.4",
                    &text,
                    keep_alive,
                )?;
            }
            ("GET", "/events") => {
                let since = query
                    .into_iter()
                    .flat_map(|q| q.split('&'))
                    .find_map(|pair| pair.strip_prefix("since="))
                    .map(str::parse::<u64>)
                    .transpose();
                match since {
                    Err(_) => {
                        let reply =
                            ProtoResponse::error("query parameter 'since' must be an integer")
                                .encode_line(service.encode_options());
                        write_response(
                            service,
                            &mut writer,
                            "400 Bad Request",
                            &format!("{reply}\n"),
                            keep_alive,
                        )?;
                    }
                    Ok(since) => {
                        let reply = service
                            .handle(&ProtoRequest::Events {
                                since: since.unwrap_or(0),
                            })
                            .expect("events never quits")
                            .encode_line(service.encode_options());
                        write_response(
                            service,
                            &mut writer,
                            "200 OK",
                            &format!("{reply}\n"),
                            keep_alive,
                        )?;
                    }
                }
            }
            ("GET", "/healthz") => {
                let engine = service.engine();
                let shards = engine.shard_map().map_or(0, |m| m.num_shards());
                // The WAL and replication sections append after the
                // historical fields so earlier bodies stay byte-identical.
                let wal = service.live().wal_stats().map_or(String::new(), |w| {
                    format!(
                        ",\"wal\":{{\"segments\":{},\"log_bytes\":{},\
                         \"last_checkpoint_epoch\":{},\"last_applied_epoch\":{},\
                         \"tail_segment\":{},\"tail_offset\":{}}}",
                        w.segments,
                        w.log_bytes,
                        w.last_checkpoint_epoch,
                        w.last_applied_epoch,
                        w.tail_segment,
                        w.tail_offset,
                    )
                });
                let replication = service.replica_status().map_or(String::new(), |status| {
                    format!(
                        ",\"replication\":{},\"status\":\"{}\"",
                        status.stats_reply().to_json(),
                        if status.degraded() { "degraded" } else { "ok" },
                    )
                });
                let body = format!(
                    "{{\"ok\":true,\"epoch\":{},\"shards\":{shards},\"uptime_secs\":{}{wal}{replication},\"role\":\"{}\"}}\n",
                    engine.epoch(),
                    service.uptime_secs(),
                    service.role().as_str(),
                );
                write_response(service, &mut writer, "200 OK", &body, keep_alive)?;
            }
            ("POST", _) | ("GET", _) => {
                let reply = ProtoResponse::error(format!("unknown route {}", request.path))
                    .encode_line(service.encode_options());
                write_response(
                    service,
                    &mut writer,
                    "404 Not Found",
                    &format!("{reply}\n"),
                    keep_alive,
                )?;
            }
            (method, _) => {
                let reply = ProtoResponse::error(format!("unsupported method {method}"))
                    .encode_line(service.encode_options());
                write_response(
                    service,
                    &mut writer,
                    "405 Method Not Allowed",
                    &format!("{reply}\n"),
                    keep_alive,
                )?;
            }
        }
        if !keep_alive {
            break;
        }
    }
    Ok(())
}

/// Whether an IO error is a socket read timeout (`WouldBlock` on Unix,
/// `TimedOut` on other platforms).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Accept loop with the default [`HttpConfig`].
pub fn serve_http(service: Arc<SacService>, listener: TcpListener) -> std::io::Result<()> {
    serve_http_with(service, listener, HttpConfig::default())
}

/// Accept loop: serves every incoming connection on its own thread, sharing
/// the service and the transport limits.  Runs until the listener errors
/// (the process normally ends it by exiting).
pub fn serve_http_with(
    service: Arc<SacService>,
    listener: TcpListener,
    config: HttpConfig,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let _ = handle_connection_with(&service, stream, &config);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_engine::SacEngine;

    fn spawn_server() -> std::net::SocketAddr {
        spawn_server_with(HttpConfig::default())
    }

    fn spawn_server_with(config: HttpConfig) -> std::net::SocketAddr {
        let service = Arc::new(SacService::new(
            Arc::new(SacEngine::new(figure3_graph())),
            ServiceConfig::default(),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = serve_http_with(service, listener, config);
        });
        addr
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> (String, String) {
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).unwrap();
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(value) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = value.parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (
            status.trim_end().to_string(),
            String::from_utf8(body).unwrap(),
        )
    }

    fn post(stream: &mut TcpStream, body: &str) -> (String, String) {
        roundtrip(
            stream,
            &format!(
                "POST /api HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn http_speaks_the_protocol_with_keep_alive() {
        let addr = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Two sequential requests on one connection (keep-alive).
        let (status, body) = post(&mut stream, &format!(r#"{{"q":{},"k":2}}"#, figure3::Q));
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""feasible":true"#), "got: {body}");
        let (status, body) = post(&mut stream, r#"{"cmd":"stats"}"#);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""queries":1"#), "got: {body}");
        // Protocol-level errors come back as 200 + ok:false, like LDJSON.
        let (status, body) = post(&mut stream, r#"{"cmd":"frobnicate"}"#);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""ok":false"#));

        // GET sugar routes.
        let (status, body) = roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.starts_with(r#"{"ok":true,"epoch":1,"shards":0,"uptime_secs":"#));
        // Every engine mode reports its role; a plain service is a primary.
        assert!(
            body.trim_end().ends_with(r#""role":"primary"}"#),
            "got: {body}"
        );
        let (status, body) = roundtrip(&mut stream, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""vertices":10"#));
        assert!(body.contains(r#""uptime_secs":"#), "got: {body}");
        // The metrics exposition covers the query served above and the
        // transport's own response counters.
        let (status, body) = roundtrip(&mut stream, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("# TYPE sac_queries_total counter"), "{body}");
        assert!(body.contains("sac_queries_total 1"), "{body}");
        assert!(
            body.contains("sac_http_responses_total{status=\"200\"}"),
            "{body}"
        );
        assert!(
            body.contains("sac_transport_io_micros_count{transport=\"http\",op=\"write\"}"),
            "{body}"
        );

        // Transport-level problems use HTTP statuses.
        let (status, _) = roundtrip(&mut stream, "GET /nope HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        let (status, _) = roundtrip(&mut stream, "DELETE /api HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        let (status, _) = post(&mut stream, "");
        assert_eq!(status, "HTTP/1.1 400 Bad Request");

        // quit closes this connection; the server accepts new ones.
        let (status, body) = post(&mut stream, r#"{"cmd":"quit"}"#);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"ok\":true}\n");
        let mut fresh = TcpStream::connect(addr).unwrap();
        let (status, body) = post(&mut fresh, r#"{"cmd":"stats"}"#);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""ok":true"#));
    }

    #[test]
    fn hostile_heads_are_refused_without_reading_the_body() {
        let addr = spawn_server();
        // A huge Content-Length must not allocate: 413 and close, instantly.
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, body) = roundtrip(
            &mut stream,
            "POST /api HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999999999\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 413 Payload Too Large");
        assert!(body.contains("byte limit"), "got: {body}");
        // Chunked bodies would desynchronise the framing: 501 and close.
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, body) = roundtrip(
            &mut stream,
            "POST /api HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n2a\r\n",
        );
        assert_eq!(status, "HTTP/1.1 501 Not Implemented");
        assert!(body.contains("Transfer-Encoding"));
        // The server is still healthy for well-formed clients.
        let mut fresh = TcpStream::connect(addr).unwrap();
        let (status, _) = post(&mut fresh, r#"{"cmd":"stats"}"#);
        assert_eq!(status, "HTTP/1.1 200 OK");
    }

    #[test]
    fn configured_body_limit_and_read_timeout_are_enforced() {
        // A tiny body limit: a modest batch is now oversize -> 413 + typed
        // message carrying the configured limit.
        let addr = spawn_server_with(HttpConfig {
            max_body_bytes: 64,
            read_timeout: Some(std::time::Duration::from_secs(5)),
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let big = format!(r#"{{"q":0,"k":2,"algorithm":"{}"}}"#, "x".repeat(100));
        let (status, body) = post(&mut stream, &big);
        assert_eq!(status, "HTTP/1.1 413 Payload Too Large");
        assert!(body.contains("64-byte limit"), "got: {body}");
        // In-limit requests still work on a fresh connection.
        let mut fresh = TcpStream::connect(addr).unwrap();
        let (status, _) = post(&mut fresh, r#"{"cmd":"stats"}"#);
        assert_eq!(status, "HTTP/1.1 200 OK");

        // A stalled client (incomplete request, then silence) gets a typed
        // 408 once the read timeout fires; keep-alive semantics for healthy
        // clients are untouched (exercised by the other tests).
        let addr = spawn_server_with(HttpConfig {
            max_body_bytes: 1024,
            read_timeout: Some(std::time::Duration::from_millis(100)),
        });
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"POST /api HTTP/1.1\r\nHost: t\r\n")
            .unwrap();
        let mut reader = BufReader::new(slow.try_clone().unwrap());
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert_eq!(status.trim_end(), "HTTP/1.1 408 Request Timeout");
    }

    /// Like [`roundtrip`] but also returns the `Content-Type` header value.
    fn roundtrip_with_type(stream: &mut TcpStream, request: &str) -> (String, String, String) {
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut content_length = 0usize;
        let mut content_type = String::new();
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).unwrap();
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            let lower = header.to_ascii_lowercase();
            if let Some(value) = lower.strip_prefix("content-length:").map(str::trim) {
                content_length = value.parse().unwrap();
            }
            if lower.starts_with("content-type:") {
                content_type = header.split_once(':').unwrap().1.trim().to_string();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (
            status.trim_end().to_string(),
            content_type,
            String::from_utf8(body).unwrap(),
        )
    }

    #[test]
    fn metrics_exposition_declares_the_prometheus_content_type() {
        let addr = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, content_type, body) =
            roundtrip_with_type(&mut stream, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(content_type, "text/plain; version=0.0.4");
        assert!(body.contains("# TYPE sac_queries_total counter"), "{body}");
        // JSON routes stay application/json.
        let (_, content_type, _) =
            roundtrip_with_type(&mut stream, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(content_type, "application/json");
    }

    #[test]
    fn events_endpoint_pages_the_event_log() {
        let addr = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        // No events yet: an empty page with a zero cursor.
        let (status, body) = roundtrip(&mut stream, "GET /events HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(
            body.starts_with(r#"{"ok":true,"next_seq":0,"missed":0,"events":[]}"#),
            "got: {body}"
        );
        // A commit publishes an epoch_swap event.
        post(
            &mut stream,
            &format!(
                r#"{{"cmd":"add_edge","u":{},"v":{}}}"#,
                figure3::I,
                figure3::F
            ),
        );
        post(&mut stream, r#"{"cmd":"commit"}"#);
        let (status, body) = roundtrip(&mut stream, "GET /events HTTP/1.1\r\nHost: test\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""kind":"epoch_swap""#), "got: {body}");
        assert!(body.contains(r#""next_seq":1"#), "got: {body}");
        // Cursoring past everything returns an empty page; the LDJSON
        // command serves the identical payload.
        let (_, body) = roundtrip(
            &mut stream,
            "GET /events?since=1 HTTP/1.1\r\nHost: test\r\n\r\n",
        );
        assert!(body.contains(r#""events":[]"#), "got: {body}");
        let (_, ldjson) = post(&mut stream, r#"{"cmd":"events","since":1}"#);
        assert_eq!(body, ldjson);
        // A malformed cursor is a 400, not a panic.
        let (status, _) = roundtrip(
            &mut stream,
            "GET /events?since=soon HTTP/1.1\r\nHost: test\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
    }

    #[test]
    fn live_updates_persist_across_connections() {
        let addr = spawn_server();
        let mut a = TcpStream::connect(addr).unwrap();
        post(
            &mut a,
            &format!(
                r#"{{"cmd":"add_edge","u":{},"v":{}}}"#,
                figure3::I,
                figure3::F
            ),
        );
        let (_, commit) = post(&mut a, r#"{"cmd":"commit"}"#);
        assert!(commit.contains(r#""epoch":2"#), "got: {commit}");
        drop(a);
        // A different connection sees the published epoch.
        let mut b = TcpStream::connect(addr).unwrap();
        let (_, body) = post(&mut b, &format!(r#"{{"q":{},"k":2}}"#, figure3::I));
        assert!(body.contains(r#""feasible":true"#), "got: {body}");
        assert!(body.contains(r#""epoch":2"#));
    }
}
