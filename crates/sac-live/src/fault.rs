//! Deterministic fault injection for the replication link.
//!
//! A [`FaultPlan`] is a seeded probability table parsed from a flag or the
//! `SAC_REPL_FAULTS` environment variable; a [`FaultInjector`] draws from it
//! per frame, on either side of the link.  Every failure mode the link must
//! survive is representable:
//!
//! * `drop` — the frame silently vanishes (the receiver must detect the gap
//!   via heartbeats / epoch continuity and reconnect);
//! * `delay` — the frame is held for a fixed number of milliseconds;
//! * `dup` — the frame is delivered twice (the receiver must dedup by
//!   position);
//! * `corrupt` — one payload byte is flipped (the receiver's CRC check must
//!   catch it and trigger a reconnect, never an apply);
//! * `truncate` — only a prefix of the frame is delivered and the
//!   connection is cut mid-frame.
//!
//! All randomness is a splitmix64 stream seeded from `(plan seed, stream
//! seed)`, so a pinned seed replays the identical fault schedule — the
//! convergence proptest drives every mode deterministically.

use crate::retry::splitmix64;

/// Flag/env-configurable fault probabilities for the replication link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is delayed.
    pub delay: f64,
    /// How long a delayed frame is held, milliseconds.
    pub delay_ms: u64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one payload byte is flipped.
    pub corrupt: f64,
    /// Probability the frame is cut mid-way and the connection dropped.
    pub truncate: f64,
}

impl FaultPlan {
    /// Parses a spec like
    /// `seed=7,drop=0.1,dup=0.05,corrupt=0.05,truncate=0.02,delay=0.1:5`
    /// (`delay` takes `probability:milliseconds`).  Unknown keys and
    /// out-of-range probabilities are errors; omitted keys default to 0.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec part '{part}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault probability '{v}' is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault seed '{value}' is not an integer"))?;
                }
                "drop" => plan.drop = prob(value)?,
                "dup" => plan.duplicate = prob(value)?,
                "corrupt" => plan.corrupt = prob(value)?,
                "truncate" => plan.truncate = prob(value)?,
                "delay" => {
                    let (p, ms) = value.split_once(':').unwrap_or((value, "1"));
                    plan.delay = prob(p)?;
                    plan.delay_ms = ms
                        .parse()
                        .map_err(|_| format!("delay milliseconds '{ms}' is not an integer"))?;
                }
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// The plan configured via `SAC_REPL_FAULTS`, if any (a malformed spec
    /// is reported and ignored rather than silently arming no faults).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("SAC_REPL_FAULTS").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("ignoring SAC_REPL_FAULTS: {e}");
                None
            }
        }
    }

    /// Whether any fault has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.delay > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.truncate > 0.0
    }
}

/// What the injector decided to do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the frame untouched.
    Deliver,
    /// Silently swallow the frame.
    Drop,
    /// Hold the frame for this many milliseconds, then deliver it.
    Delay(u64),
    /// Deliver the frame twice.
    Duplicate,
    /// Flip the payload byte at this index (modulo the frame length).
    CorruptByte(usize),
    /// Deliver only this many bytes of the frame, then cut the connection.
    Truncate(usize),
}

/// Per-connection fault decision stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
}

impl FaultInjector {
    /// An injector for one connection: `stream` distinguishes connections
    /// (and sides) so reconnects see fresh — but still deterministic —
    /// schedules.
    pub fn new(plan: FaultPlan, stream: u64) -> FaultInjector {
        FaultInjector {
            plan,
            state: splitmix64(plan.seed ^ stream.rotate_left(17) ^ 0x5AC0_FA17),
        }
    }

    fn next_unit(&mut self) -> f64 {
        self.state = splitmix64(self.state);
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of one frame of `len` bytes.  The probabilities are
    /// evaluated in a fixed order (drop, truncate, corrupt, dup, delay); at
    /// most one fault fires per frame.
    pub fn next_action(&mut self, len: usize) -> FaultAction {
        let roll = self.next_unit();
        // One roll, fixed sub-intervals: keeps the stream consumption per
        // frame constant so schedules stay aligned across code changes.
        let offset_roll = self.next_unit();
        let p = &self.plan;
        let mut floor = 0.0;
        for (prob, action) in [
            (p.drop, FaultAction::Drop),
            (
                p.truncate,
                FaultAction::Truncate((offset_roll * len.max(1) as f64) as usize),
            ),
            (
                p.corrupt,
                FaultAction::CorruptByte((offset_roll * len.max(1) as f64) as usize),
            ),
            (p.duplicate, FaultAction::Duplicate),
            (p.delay, FaultAction::Delay(p.delay_ms)),
        ] {
            if roll < floor + prob {
                return action;
            }
            floor += prob;
        }
        FaultAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let plan =
            FaultPlan::parse("seed=7,drop=0.1,dup=0.05,corrupt=0.2,truncate=0.02,delay=0.3:12")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop, 0.1);
        assert_eq!(plan.duplicate, 0.05);
        assert_eq!(plan.corrupt, 0.2);
        assert_eq!(plan.truncate, 0.02);
        assert_eq!(plan.delay, 0.3);
        assert_eq!(plan.delay_ms, 12);
        assert!(plan.is_active());
        assert!(!FaultPlan::parse("seed=9").unwrap().is_active());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("drop").is_err());
    }

    #[test]
    fn schedules_are_deterministic_and_exercise_every_mode() {
        let plan = FaultPlan::parse("seed=3,drop=0.2,dup=0.2,corrupt=0.2,truncate=0.2,delay=0.1:2")
            .unwrap();
        let mut a = FaultInjector::new(plan, 1);
        let mut b = FaultInjector::new(plan, 1);
        let mut seen_kinds = std::collections::HashSet::new();
        for _ in 0..400 {
            let action = a.next_action(64);
            assert_eq!(action, b.next_action(64));
            seen_kinds.insert(std::mem::discriminant(&action));
            if let FaultAction::Truncate(n) | FaultAction::CorruptByte(n) = action {
                assert!(n < 64);
            }
        }
        assert_eq!(seen_kinds.len(), 6, "all five faults plus Deliver");
        // Different streams diverge.
        let mut c = FaultInjector::new(plan, 2);
        let diverged = (0..50).any(|_| a.next_action(64) != c.next_action(64));
        assert!(diverged);
    }
}
