//! Log-shipping replication: a primary streams its write-ahead log to
//! read replicas over TCP; replicas apply the records through the same
//! replay path crash recovery uses and serve read-only queries at their
//! applied epoch.
//!
//! ## Topology
//!
//! ```text
//!             commits → WAL (segments on disk)
//!   primary ──────────────┬────────────────────────────
//!                         │ read_tail polling
//!                   [log shipper]  ── TCP ──►  [replica tailer]
//!                         │                        │ apply record,
//!                   heartbeats (epoch + tail)      │ publish epoch N
//!                                                  ▼
//!                                             SacEngine (read-only)
//! ```
//!
//! * The **shipper** ([`spawn_shipper`]) serves any number of replica
//!   connections.  Each connection bootstraps from the newest checkpoint
//!   snapshot (or resumes from an exact `(segment, offset)` log position)
//!   and then follows the live tail via [`sac_wal::read_tail`], which
//!   distinguishes in-flight appends from corruption and reports
//!   checkpoint truncation as the clean [`WalError::SnapshotRequired`]
//!   signal.  Heartbeats carry the primary's served epoch and WAL tail.
//! * The **replica** ([`Replica::boot`]) re-verifies every record's CRC
//!   end to end, deduplicates by log position, insists on a gapless epoch
//!   sequence, and publishes each applied record as its own epoch through
//!   the engine's normal atomic epoch swap — so a replica's state at epoch
//!   `N` is bit-identical to the primary's state at epoch `N` (pinned by
//!   the convergence property suite).
//! * The link is **fault-injectable** on both sides ([`FaultPlan`]): drops,
//!   delays, duplicates, payload corruption and mid-frame truncation all
//!   resolve to a reconnect-and-resume, driven by [`RetryPolicy`] backoff.
//! * Past [`ReplicaConfig::staleness`] without contact the replica
//!   **degrades** rather than fails: it keeps answering queries at its
//!   last applied epoch and flips `/healthz` to `degraded`, recovering
//!   automatically when the link heals.
//! * Heartbeats double as **leases** for failover (see
//!   [`crate::failover`]): each carries the primary's leadership term, a
//!   lease duration, and the roster of connected promotion candidates.
//!   The replica tracks the observed term and rejects streams and records
//!   from a primary whose term regressed (a fenced zombie); a shipping
//!   endpoint likewise refuses replicas that have observed a newer term
//!   than its own, and answers [`probe`] requests with its term and role
//!   so a restarting primary can detect it was superseded.
//!
//! Durability is asymmetric by design: a replica trusts that everything
//! the primary shipped is durable on the primary.  Run primaries with
//! `--wal-sync always` (the default) when replicas are attached.

use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::retry::RetryPolicy;
use sac_engine::{EngineConfig, SacEngine};
use sac_geom::Point;
use sac_graph::{CoreDecomposition, DynamicGraph, GraphError, SpatialGraph};
use sac_obs::{Counter, Gauge};
use sac_proto::replication::{
    ProbeReply, ProbeRequest, ReplFrame, ReplicateHello, ReplicateRequest,
};
use sac_proto::ReplicationStatsReply;
use sac_wal::{crc::crc32, DeltaRecord, WalError, WalOp};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Consecutive heartbeats whose reported tail is ahead of the replica's
/// position — with no record delivered in between — before the replica
/// concludes frames were lost and reconnects to re-request them.
const STALLED_HEARTBEAT_LIMIT: u32 = 3;

// ---------------------------------------------------------------------------
// Primary side: the log shipper.
// ---------------------------------------------------------------------------

/// Configuration of the primary's shipping endpoint.
#[derive(Debug, Clone, Copy)]
pub struct ShipConfig {
    /// How long to sleep between tail polls when caught up.
    pub poll: Duration,
    /// Maximum record frames per tail read (bounds per-iteration memory).
    pub max_frames: usize,
    /// Lease duration stamped into every heartbeat, in milliseconds.  A
    /// replica that hears nothing for this long past its last heartbeat may
    /// start an election (see [`crate::failover`]).
    pub lease_ms: u64,
    /// Send-side fault injection, if armed.
    pub faults: Option<FaultPlan>,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            poll: Duration::from_millis(15),
            max_frames: 64,
            lease_ms: 1000,
            faults: None,
        }
    }
}

/// Handle on a running shipping endpoint.
#[derive(Debug)]
pub struct ShipHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShipHandle {
    /// The address the shipper accepts replica connections on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop and every connection handler to wind down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Starts the WAL-shipping endpoint on `listener`: accepts replica
/// connections and streams the log under `dir`, stamping heartbeats with
/// `engine`'s served epoch.  Returns immediately; connections are handled
/// on their own threads.
pub fn spawn_shipper(
    listener: TcpListener,
    dir: PathBuf,
    engine: Arc<SacEngine>,
    config: ShipConfig,
) -> std::io::Result<ShipHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    // Connected promotion candidates, broadcast in every heartbeat so all
    // followers elect the same winner when the lease expires.
    let roster: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    thread::spawn(move || {
        let conns = AtomicU64::new(0);
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = stream else { continue };
            let conn_id = conns.fetch_add(1, Ordering::Relaxed) + 1;
            let dir = dir.clone();
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&accept_stop);
            let roster = Arc::clone(&roster);
            thread::spawn(move || {
                // A broken replica connection is that replica's problem; the
                // shipper just moves on to the next accept.
                let _ = ship_connection(stream, &dir, &engine, config, conn_id, &stop, &roster);
            });
        }
    });
    Ok(ShipHandle { addr, stop })
}

/// Registers one candidate in the shipper's roster for the lifetime of its
/// connection; dropping the guard (connection end) deregisters it.
struct RosterGuard<'a> {
    roster: &'a Mutex<Vec<(u64, String)>>,
    id: u64,
}

impl<'a> RosterGuard<'a> {
    fn register(roster: &'a Mutex<Vec<(u64, String)>>, id: u64, addr: String) -> RosterGuard<'a> {
        let mut r = roster.lock().expect("roster poisoned");
        r.retain(|(i, _)| *i != id);
        r.push((id, addr));
        r.sort_by_key(|(id, _)| *id);
        RosterGuard { roster, id }
    }
}

impl Drop for RosterGuard<'_> {
    fn drop(&mut self) {
        let mut r = self.roster.lock().expect("roster poisoned");
        r.retain(|(i, _)| *i != self.id);
    }
}

/// Serves one replica connection: handshake, optional snapshot bootstrap,
/// then the frame stream.
#[allow(clippy::too_many_arguments)]
fn ship_connection(
    stream: TcpStream,
    dir: &Path,
    engine: &SacEngine,
    config: ShipConfig,
    conn_id: u64,
    stop: &AtomicBool,
    roster: &Mutex<Vec<(u64, String)>>,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if ProbeRequest::parse_line(line.trim_end()).is_some() {
        // A leadership probe: answer term + role and hang up.  Anyone
        // serving this endpoint is acting as a primary.
        let reply = ProbeReply {
            term: engine.term(),
            role: "primary".to_string(),
            leader: None,
        };
        writeln!(writer, "{}", reply.encode_line())?;
        return Ok(());
    }
    let Some(request) = ReplicateRequest::parse_line(line.trim_end()) else {
        let hello = ReplicateHello::Error {
            message: "malformed replicate request".to_string(),
        };
        writeln!(writer, "{}", hello.encode_line())?;
        return Ok(());
    };
    if request.term > engine.term() {
        // The replica has observed a newer leadership term than ours: we
        // were superseded while partitioned.  Refusing the stream keeps a
        // zombie primary from feeding stale history to the fleet.
        let hello = ReplicateHello::Error {
            message: format!(
                "superseded: replica observed term {} above this primary's term {}",
                request.term,
                engine.term()
            ),
        };
        writeln!(writer, "{}", hello.encode_line())?;
        return Ok(());
    }
    let _candidate = match (request.replica_id, request.advertise.clone()) {
        (Some(id), Some(addr)) => Some(RosterGuard::register(roster, id, addr)),
        _ => None,
    };

    let (mut seg, mut pos) = if request.snapshot {
        match stable_snapshot(dir)? {
            Some((epoch, bytes, segment)) => {
                let hello = ReplicateHello::Snapshot {
                    epoch,
                    len: bytes.len() as u64,
                    segment,
                    offset: 0,
                    term: engine.term(),
                };
                writeln!(writer, "{}", hello.encode_line())?;
                // Bootstrap bytes ship un-injected: faults target the
                // streaming link, and a mangled bootstrap would only retry
                // the (possibly large) transfer from scratch.
                writer.write_all(&bytes)?;
                (segment, 0)
            }
            None => {
                let hello = ReplicateHello::Error {
                    message: "primary has no snapshot (is it running with a WAL?)".to_string(),
                };
                writeln!(writer, "{}", hello.encode_line())?;
                return Ok(());
            }
        }
    } else {
        let hello = ReplicateHello::Tail {
            segment: request.segment,
            offset: request.offset,
            term: engine.term(),
        };
        writeln!(writer, "{}", hello.encode_line())?;
        (request.segment, request.offset)
    };

    let mut injector = config.faults.map(|plan| FaultInjector::new(plan, conn_id));
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let chunk = match sac_wal::read_tail(dir, seg, pos, config.max_frames) {
            Ok(chunk) => chunk,
            Err(WalError::SnapshotRequired { .. }) => {
                // The replica's position was truncated by a checkpoint:
                // tell it to re-bootstrap, delivered faithfully (it is the
                // recovery signal, not payload).
                ReplFrame::SnapshotRequired.write_to(&mut writer)?;
                return Ok(());
            }
            // A corrupt or unreadable log is the primary's own emergency;
            // dropping the connection lets the replica keep retrying.
            Err(_) => return Ok(()),
        };
        let caught_up = chunk.frames.is_empty();
        for frame in chunk.frames {
            let record = ReplFrame::Record {
                segment: frame.segment,
                end_offset: frame.end_offset,
                crc: frame.crc,
                payload: frame.payload,
            };
            if !send_frame(&mut writer, &record, injector.as_mut())? {
                return Ok(()); // injector cut the connection mid-frame
            }
        }
        seg = chunk.segment;
        pos = chunk.offset;
        let heartbeat = ReplFrame::Heartbeat {
            epoch: engine.epoch(),
            segment: seg,
            offset: pos,
            term: engine.term(),
            lease_ms: config.lease_ms,
            roster: roster.lock().expect("roster poisoned").clone(),
        };
        if !send_frame(&mut writer, &heartbeat, injector.as_mut())? {
            return Ok(());
        }
        if caught_up {
            thread::sleep(config.poll);
        }
    }
}

/// Reads the newest snapshot so that the `(epoch, bytes, resume segment)`
/// triple is mutually consistent even if a checkpoint runs concurrently:
/// the snapshot listing is re-checked after the read, and the whole
/// sequence retried if it moved.
fn stable_snapshot(dir: &Path) -> std::io::Result<Option<(u64, Vec<u8>, u64)>> {
    for _ in 0..16 {
        let Some((epoch, path)) = sac_wal::latest_snapshot(dir)? else {
            return Ok(None);
        };
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            // Raced a checkpoint's cleanup; take the newer snapshot.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let segments = sac_wal::list_segments(dir)?;
        let Some(&oldest) = segments.first() else {
            continue;
        };
        match sac_wal::latest_snapshot(dir)? {
            Some((e, p)) if e == epoch && p == path => return Ok(Some((epoch, bytes, oldest))),
            _ => continue, // a checkpoint landed mid-read; retry
        }
    }
    Ok(None)
}

/// Sends one frame through the fault injector.  Returns `false` when the
/// injector decided to cut the connection (mid-frame truncation).
fn send_frame(
    writer: &mut TcpStream,
    frame: &ReplFrame,
    injector: Option<&mut FaultInjector>,
) -> std::io::Result<bool> {
    let mut bytes = frame.encode();
    let action = match injector {
        Some(injector) => injector.next_action(bytes.len()),
        None => FaultAction::Deliver,
    };
    match action {
        FaultAction::Deliver => writer.write_all(&bytes)?,
        FaultAction::Drop => {}
        FaultAction::Delay(ms) => {
            thread::sleep(Duration::from_millis(ms));
            writer.write_all(&bytes)?;
        }
        FaultAction::Duplicate => {
            writer.write_all(&bytes)?;
            writer.write_all(&bytes)?;
        }
        FaultAction::CorruptByte(i) => {
            // Flip a byte inside a record's payload — never the framing —
            // so the stream stays parseable and the replica's CRC check is
            // what catches the damage.
            if let ReplFrame::Record { payload, .. } = frame {
                if !payload.is_empty() {
                    let header = bytes.len() - payload.len();
                    let at = header + i % payload.len();
                    bytes[at] ^= 0x40;
                }
            }
            writer.write_all(&bytes)?;
        }
        FaultAction::Truncate(n) => {
            let cut = n.min(bytes.len().saturating_sub(1));
            writer.write_all(&bytes[..cut])?;
            writer.flush()?;
            return Ok(false);
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Replica side.
// ---------------------------------------------------------------------------

/// Why a replica failed to boot (or a bootstrap attempt failed).
#[derive(Debug)]
pub enum ReplicaError {
    /// The link itself failed (connect, read, write).
    Io(std::io::Error),
    /// Snapshot or record decoding failed.
    Wal(WalError),
    /// Applying shipped operations to the graph failed.
    Graph(GraphError),
    /// The primary answered with something other than the expected hello.
    Protocol(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Io(e) => write!(f, "replication link: {e}"),
            ReplicaError::Wal(e) => write!(f, "replication stream: {e}"),
            ReplicaError::Graph(e) => write!(f, "replication apply: {e}"),
            ReplicaError::Protocol(m) => write!(f, "replication protocol: {m}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Io(e) => Some(e),
            ReplicaError::Wal(e) => Some(e),
            ReplicaError::Graph(e) => Some(e),
            ReplicaError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for ReplicaError {
    fn from(e: std::io::Error) -> Self {
        ReplicaError::Io(e)
    }
}

impl From<WalError> for ReplicaError {
    fn from(e: WalError) -> Self {
        ReplicaError::Wal(e)
    }
}

impl From<GraphError> for ReplicaError {
    fn from(e: GraphError) -> Self {
        ReplicaError::Graph(e)
    }
}

/// Configuration of a read replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Address of the primary's shipping endpoint (`host:port`).
    pub primary: String,
    /// Contact gap past which the replica reports itself degraded.
    pub staleness: Duration,
    /// Reconnect backoff and per-attempt timeout.
    pub retry: RetryPolicy,
    /// Receive-side fault injection, if armed.
    pub faults: Option<FaultPlan>,
    /// Engine configuration for the replica's serving engine.
    pub engine: EngineConfig,
    /// Seed of the deterministic backoff-jitter stream.
    pub seed: u64,
    /// Connection attempts before [`Replica::boot`] gives up.
    pub boot_attempts: u32,
    /// Stable id announced in the handshake when this replica is a
    /// promotion candidate (`None` = anonymous tailer, never promotes).
    pub replica_id: Option<u64>,
    /// Shipping address this replica would serve on if promoted, broadcast
    /// to its peers via the heartbeat roster.
    pub advertise: Option<String>,
}

impl ReplicaConfig {
    /// A replica of `primary` with default policies: 3 s staleness
    /// threshold, default backoff, no fault injection, no failover
    /// identity.
    pub fn new(primary: impl Into<String>) -> ReplicaConfig {
        ReplicaConfig {
            primary: primary.into(),
            staleness: Duration::from_secs(3),
            retry: RetryPolicy::default(),
            faults: None,
            engine: EngineConfig::default(),
            seed: 0x5AC0_0001,
            boot_attempts: 40,
            replica_id: None,
            advertise: None,
        }
    }
}

/// Shared, lock-free view of a replica's replication state, surfaced by
/// `/stats`, `/healthz` and the redirect error of rejected mutations.
#[derive(Debug)]
pub struct ReplicaStatus {
    /// Believed primary; the failover watchdog re-points it when a peer
    /// wins an election, and the tailer re-reads it on every reconnect.
    primary: Mutex<String>,
    staleness: Duration,
    started: Instant,
    connected: AtomicBool,
    /// Micros since `started` of the last primary contact (record or
    /// heartbeat received).
    last_contact_micros: AtomicU64,
    applied_epoch: AtomicU64,
    primary_epoch: AtomicU64,
    reconnects: AtomicU64,
    records_applied: AtomicU64,
    snapshot_bootstraps: AtomicU64,
    /// Highest leadership term observed on the link.
    term: AtomicU64,
    /// Lease duration granted by the newest heartbeat, ms (0 until the
    /// first lease-bearing heartbeat — failover stays disarmed until then).
    lease_ms: AtomicU64,
    /// Micros since `started` at which the current lease expires.
    lease_until_micros: AtomicU64,
    /// Promotion roster from the newest heartbeat.
    roster: Mutex<Vec<(u64, String)>>,
    /// Set by the failover watchdog after re-pointing `primary`: the new
    /// primary's log coordinates are unrelated to the old one's, so the
    /// next reconnect must bootstrap from a snapshot, not resume a tail.
    bootstrap_requested: AtomicBool,
}

impl ReplicaStatus {
    fn new(primary: String, staleness: Duration) -> ReplicaStatus {
        ReplicaStatus {
            primary: Mutex::new(primary),
            staleness,
            started: Instant::now(),
            connected: AtomicBool::new(false),
            last_contact_micros: AtomicU64::new(0),
            applied_epoch: AtomicU64::new(0),
            primary_epoch: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            snapshot_bootstraps: AtomicU64::new(0),
            term: AtomicU64::new(0),
            lease_ms: AtomicU64::new(0),
            lease_until_micros: AtomicU64::new(0),
            roster: Mutex::new(Vec::new()),
            bootstrap_requested: AtomicBool::new(false),
        }
    }

    fn touch(&self) {
        self.last_contact_micros
            .store(self.started.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    fn since_contact(&self) -> Duration {
        let now = self.started.elapsed().as_micros() as u64;
        Duration::from_micros(now.saturating_sub(self.last_contact_micros.load(Ordering::Relaxed)))
    }

    /// The believed primary's shipping address.
    pub fn primary(&self) -> String {
        self.primary.lock().expect("primary poisoned").clone()
    }

    /// Re-points the believed primary (an elected peer took over); the
    /// tailer picks the new address up on its next reconnect.
    pub fn repoint(&self, primary: String) {
        *self.primary.lock().expect("primary poisoned") = primary;
    }

    /// Highest leadership term observed on the link.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Relaxed)
    }

    fn observe_term(&self, term: u64) {
        self.term.fetch_max(term, Ordering::Relaxed);
    }

    /// Installs a fresh lease from a heartbeat.
    fn grant_lease(&self, lease_ms: u64) {
        self.lease_ms.store(lease_ms, Ordering::Relaxed);
        let until = self.started.elapsed().as_micros() as u64 + lease_ms * 1000;
        self.lease_until_micros.store(until, Ordering::Relaxed);
    }

    /// Lease duration granted by the newest heartbeat (0 = no lease seen
    /// yet; failover stays disarmed).
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms.load(Ordering::Relaxed)
    }

    /// Whether a granted lease has expired: the primary went silent past
    /// the window it promised to heartbeat within.  Always `false` before
    /// the first lease-bearing heartbeat.
    pub fn lease_expired(&self) -> bool {
        let lease = self.lease_ms.load(Ordering::Relaxed);
        if lease == 0 {
            return false;
        }
        let now = self.started.elapsed().as_micros() as u64;
        now > self.lease_until_micros.load(Ordering::Relaxed)
    }

    fn set_roster(&self, roster: Vec<(u64, String)>) {
        *self.roster.lock().expect("roster poisoned") = roster;
    }

    /// The promotion roster from the newest heartbeat: connected candidate
    /// `(replica id, advertised address)` pairs, ascending by id.
    pub fn roster(&self) -> Vec<(u64, String)> {
        self.roster.lock().expect("roster poisoned").clone()
    }

    /// Forces the tailer's next reconnect to bootstrap from a snapshot (the
    /// flag sticks until a bootstrap succeeds).  Called after [`Self::repoint`].
    pub fn request_bootstrap(&self) {
        self.bootstrap_requested.store(true, Ordering::Relaxed);
    }

    /// Disarms the lease until the next lease-bearing heartbeat, so the
    /// failover watchdog acts on an expiry exactly once.
    pub fn disarm_lease(&self) {
        self.lease_ms.store(0, Ordering::Relaxed);
    }

    /// Whether the replication link is currently established.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    /// Whether the replica has gone without primary contact for longer
    /// than its staleness threshold.  A degraded replica keeps serving
    /// reads at its applied epoch; only its health report changes.
    pub fn degraded(&self) -> bool {
        self.since_contact() > self.staleness
    }

    /// Epoch of the replica's served (applied) state.
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch.load(Ordering::Relaxed)
    }

    /// The primary's served epoch as of the last heartbeat.
    pub fn primary_epoch(&self) -> u64 {
        self.primary_epoch.load(Ordering::Relaxed)
    }

    /// How many epochs the replica trails the primary (0 when caught up).
    pub fn lag_epochs(&self) -> u64 {
        self.primary_epoch().saturating_sub(self.applied_epoch())
    }

    /// Records applied since boot.
    pub fn records_applied(&self) -> u64 {
        self.records_applied.load(Ordering::Relaxed)
    }

    /// Reconnect attempts since boot.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Snapshot re-bootstraps since boot (position truncated by a primary
    /// checkpoint while disconnected).
    pub fn snapshot_bootstraps(&self) -> u64 {
        self.snapshot_bootstraps.load(Ordering::Relaxed)
    }

    /// The wire-level stats object for `/stats` and `/healthz`.
    pub fn stats_reply(&self) -> ReplicationStatsReply {
        ReplicationStatsReply {
            primary: self.primary(),
            connected: self.connected(),
            degraded: self.degraded(),
            last_applied_epoch: self.applied_epoch(),
            primary_epoch: self.primary_epoch(),
            lag_epochs: self.lag_epochs(),
            stale_secs: self.since_contact().as_secs(),
            reconnects: self.reconnects(),
            records_applied: self.records_applied(),
            snapshot_bootstraps: self.snapshot_bootstraps(),
            term: self.term(),
        }
    }
}

/// Pre-bound replication instruments in the engine's shared registry.
#[derive(Debug)]
struct ReplicationObs {
    enabled: bool,
    connected: Arc<Gauge>,
    applied_epoch: Arc<Gauge>,
    primary_epoch: Arc<Gauge>,
    lag: Arc<Gauge>,
    records: Arc<Counter>,
    reconnects: Arc<Counter>,
    bootstraps: Arc<Counter>,
}

impl ReplicationObs {
    fn new(engine: &SacEngine) -> ReplicationObs {
        let registry = engine.metrics();
        ReplicationObs {
            enabled: engine.observing(),
            connected: registry.gauge(
                "sac_replication_connected",
                "Whether the replication link is established (0/1)",
                &[],
            ),
            applied_epoch: registry.gauge(
                "sac_replication_last_applied_epoch",
                "Epoch of the replica's applied state",
                &[],
            ),
            primary_epoch: registry.gauge(
                "sac_replication_primary_epoch",
                "Primary epoch as of the last heartbeat",
                &[],
            ),
            lag: registry.gauge(
                "sac_replication_lag_epochs",
                "Epochs the replica trails the primary",
                &[],
            ),
            records: registry.counter(
                "sac_replication_records_applied_total",
                "WAL records applied from the replication stream",
                &[],
            ),
            reconnects: registry.counter(
                "sac_replication_reconnects_total",
                "Replication link reconnect attempts",
                &[],
            ),
            bootstraps: registry.counter(
                "sac_replication_snapshot_bootstraps_total",
                "Snapshot re-bootstraps after checkpoint truncation",
                &[],
            ),
        }
    }
}

/// A running read replica: a serving engine plus the tailer thread that
/// keeps it converged with the primary.
#[derive(Debug)]
pub struct Replica {
    engine: Arc<SacEngine>,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
}

impl Replica {
    /// Boots a replica: connects to the primary (retrying up to
    /// [`ReplicaConfig::boot_attempts`] times), bootstraps from its newest
    /// snapshot, and spawns the tailer thread that applies the record
    /// stream.  Returns once the snapshot state is being served.
    pub fn boot(config: ReplicaConfig) -> Result<Replica, ReplicaError> {
        let status = Arc::new(ReplicaStatus::new(config.primary.clone(), config.staleness));
        let mut attempt = 0u32;
        let (reader, state, engine) = loop {
            match bootstrap(&config, &status) {
                Ok(booted) => break booted,
                Err(e) => {
                    attempt += 1;
                    if attempt >= config.boot_attempts.max(1) {
                        return Err(e);
                    }
                    thread::sleep(config.retry.delay(attempt - 1, config.seed));
                }
            }
        };
        status.connected.store(true, Ordering::Relaxed);
        status.applied_epoch.store(state.applied, Ordering::Relaxed);
        status.primary_epoch.store(state.applied, Ordering::Relaxed);
        status.touch();
        let stop = Arc::new(AtomicBool::new(false));
        let obs = ReplicationObs::new(&engine);
        if obs.enabled {
            obs.connected.set(1);
            obs.applied_epoch.set(state.applied as i64);
            obs.primary_epoch.set(state.applied as i64);
        }
        let ctx = TailerCtx {
            engine: Arc::clone(&engine),
            status: Arc::clone(&status),
            obs,
            config,
            stop: Arc::clone(&stop),
        };
        thread::spawn(move || run_tailer(ctx, reader, state));
        Ok(Replica {
            engine,
            status,
            stop,
        })
    }

    /// The replica's serving engine (read path only; mutations are
    /// rejected at the service layer with a redirect to the primary).
    pub fn engine(&self) -> &Arc<SacEngine> {
        &self.engine
    }

    /// The shared replication status.
    pub fn status(&self) -> &Arc<ReplicaStatus> {
        &self.status
    }

    /// Asks the tailer thread to wind down (it notices within one read
    /// timeout).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Tears the replica down for promotion: stops the tailer and hands
    /// back the serving engine and the shared status.  The engine keeps
    /// serving its applied epoch throughout — promotion wraps it in a
    /// [`crate::LiveEngine`] without a restart.
    pub fn into_parts(self) -> (Arc<SacEngine>, Arc<ReplicaStatus>) {
        self.stop();
        (self.engine, self.status)
    }
}

/// Probes a shipping endpoint for its leadership term and role.  Used by a
/// restarting primary to detect that it was superseded while down (zombie
/// demotion) before it accepts a single write.
pub fn probe(addr: &str, timeout: Duration) -> Result<ProbeReply, ReplicaError> {
    let mut stream = connect(addr, timeout)?;
    writeln!(stream, "{}", ProbeRequest.encode_line())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    ProbeReply::parse_line(line.trim_end()).ok_or_else(|| {
        ReplicaError::Protocol(format!("malformed probe reply: {}", line.trim_end()))
    })
}

/// The tailer's mutable replay state: the incrementally maintained graph
/// mirror plus the exact log position the next record must extend.
struct ReplicaState {
    dynamic: DynamicGraph,
    positions: Vec<Point>,
    /// Resume position: `(segment, offset)` after the last consumed record.
    pos: (u64, u64),
    /// Epoch of the applied state (`engine.epoch()` mirrors this).
    applied: u64,
}

struct TailerCtx {
    engine: Arc<SacEngine>,
    status: Arc<ReplicaStatus>,
    obs: ReplicationObs,
    config: ReplicaConfig,
    stop: Arc<AtomicBool>,
}

/// Why the frame stream ended.
enum StreamEnd {
    /// [`Replica::stop`] was called.
    Stop,
    /// The link broke, a frame was damaged, or the epoch sequence gapped:
    /// reconnect and resume from `state.pos`.
    Reconnect,
    /// The position was truncated by a primary checkpoint: re-bootstrap
    /// from a fresh snapshot.
    SnapshotRequired,
}

fn connect(primary: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let addr = primary
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unresolvable primary"))?;
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

/// Opens a connection to `primary` and runs the handshake; returns the
/// buffered reader (positioned right after the hello line) and the
/// primary's answer.
fn handshake(
    primary: &str,
    config: &ReplicaConfig,
    request: &ReplicateRequest,
) -> Result<(BufReader<TcpStream>, ReplicateHello), ReplicaError> {
    let mut stream = connect(primary, config.retry.attempt_timeout)?;
    writeln!(stream, "{}", request.encode_line())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let hello = ReplicateHello::parse_line(line.trim_end())
        .ok_or_else(|| ReplicaError::Protocol(format!("malformed hello: {}", line.trim_end())))?;
    if let ReplicateHello::Error { message } = &hello {
        return Err(ReplicaError::Protocol(format!(
            "primary refused: {message}"
        )));
    }
    Ok((reader, hello))
}

/// Receives `len` raw snapshot bytes and decodes them through the WAL's
/// snapshot reader (spooled via a temp file; the codec is file-based).
fn receive_snapshot(
    reader: &mut BufReader<TcpStream>,
    len: u64,
) -> Result<sac_wal::SnapshotImage, ReplicaError> {
    static SPOOL: AtomicU64 = AtomicU64::new(0);
    let mut bytes = vec![0u8; len as usize];
    reader.read_exact(&mut bytes)?;
    let path = std::env::temp_dir().join(format!(
        "sac-replica-{}-{}.snapshot",
        std::process::id(),
        SPOOL.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, &bytes)?;
    let image = sac_wal::read_snapshot(&path);
    let _ = std::fs::remove_file(&path);
    Ok(image?)
}

/// What [`state_from_image`] rebuilds from a shipped snapshot image: the
/// replay mirror, positions, the immutable snapshot, its decomposition and
/// the shard map (if the primary served shards).
type RestoredState = (
    DynamicGraph,
    Vec<Point>,
    Arc<SpatialGraph>,
    CoreDecomposition,
    Option<Arc<sac_graph::ShardMap>>,
);

/// Rebuilds the replay mirror and an immutable snapshot from a shipped
/// image, exactly like local recovery does.
fn state_from_image(image: sac_wal::SnapshotImage) -> Result<RestoredState, ReplicaError> {
    let decomposition = CoreDecomposition::from_core_numbers(image.core_numbers);
    let dynamic = DynamicGraph::from_parts(&image.graph, &decomposition);
    let positions = image.positions;
    let snapshot = Arc::new(SpatialGraph::new(dynamic.to_graph(), positions.clone())?);
    let map = image.map.map(Arc::new);
    Ok((dynamic, positions, snapshot, decomposition, map))
}

/// First boot: snapshot handshake, engine construction.
fn bootstrap(
    config: &ReplicaConfig,
    status: &ReplicaStatus,
) -> Result<(BufReader<TcpStream>, ReplicaState, Arc<SacEngine>), ReplicaError> {
    let request = ReplicateRequest {
        term: status.term(),
        replica_id: config.replica_id,
        advertise: config.advertise.clone(),
        ..ReplicateRequest::new(0, 0, true)
    };
    let (mut reader, hello) = handshake(&status.primary(), config, &request)?;
    let ReplicateHello::Snapshot {
        epoch,
        len,
        segment,
        offset,
        term,
    } = hello
    else {
        return Err(ReplicaError::Protocol(format!(
            "expected a snapshot hello, got {hello:?}"
        )));
    };
    if term < status.term() {
        return Err(ReplicaError::Protocol(format!(
            "stale primary: hello term {term} below observed term {}",
            status.term()
        )));
    }
    status.observe_term(term);
    let image = receive_snapshot(&mut reader, len)?;
    if image.epoch != epoch {
        return Err(ReplicaError::Protocol(format!(
            "snapshot epoch {} does not match hello epoch {epoch}",
            image.epoch
        )));
    }
    let (dynamic, positions, snapshot, _, map) = state_from_image(image)?;
    let engine = Arc::new(SacEngine::restored(snapshot, config.engine, map, epoch));
    engine.set_term(status.term());
    let state = ReplicaState {
        dynamic,
        positions,
        pos: (segment, offset),
        applied: epoch.max(1),
    };
    Ok((reader, state, engine))
}

/// The tailer thread: stream frames, apply records, reconnect on damage,
/// re-bootstrap on truncation — forever, until stopped.
fn run_tailer(ctx: TailerCtx, mut reader: BufReader<TcpStream>, mut state: ReplicaState) {
    let mut conn: u64 = 1;
    'serve: loop {
        let end = stream_frames(&ctx, &mut reader, &mut state, conn);
        let mut want_snapshot = match end {
            StreamEnd::Stop => return,
            StreamEnd::SnapshotRequired => true,
            StreamEnd::Reconnect => false,
        };
        ctx.status.connected.store(false, Ordering::Relaxed);
        if ctx.obs.enabled {
            ctx.obs.connected.set(0);
        }
        let mut attempt = 0u32;
        loop {
            if ctx.stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(
                ctx.config
                    .retry
                    .delay(attempt, ctx.config.seed ^ conn.rotate_left(32)),
            );
            attempt += 1;
            conn += 1;
            ctx.status.reconnects.fetch_add(1, Ordering::Relaxed);
            if ctx.obs.enabled {
                ctx.obs.reconnects.inc();
            }
            match reconnect(&ctx, &mut state, want_snapshot) {
                Ok(new_reader) => {
                    reader = new_reader;
                    ctx.status.connected.store(true, Ordering::Relaxed);
                    ctx.status.touch();
                    if ctx.obs.enabled {
                        ctx.obs.connected.set(1);
                    }
                    continue 'serve;
                }
                Err(ReconnectFail::NeedSnapshot) => want_snapshot = true,
                Err(ReconnectFail::TryAgain) => {}
            }
        }
    }
}

/// Reconnect outcomes that keep the retry loop going.
enum ReconnectFail {
    /// The attempt failed outright; back off and retry.
    TryAgain,
    /// The primary reported our position truncated; retry with
    /// `snapshot: true`.
    NeedSnapshot,
}

/// One reconnect attempt: tail resume from `state.pos`, or a snapshot
/// re-bootstrap when the position was truncated.
fn reconnect(
    ctx: &TailerCtx,
    state: &mut ReplicaState,
    want_snapshot: bool,
) -> Result<BufReader<TcpStream>, ReconnectFail> {
    let want_snapshot = want_snapshot || ctx.status.bootstrap_requested.load(Ordering::Relaxed);
    let request = ReplicateRequest {
        term: ctx.status.term(),
        replica_id: ctx.config.replica_id,
        advertise: ctx.config.advertise.clone(),
        ..ReplicateRequest::new(state.pos.0, state.pos.1, want_snapshot)
    };
    // The believed primary is re-read from the status every attempt: the
    // failover watchdog may have re-pointed it at an elected peer.
    let primary = ctx.status.primary();
    let (mut reader, hello) =
        handshake(&primary, &ctx.config, &request).map_err(|_| ReconnectFail::TryAgain)?;
    match hello {
        ReplicateHello::Tail {
            segment,
            offset,
            term,
        } => {
            if term < ctx.status.term() {
                // A fenced zombie still answering on the old address.
                return Err(ReconnectFail::TryAgain);
            }
            ctx.status.observe_term(term);
            ctx.engine.set_term(ctx.status.term());
            state.pos = (segment, offset);
            Ok(reader)
        }
        ReplicateHello::SnapshotRequired { .. } => Err(ReconnectFail::NeedSnapshot),
        ReplicateHello::Snapshot {
            epoch,
            len,
            segment,
            offset,
            term,
        } => {
            if term < ctx.status.term() {
                return Err(ReconnectFail::TryAgain);
            }
            ctx.status.observe_term(term);
            ctx.engine.set_term(ctx.status.term());
            let image = receive_snapshot(&mut reader, len).map_err(|_| ReconnectFail::TryAgain)?;
            if image.epoch != epoch {
                return Err(ReconnectFail::TryAgain);
            }
            // A post-failover bootstrap is authoritative even at or below
            // our applied epoch: the new primary's history is the fleet's
            // history, and anything we applied beyond it (shipped by the
            // dead primary but never reaching the winner) is discarded so
            // the fleet converges bit-identically.
            let forced = ctx.status.bootstrap_requested.load(Ordering::Relaxed);
            if epoch > state.applied || (forced && epoch != state.applied) {
                // The records between our applied epoch and the snapshot
                // were truncated by a primary checkpoint (or the snapshot
                // supersedes our fork): jump to it.
                let (dynamic, positions, snapshot, decomposition, _) =
                    state_from_image(image).map_err(|_| ReconnectFail::TryAgain)?;
                ctx.engine.publish_restored(snapshot, decomposition, epoch);
                state.dynamic = dynamic;
                state.positions = positions;
                state.applied = epoch;
                ctx.status.applied_epoch.store(epoch, Ordering::Relaxed);
                ctx.status
                    .snapshot_bootstraps
                    .fetch_add(1, Ordering::Relaxed);
                if ctx.obs.enabled {
                    ctx.obs.applied_epoch.set(epoch as i64);
                    ctx.obs.bootstraps.inc();
                }
                if ctx.engine.observing() {
                    ctx.engine.events().publish(
                        "replication",
                        format!("snapshot_bootstrap epoch={epoch} segment={segment}"),
                    );
                }
            }
            // A snapshot at or below our applied epoch carries nothing new:
            // keep the richer local state and just resume the stream —
            // records at or below `applied` are skipped on arrival.  Either
            // way the position realigns to this primary's log coordinates,
            // which satisfies any pending post-failover bootstrap request.
            state.pos = (segment, offset);
            ctx.status
                .bootstrap_requested
                .store(false, Ordering::Relaxed);
            Ok(reader)
        }
        ReplicateHello::Error { .. } => Err(ReconnectFail::TryAgain),
    }
}

/// Consumes frames until the stream ends: records are CRC-checked,
/// deduplicated by position, applied in gapless epoch order and published
/// as epochs; heartbeats update staleness/lag and detect silently dropped
/// records.
fn stream_frames(
    ctx: &TailerCtx,
    reader: &mut BufReader<TcpStream>,
    state: &mut ReplicaState,
    conn: u64,
) -> StreamEnd {
    let mut injector = ctx
        .config
        .faults
        .map(|plan| FaultInjector::new(plan, conn ^ 0x8000_0000_0000_0000));
    let mut stalled_heartbeats = 0u32;
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return StreamEnd::Stop;
        }
        let mut frame = match ReplFrame::read_from(reader) {
            Ok(frame) => frame,
            Err(_) => return StreamEnd::Reconnect,
        };
        // Re-check after the blocking read: a promotion in progress must
        // not race this thread into publishing one more epoch.
        if ctx.stop.load(Ordering::SeqCst) {
            return StreamEnd::Stop;
        }
        if let Some(injector) = injector.as_mut() {
            let approx_len = match &frame {
                ReplFrame::Record { payload, .. } => 25 + payload.len(),
                _ => 25,
            };
            match injector.next_action(approx_len) {
                FaultAction::Deliver => {}
                FaultAction::Drop => continue,
                FaultAction::Delay(ms) => thread::sleep(Duration::from_millis(ms)),
                FaultAction::Duplicate => {
                    // Feed the frame through twice; the second pass is
                    // deduplicated by position like any wire duplicate.
                    match process_frame(ctx, state, frame.clone(), &mut stalled_heartbeats) {
                        FrameVerdict::Continue => {}
                        FrameVerdict::End(end) => return end,
                    }
                }
                FaultAction::CorruptByte(i) => {
                    if let ReplFrame::Record { payload, .. } = &mut frame {
                        if !payload.is_empty() {
                            let at = i % payload.len();
                            payload[at] ^= 0x40;
                        }
                    }
                }
                FaultAction::Truncate(_) => return StreamEnd::Reconnect,
            }
        }
        match process_frame(ctx, state, frame, &mut stalled_heartbeats) {
            FrameVerdict::Continue => {}
            FrameVerdict::End(end) => return end,
        }
    }
}

enum FrameVerdict {
    Continue,
    End(StreamEnd),
}

fn process_frame(
    ctx: &TailerCtx,
    state: &mut ReplicaState,
    frame: ReplFrame,
    stalled_heartbeats: &mut u32,
) -> FrameVerdict {
    match frame {
        ReplFrame::Record {
            segment,
            end_offset,
            crc,
            payload,
        } => {
            ctx.status.touch();
            if (segment, end_offset) <= state.pos {
                return FrameVerdict::Continue; // duplicate delivery
            }
            if crc32(&payload) != crc {
                // Damage anywhere between the primary's disk and here:
                // never apply, re-request the record.
                return FrameVerdict::End(StreamEnd::Reconnect);
            }
            let Ok(record) = DeltaRecord::decode_payload(&payload, segment, end_offset) else {
                return FrameVerdict::End(StreamEnd::Reconnect);
            };
            *stalled_heartbeats = 0;
            if record.epoch <= state.applied {
                // Already covered by our snapshot/applied state; the
                // position still advances past it.
                state.pos = (segment, end_offset);
                return FrameVerdict::Continue;
            }
            if record.term < ctx.status.term() {
                // A fenced zombie's write: never apply it.  Reconnecting
                // re-runs the handshake, where the stale primary is refused
                // outright.
                return FrameVerdict::End(StreamEnd::Reconnect);
            }
            ctx.status.observe_term(record.term);
            if record.epoch != state.applied + 1 {
                // A gap means an earlier record was lost (e.g. dropped by
                // the fault injector): resume from the last good position.
                return FrameVerdict::End(StreamEnd::Reconnect);
            }
            match apply_record(ctx, state, &record) {
                Ok(()) => {
                    state.pos = (segment, end_offset);
                    state.applied = record.epoch;
                    ctx.status
                        .applied_epoch
                        .store(record.epoch, Ordering::Relaxed);
                    ctx.status.records_applied.fetch_add(1, Ordering::Relaxed);
                    if ctx.obs.enabled {
                        ctx.obs.applied_epoch.set(record.epoch as i64);
                        ctx.obs.records.inc();
                        ctx.obs.lag.set(ctx.status.lag_epochs() as i64);
                    }
                    FrameVerdict::Continue
                }
                // The shipped ops do not fit our mirror: the states have
                // diverged and only a fresh snapshot can realign them.
                Err(_) => FrameVerdict::End(StreamEnd::SnapshotRequired),
            }
        }
        ReplFrame::Heartbeat {
            epoch,
            segment,
            offset,
            term,
            lease_ms,
            roster,
        } => {
            ctx.status.touch();
            if term < ctx.status.term() {
                // Stale beacon from a fenced zombie: drop the stream.
                return FrameVerdict::End(StreamEnd::Reconnect);
            }
            ctx.status.observe_term(term);
            ctx.engine.set_term(ctx.status.term());
            if lease_ms > 0 {
                ctx.status.grant_lease(lease_ms);
                ctx.status.set_roster(roster);
            }
            ctx.status.primary_epoch.store(epoch, Ordering::Relaxed);
            if ctx.obs.enabled {
                ctx.obs.primary_epoch.set(epoch as i64);
                ctx.obs.lag.set(ctx.status.lag_epochs() as i64);
            }
            if (segment, offset) > state.pos {
                // The primary's tail is ahead of us yet no record arrived:
                // after a few of these in a row the records were lost on
                // the wire — reconnect and re-request from our position.
                *stalled_heartbeats += 1;
                if *stalled_heartbeats >= STALLED_HEARTBEAT_LIMIT {
                    *stalled_heartbeats = 0;
                    return FrameVerdict::End(StreamEnd::Reconnect);
                }
            } else {
                *stalled_heartbeats = 0;
            }
            FrameVerdict::Continue
        }
        ReplFrame::SnapshotRequired => FrameVerdict::End(StreamEnd::SnapshotRequired),
    }
}

/// Applies one record's operations through the same incremental
/// maintenance local recovery uses, then publishes the result as the
/// record's epoch.
fn apply_record(
    ctx: &TailerCtx,
    state: &mut ReplicaState,
    record: &DeltaRecord,
) -> Result<(), ReplicaError> {
    for op in &record.ops {
        match *op {
            WalOp::InsertEdge(u, v) => {
                state.dynamic.insert_edge(u, v)?;
            }
            WalOp::RemoveEdge(u, v) => {
                state.dynamic.remove_edge(u, v)?;
            }
            WalOp::AddVertex(x, y) => {
                state.dynamic.add_vertex();
                state.positions.push(Point::new(x, y));
            }
            WalOp::MoveVertex(v, x, y) => {
                if v as usize >= state.positions.len() {
                    return Err(GraphError::VertexOutOfRange(v).into());
                }
                state.positions[v as usize] = Point::new(x, y);
            }
        }
    }
    let snapshot = SpatialGraph::new(state.dynamic.to_graph(), state.positions.clone())?;
    // The WAL record does not carry the commit's dirty-k analysis, so the
    // conservative invalidation (drop every cached index) keeps the
    // replica's answers trivially equal to a cold engine's.
    ctx.engine.publish_update(
        Arc::new(snapshot),
        state.dynamic.decomposition(),
        u32::MAX,
        None,
    );
    Ok(())
}
