//! `sac-http` — the HTTP/1.1 SAC serving front end: a hand-rolled
//! `std::net::TcpListener` server that is a thin shell around the shared
//! [`sac_live::SacService`], speaking the same `sac-proto` protocol as
//! `sac-serve` (payloads are byte-identical).
//!
//! ```text
//! sac-http [OPTIONS]
//!
//! Graph source, serving, durability and replication options: identical to
//! sac-serve (including `--wal-dir`/`--wal-sync`/`--checkpoint-every`,
//! `--ship-addr`/`--replicate-from`/`--staleness-ms`/`--fault-inject` and
//! the failover flags `--lease-ms`/`--replica-id`/`--advertise`/
//! `--failover-dir`/`--peer`), plus
//!   --addr <host:port>   listener address (default: 127.0.0.1:7878)
//!
//! Routes:
//!   POST /api            body = one protocol JSON document
//!   GET  /stats          shorthand for {"cmd":"stats"}
//!   GET  /metrics        Prometheus text exposition of the whole stack
//!   GET  /healthz        liveness probe (epoch, shards, uptime, WAL and
//!                        replication state; "degraded" on a stale replica)
//!
//! With `--wal-dir`, SIGINT/SIGTERM flush the log and write a
//! clean-shutdown marker before the process exits.
//!
//! Example:
//!   $ sac-http --preset brightkite --scale 0.02 --warm 4 &
//!   $ curl -s -d '{"q":17,"k":4,"ratio":1.5}' http://127.0.0.1:7878/api
//! ```

use sac_live::{cli, http};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args, true) {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("sac-http: {message}");
            }
            eprintln!("{}", cli::usage("sac-http", true));
            return ExitCode::from(2);
        }
    };
    let service = match opts.build_service() {
        Ok(service) => Arc::new(service),
        Err(message) => {
            eprintln!("sac-http: {message}");
            return ExitCode::FAILURE;
        }
    };
    if opts.wal_dir.is_some() {
        let flush = Arc::clone(&service);
        sac_wal::signals::on_shutdown(Box::new(move || match flush.live().shutdown_flush() {
            Ok(true) => eprintln!("sac-http: WAL flushed, clean-shutdown marker written"),
            Ok(false) => {}
            Err(e) => eprintln!("sac-http: WAL flush failed on shutdown: {e}"),
        }));
    }
    // A promotion-capable replica watches its lease; the handle keeps the
    // watchdog alive for the life of the process.
    let _failover = opts
        .failover_config()
        .and_then(|config| sac_live::failover::arm(Arc::clone(&service), config));
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("sac-http: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sac-http: listening on http://{}", opts.addr);
    match http::serve_http_with(service, listener, opts.http_config()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sac-http: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
