//! `sac-serve` — the line-delimited-JSON SAC serving front end over
//! stdin/stdout: a thin shell around the shared [`sac_live::SacService`],
//! speaking the `sac-proto` protocol.
//!
//! ```text
//! sac-serve [OPTIONS]
//!
//! Graph source (pick one):
//!   --preset <name>      surrogate dataset: brightkite, gowalla, flickr,
//!                        foursquare, syn1, syn2          (default: brightkite)
//!   --scale <f>          preset scale factor in (0, 1]   (default: 0.02)
//!   --seed <n>           preset generator seed
//!   --edges <file> --locations <file>
//!                        load a SNAP-style edge list + location file
//!
//! Serving:
//!   --threads <n>        worker threads for batched requests (default: 4)
//!   --warm <k1,k2,...>   pre-build the k-core indexes for these k
//!   --shards <n>         serve n spatial shards (default: 0 = unsharded)
//!   --slow-query-micros <n>
//!                        slow-query log threshold (default: 10000; 0 = off)
//!   --no-members         omit member lists from responses (ids/sizes only)
//!   --no-timing          omit wall-clock fields (deterministic output)
//!
//! Protocol: one JSON document per input line (see the `sac-proto` crate
//! docs); every non-blank input line produces exactly one output line.
//! Mutations maintain the k-core structure incrementally; `commit` swaps in a
//! new snapshot epoch while in-flight queries finish on the old one.  The
//! same protocol is served over HTTP by the `sac-http` binary.
//! ```

use sac_live::{cli, ldjson};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args, false) {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("sac-serve: {message}");
            }
            eprintln!("{}", cli::usage("sac-serve", false));
            return ExitCode::from(2);
        }
    };
    let service = match opts.build_service() {
        Ok(service) => service,
        Err(message) => {
            eprintln!("sac-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    let out = std::io::BufWriter::new(stdout.lock());
    match ldjson::serve(&service, stdin, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sac-serve: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
