//! `sac-serve` — a line-delimited-JSON SAC query server over stdin/stdout,
//! with live graph updates.
//!
//! ```text
//! sac-serve [OPTIONS]
//!
//! Graph source (pick one):
//!   --preset <name>      surrogate dataset: brightkite, gowalla, flickr,
//!                        foursquare, syn1, syn2          (default: brightkite)
//!   --scale <f>          preset scale factor in (0, 1]   (default: 0.02)
//!   --seed <n>           preset generator seed
//!   --edges <file> --locations <file>
//!                        load a SNAP-style edge list + location file
//!
//! Serving:
//!   --threads <n>        worker threads for batched requests (default: 4)
//!   --warm <k1,k2,...>   pre-build the k-core indexes for these k
//!   --no-members         omit member lists from responses (ids/sizes only)
//!
//! Protocol: one JSON value per input line.
//!   {"id":1,"q":17,"k":4}                        → one query, default budget
//!   {"id":2,"q":17,"k":4,"ratio":1.5,"tier":"interactive","theta":0.25}
//!   [{...},{...}]                                → a batch, fanned across threads
//!   {"cmd":"stats"} | {"cmd":"warm","ks":[2,4]} | {"cmd":"core","q":17,"k":4}
//!   {"cmd":"add_edge","u":17,"v":23}             → live updates (buffered...
//!   {"cmd":"remove_edge","u":17,"v":23}
//!   {"cmd":"add_vertex","x":0.25,"y":0.75}
//!   {"cmd":"commit"}                             → ...until published here)
//!   {"cmd":"quit"}
//! Every input line produces exactly one output line.  Mutations maintain the
//! k-core structure incrementally; `commit` swaps in a new snapshot epoch while
//! in-flight queries finish on the old one.
//! ```

use sac_data::{DatasetKind, DatasetSpec};
use sac_engine::json::{obj, Json};
use sac_engine::{LatencyTier, QueryBudget, SacEngine, SacRequest, SacResponse};
use sac_graph::io::load_spatial_graph;
use sac_live::LiveEngine;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    preset: DatasetKind,
    scale: f64,
    seed: Option<u64>,
    edges: Option<String>,
    locations: Option<String>,
    threads: usize,
    warm: Vec<u32>,
    members: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preset: DatasetKind::Brightkite,
            scale: 0.02,
            seed: None,
            edges: None,
            locations: None,
            threads: 4,
            warm: Vec::new(),
            members: true,
        }
    }
}

fn parse_preset(name: &str) -> Option<DatasetKind> {
    match name.to_ascii_lowercase().as_str() {
        "brightkite" => Some(DatasetKind::Brightkite),
        "gowalla" => Some(DatasetKind::Gowalla),
        "flickr" => Some(DatasetKind::Flickr),
        "foursquare" => Some(DatasetKind::Foursquare),
        "syn1" => Some(DatasetKind::Syn1),
        "syn2" => Some(DatasetKind::Syn2),
        _ => None,
    }
}

fn print_usage() {
    eprintln!(
        "usage: sac-serve [--preset NAME] [--scale F] [--seed N] \
         [--edges FILE --locations FILE] [--threads N] [--warm K1,K2] [--no-members]"
    );
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--preset" => {
                let name = value("--preset")?;
                opts.preset =
                    parse_preset(&name).ok_or_else(|| format!("unknown preset '{name}'"))?;
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0 && *s <= 1.0)
                    .ok_or("--scale must be in (0, 1]")?;
            }
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer")?,
                );
            }
            "--edges" => opts.edges = Some(value("--edges")?),
            "--locations" => opts.locations = Some(value("--locations")?),
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse::<usize>()
                    .ok()
                    .filter(|t| *t >= 1)
                    .ok_or("--threads must be a positive integer")?;
            }
            "--warm" => {
                for part in value("--warm")?.split(',') {
                    opts.warm.push(
                        part.trim()
                            .parse()
                            .map_err(|_| format!("bad --warm value '{part}'"))?,
                    );
                }
            }
            "--no-members" => opts.members = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.edges.is_some() != opts.locations.is_some() {
        return Err("--edges and --locations must be given together".into());
    }
    Ok(opts)
}

/// Decodes one request object into a [`SacRequest`].
fn decode_request(value: &Json, fallback_id: u64) -> Result<SacRequest, String> {
    let q = value
        .get("q")
        .and_then(Json::as_u64)
        .ok_or("missing or invalid field 'q'")?;
    let k = value
        .get("k")
        .and_then(Json::as_u64)
        .ok_or("missing or invalid field 'k'")?;
    if q > u32::MAX as u64 || k > u32::MAX as u64 {
        return Err("'q' and 'k' must fit in 32 bits".into());
    }
    let id = value
        .get("id")
        .and_then(Json::as_u64)
        .unwrap_or(fallback_id);
    let mut budget = QueryBudget::default();
    if let Some(ratio) = value.get("ratio") {
        budget.max_ratio = ratio.as_f64().ok_or("field 'ratio' must be a number")?;
    }
    if let Some(tier) = value.get("tier") {
        let name = tier.as_str().ok_or("field 'tier' must be a string")?;
        budget.tier = LatencyTier::parse(name)
            .ok_or_else(|| format!("unknown tier '{name}' (interactive|standard|batch)"))?;
    }
    match value.get("theta") {
        None => {}
        Some(theta) if theta.is_null() => {}
        Some(theta) => {
            budget.theta = Some(theta.as_f64().ok_or("field 'theta' must be a number")?);
        }
    }
    Ok(SacRequest {
        id,
        q: q as u32,
        k: k as u32,
        budget,
    })
}

/// Encodes one engine response as a JSON line.
fn encode_response(response: &SacResponse, include_members: bool) -> Json {
    let mut fields = vec![
        ("id", Json::Num(response.id as f64)),
        ("q", Json::Num(response.q as f64)),
        ("k", Json::Num(response.k as f64)),
        ("plan", Json::Str(response.plan.label())),
    ];
    match &response.outcome {
        Err(e) => {
            fields.insert(0, ("ok", Json::Bool(false)));
            fields.push(("error", Json::Str(e.to_string())));
        }
        Ok(None) => {
            fields.insert(0, ("ok", Json::Bool(true)));
            fields.push(("feasible", Json::Bool(false)));
        }
        Ok(Some(community)) => {
            fields.insert(0, ("ok", Json::Bool(true)));
            fields.push(("feasible", Json::Bool(true)));
            fields.push(("size", Json::Num(community.len() as f64)));
            fields.push(("radius", Json::Num(community.radius())));
            fields.push((
                "center",
                Json::Arr(vec![
                    Json::Num(community.mcc.center.x),
                    Json::Num(community.mcc.center.y),
                ]),
            ));
            if include_members {
                fields.push((
                    "members",
                    Json::Arr(
                        community
                            .members()
                            .iter()
                            .map(|&v| Json::Num(v as f64))
                            .collect(),
                    ),
                ));
            }
        }
    }
    fields.push(("micros", Json::Num(response.micros as f64)));
    fields.push(("cache_hit", Json::Bool(response.cache_hit)));
    obj(fields)
}

fn error_line(message: impl Into<String>) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// Handles an admin command; returns `None` to quit.
fn handle_command(
    live: &LiveEngine,
    cmd: &str,
    value: &Json,
    include_members: bool,
) -> Option<Json> {
    let engine: &SacEngine = live.engine();
    match cmd {
        "quit" | "shutdown" => None,
        "stats" => {
            let stats = engine.stats();
            let graph = engine.snapshot();
            Some(obj(vec![
                ("ok", Json::Bool(true)),
                ("vertices", Json::Num(graph.num_vertices() as f64)),
                ("edges", Json::Num(graph.num_edges() as f64)),
                ("epoch", Json::Num(stats.epoch as f64)),
                ("epochs_published", Json::Num(stats.epochs_published as f64)),
                ("pending_mutations", Json::Num(live.pending() as f64)),
                ("queries", Json::Num(stats.queries as f64)),
                (
                    "infeasible_fast_path",
                    Json::Num(stats.infeasible_fast_path as f64),
                ),
                ("errors", Json::Num(stats.errors as f64)),
                (
                    "decomp_hits",
                    Json::Num(stats.cache.decomposition.hits as f64),
                ),
                (
                    "decomp_misses",
                    Json::Num(stats.cache.decomposition.misses as f64),
                ),
                (
                    "component_hits",
                    Json::Num(stats.cache.components.hits as f64),
                ),
                (
                    "component_misses",
                    Json::Num(stats.cache.components.misses as f64),
                ),
                (
                    "components_carried",
                    Json::Num(stats.components_carried as f64),
                ),
                (
                    "components_invalidated",
                    Json::Num(stats.components_invalidated as f64),
                ),
            ]))
        }
        "add_edge" | "remove_edge" => {
            let (Some(u), Some(v)) = (
                value.get("u").and_then(Json::as_u64),
                value.get("v").and_then(Json::as_u64),
            ) else {
                return Some(error_line(format!(
                    "'{cmd}' needs numeric fields 'u' and 'v'"
                )));
            };
            if u > u32::MAX as u64 || v > u32::MAX as u64 {
                return Some(error_line("'u' and 'v' must fit in 32 bits"));
            }
            let result = if cmd == "add_edge" {
                live.add_edge(u as u32, v as u32)
            } else {
                live.remove_edge(u as u32, v as u32)
            };
            Some(match result {
                Err(e) => error_line(e.to_string()),
                Ok(change) => obj(vec![
                    ("ok", Json::Bool(true)),
                    ("applied", Json::Bool(change.applied)),
                    ("cores_changed", Json::Num(change.changed.len() as f64)),
                    ("pending", Json::Num(live.pending() as f64)),
                ]),
            })
        }
        "add_vertex" => {
            let (Some(x), Some(y)) = (
                value.get("x").and_then(Json::as_f64),
                value.get("y").and_then(Json::as_f64),
            ) else {
                return Some(error_line("'add_vertex' needs numeric fields 'x' and 'y'"));
            };
            Some(match live.add_vertex(sac_geom::Point::new(x, y)) {
                Err(e) => error_line(e.to_string()),
                Ok(vertex) => obj(vec![
                    ("ok", Json::Bool(true)),
                    ("vertex", Json::Num(vertex as f64)),
                    ("pending", Json::Num(live.pending() as f64)),
                ]),
            })
        }
        "commit" => Some(match live.commit() {
            Err(e) => error_line(e.to_string()),
            Ok(report) => obj(vec![
                ("ok", Json::Bool(true)),
                ("epoch", Json::Num(report.epoch as f64)),
                ("mutations", Json::Num(report.mutations as f64)),
                ("edges_inserted", Json::Num(report.edges_inserted as f64)),
                ("edges_removed", Json::Num(report.edges_removed as f64)),
                ("vertices_added", Json::Num(report.vertices_added as f64)),
                ("cores_changed", Json::Num(report.cores_changed as f64)),
                ("dirty_up_to", Json::Num(report.dirty_up_to as f64)),
                (
                    "components_carried",
                    Json::Num(report.components_carried as f64),
                ),
                (
                    "components_invalidated",
                    Json::Num(report.components_invalidated as f64),
                ),
                ("micros", Json::Num(report.micros as f64)),
            ]),
        }),
        "warm" => {
            let Some(ks) = value
                .get("ks")
                .and_then(Json::as_array)
                .map(|items| {
                    items
                        .iter()
                        .map(|item| {
                            item.as_u64()
                                .filter(|&k| k <= u32::MAX as u64)
                                .map(|k| k as u32)
                        })
                        .collect::<Option<Vec<u32>>>()
                })
                .unwrap_or(Some(Vec::new()))
            else {
                return Some(error_line(
                    "'ks' entries must be integers fitting in 32 bits",
                ));
            };
            engine.warm(&ks);
            Some(obj(vec![
                ("ok", Json::Bool(true)),
                ("warmed", Json::Num(ks.len() as f64)),
            ]))
        }
        "core" => {
            let (Some(q), Some(k)) = (
                value.get("q").and_then(Json::as_u64),
                value.get("k").and_then(Json::as_u64),
            ) else {
                return Some(error_line("'core' needs numeric fields 'q' and 'k'"));
            };
            if q > u32::MAX as u64 || k > u32::MAX as u64 {
                return Some(error_line("'q' and 'k' must fit in 32 bits"));
            }
            match engine.connected_core(q as u32, k as u32) {
                None => Some(obj(vec![
                    ("ok", Json::Bool(true)),
                    ("feasible", Json::Bool(false)),
                ])),
                Some(members) => {
                    let mut fields = vec![
                        ("ok", Json::Bool(true)),
                        ("feasible", Json::Bool(true)),
                        ("size", Json::Num(members.len() as f64)),
                    ];
                    if include_members {
                        fields.push((
                            "members",
                            Json::Arr(members.iter().map(|&v| Json::Num(v as f64)).collect()),
                        ));
                    }
                    Some(obj(fields))
                }
            }
        }
        other => Some(error_line(format!("unknown command '{other}'"))),
    }
}

fn serve(live: &LiveEngine, opts: &Options) -> std::io::Result<()> {
    let engine: &SacEngine = live.engine();
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in stdin.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match Json::parse(&line) {
            Err(e) => error_line(e.to_string()),
            Ok(value) => {
                if let Some(cmd) = value.get("cmd").and_then(Json::as_str) {
                    match handle_command(live, cmd, &value, opts.members) {
                        Some(reply) => reply,
                        None => break,
                    }
                } else if let Some(items) = value.as_array() {
                    // A batch: decode all, fan across the worker pool.
                    match items
                        .iter()
                        .enumerate()
                        .map(|(i, item)| decode_request(item, i as u64))
                        .collect::<Result<Vec<_>, _>>()
                    {
                        Err(e) => error_line(e),
                        Ok(requests) => {
                            let responses = engine.execute_batch(&requests, opts.threads);
                            Json::Arr(
                                responses
                                    .iter()
                                    .map(|r| encode_response(r, opts.members))
                                    .collect(),
                            )
                        }
                    }
                } else {
                    match decode_request(&value, 0) {
                        Err(e) => error_line(e),
                        Ok(request) => encode_response(&engine.execute(&request), opts.members),
                    }
                }
            }
        };
        writeln!(out, "{reply}")?;
        out.flush()?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("sac-serve: {message}");
            }
            print_usage();
            return ExitCode::from(2);
        }
    };

    let graph = if let (Some(edges), Some(locations)) = (&opts.edges, &opts.locations) {
        match load_spatial_graph(edges, locations) {
            Ok(graph) => graph,
            Err(e) => {
                eprintln!("sac-serve: failed to load graph: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut spec = DatasetSpec::scaled(opts.preset, opts.scale);
        if let Some(seed) = opts.seed {
            spec = spec.with_seed(seed);
        }
        spec.generate()
    };

    eprintln!(
        "sac-serve: snapshot ready ({} vertices, {} edges), {} worker threads",
        graph.num_vertices(),
        graph.num_edges(),
        opts.threads
    );
    let engine = Arc::new(SacEngine::new(graph));
    if !opts.warm.is_empty() {
        engine.warm(&opts.warm);
        eprintln!("sac-serve: warmed k-core indexes for k = {:?}", opts.warm);
    }
    let live = LiveEngine::new(engine);

    match serve(&live, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sac-serve: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
