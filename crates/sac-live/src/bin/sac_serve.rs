//! `sac-serve` — the line-delimited-JSON SAC serving front end over
//! stdin/stdout: a thin shell around the shared [`sac_live::SacService`],
//! speaking the `sac-proto` protocol.
//!
//! ```text
//! sac-serve [OPTIONS]
//!
//! Graph source (pick one):
//!   --preset <name>      surrogate dataset: brightkite, gowalla, flickr,
//!                        foursquare, syn1, syn2          (default: brightkite)
//!   --scale <f>          preset scale factor in (0, 1]   (default: 0.02)
//!   --seed <n>           preset generator seed
//!   --edges <file> --locations <file>
//!                        load a SNAP-style edge list + location file
//!
//! Serving:
//!   --threads <n>        worker threads for batched requests (default: 4)
//!   --warm <k1,k2,...>   pre-build the k-core indexes for these k
//!   --shards <n>         serve n spatial shards (default: 0 = unsharded)
//!   --slow-query-micros <n>
//!                        slow-query log threshold (default: 10000; 0 = off)
//!   --no-members         omit member lists from responses (ids/sizes only)
//!   --no-timing          omit wall-clock fields (deterministic output)
//!
//! Durability:
//!   --wal-dir <dir>      write-ahead log directory; when it already holds
//!                        WAL state, boot recovers from it instead of
//!                        building the dataset graph
//!   --wal-sync <p>       fsync policy: always | never | N (every N commits)
//!   --checkpoint-every <n>
//!                        snapshot checkpoint cadence in commits
//!                        (default: 64; 0 = manual `checkpoint` command only)
//!
//! Replication:
//!   --ship-addr <host:port>
//!                        ship the WAL to read replicas on this address
//!                        (requires --wal-dir)
//!   --replicate-from <host:port>
//!                        boot as a read replica of this primary: bootstrap
//!                        from its snapshot, tail its log, serve reads at
//!                        the applied epoch (mutations get a redirect;
//!                        conflicts with --wal-dir)
//!   --staleness-ms <n>   degrade health after this long without primary
//!                        contact (default: 3000)
//!   --lease-ms <n>       leadership lease stamped into shipped heartbeats
//!                        (default: 1000; must stay below --staleness-ms)
//!   --replica-id <n> --advertise <host:port> --failover-dir <dir>
//!                        stand for promotion: when the lease expires, the
//!                        lowest connected id promotes itself in place
//!   --peer <host:port>   probe this peer before serving writes; a peer
//!                        leading at a higher term demotes this restarted
//!                        primary to its replica (repeatable)
//!   --fault-inject <spec>
//!                        inject replication-link faults, e.g.
//!                        seed=7,drop=0.1,dup=0.05,corrupt=0.05,
//!                        truncate=0.02,delay=0.1:5 (testing)
//!
//! Protocol: one JSON document per input line (see the `sac-proto` crate
//! docs); every non-blank input line produces exactly one output line.
//! Mutations maintain the k-core structure incrementally; `commit` swaps in a
//! new snapshot epoch while in-flight queries finish on the old one.  The
//! same protocol is served over HTTP by the `sac-http` binary.  With
//! `--wal-dir`, SIGINT/SIGTERM (and end of input) flush the log and leave a
//! clean-shutdown marker so the next boot skips torn-tail scanning.
//! ```

use sac_live::{cli, ldjson};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args, false) {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("sac-serve: {message}");
            }
            eprintln!("{}", cli::usage("sac-serve", false));
            return ExitCode::from(2);
        }
    };
    let service = match opts.build_service() {
        Ok(service) => Arc::new(service),
        Err(message) => {
            eprintln!("sac-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    if opts.wal_dir.is_some() {
        let flush = Arc::clone(&service);
        sac_wal::signals::on_shutdown(Box::new(move || match flush.live().shutdown_flush() {
            Ok(true) => eprintln!("sac-serve: WAL flushed, clean-shutdown marker written"),
            Ok(false) => {}
            Err(e) => eprintln!("sac-serve: WAL flush failed on shutdown: {e}"),
        }));
    }
    // A promotion-capable replica watches its lease; the handle keeps the
    // watchdog alive for the life of the process.
    let _failover = opts
        .failover_config()
        .and_then(|config| sac_live::failover::arm(Arc::clone(&service), config));
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    let out = std::io::BufWriter::new(stdout.lock());
    let served = ldjson::serve(service.as_ref(), stdin, out);
    // End of input (or `quit`) is also an orderly exit: seal the log.
    if let Err(e) = service.live().shutdown_flush() {
        eprintln!("sac-serve: WAL flush failed on exit: {e}");
        return ExitCode::FAILURE;
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sac-serve: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
