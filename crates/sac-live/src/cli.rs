//! Shared command-line plumbing for the serving binaries (`sac-serve`,
//! `sac-http`): graph-source selection, service tunables, and the listener
//! address for the HTTP front end.

use crate::failover::{find_superseding_primary, FailoverConfig};
use crate::http::HttpConfig;
use crate::replication::{spawn_shipper, Replica, ReplicaConfig, ShipConfig};
use crate::{Durability, FaultPlan, LiveEngine, SacService, ServiceConfig, SyncPolicy};
use sac_data::{DatasetKind, DatasetSpec};
use sac_engine::{EngineConfig, SacEngine};
use sac_graph::io::load_spatial_graph;
use sac_graph::SpatialGraph;
use sac_proto::EncodeOptions;
use std::sync::Arc;
use std::time::Duration;

/// Parsed options shared by the serving binaries.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Surrogate dataset preset (ignored when `edges`/`locations` are set).
    pub preset: DatasetKind,
    /// Preset scale factor in `(0, 1]`.
    pub scale: f64,
    /// Preset generator seed.
    pub seed: Option<u64>,
    /// SNAP-style edge-list path (paired with `locations`).
    pub edges: Option<String>,
    /// Location-file path (paired with `edges`).
    pub locations: Option<String>,
    /// Worker threads for batched requests.
    pub threads: usize,
    /// Pre-build the k-core indexes for these `k`.
    pub warm: Vec<u32>,
    /// Include member lists in responses.
    pub members: bool,
    /// Include timing fields in responses (disable for deterministic,
    /// byte-comparable output).
    pub timing: bool,
    /// Number of spatial shards the engine serves (`0` = unsharded).
    pub shards: usize,
    /// Slow-query capture threshold in microseconds (`Some(0)` disables the
    /// slow log; `None` keeps the engine default).
    pub slow_query_micros: Option<u64>,
    /// Slow-query ring capacity (`None` keeps the engine default).
    pub slowlog_capacity: Option<usize>,
    /// Head-sample a trace tree every N queries (`Some(0)` disables
    /// sampling; `None` keeps the engine default).
    pub trace_sample_every: Option<u64>,
    /// Write-ahead-log directory (`None` = no durability).  When the
    /// directory already holds WAL state, boot *recovers* from it instead of
    /// building the dataset graph.
    pub wal_dir: Option<String>,
    /// WAL fsync policy (`always`, `never`, or every N commits).
    pub wal_sync: SyncPolicy,
    /// Automatic checkpoint cadence in commits (`0` = manual only).
    pub checkpoint_every: u64,
    /// Boot as a read replica of this primary shipping address
    /// (conflicts with `--wal-dir`: a replica has no local WAL).
    pub replicate_from: Option<String>,
    /// Address the primary ships its WAL on (requires `--wal-dir`).
    pub ship_addr: Option<String>,
    /// Replica staleness threshold in milliseconds: without primary
    /// contact for longer, `/healthz` reports `degraded`.
    pub staleness_ms: u64,
    /// Leadership lease stamped into shipped heartbeats, in milliseconds
    /// (must stay below `staleness_ms`: a replica should degrade only
    /// *after* it had the chance to fail over).
    pub lease_ms: u64,
    /// Stable promotion-candidate id announced to the primary
    /// (with `--advertise` and `--failover-dir`; replicas only).
    pub replica_id: Option<u64>,
    /// Address this replica would ship from if promoted.
    pub advertise: Option<String>,
    /// Directory a promotion seeds the fresh primary WAL into.
    pub failover_dir: Option<String>,
    /// Peer shipping addresses a restarting primary probes before serving:
    /// a peer leading at a higher term demotes this node to its replica.
    pub peers: Vec<String>,
    /// Replication-link fault injection plan (testing; also settable via
    /// the `SAC_REPL_FAULTS` environment variable).
    pub faults: Option<FaultPlan>,
    /// Listener address (`sac-http` only).
    pub addr: String,
    /// Largest HTTP request body accepted, in bytes (`sac-http` only).
    pub max_body_bytes: usize,
    /// Per-request HTTP read timeout in milliseconds; `0` disables it
    /// (`sac-http` only).
    pub read_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            preset: DatasetKind::Brightkite,
            scale: 0.02,
            seed: None,
            edges: None,
            locations: None,
            threads: 4,
            warm: Vec::new(),
            members: true,
            timing: true,
            shards: 0,
            slow_query_micros: None,
            slowlog_capacity: None,
            trace_sample_every: None,
            wal_dir: None,
            wal_sync: SyncPolicy::Always,
            checkpoint_every: 64,
            replicate_from: None,
            ship_addr: None,
            staleness_ms: 3000,
            lease_ms: 1000,
            replica_id: None,
            advertise: None,
            failover_dir: None,
            peers: Vec::new(),
            faults: None,
            addr: "127.0.0.1:7878".to_string(),
            max_body_bytes: HttpConfig::default().max_body_bytes,
            read_timeout_ms: HttpConfig::default()
                .read_timeout
                .map_or(0, |t| t.as_millis() as u64),
        }
    }
}

fn parse_preset(name: &str) -> Option<DatasetKind> {
    match name.to_ascii_lowercase().as_str() {
        "brightkite" => Some(DatasetKind::Brightkite),
        "gowalla" => Some(DatasetKind::Gowalla),
        "flickr" => Some(DatasetKind::Flickr),
        "foursquare" => Some(DatasetKind::Foursquare),
        "syn1" => Some(DatasetKind::Syn1),
        "syn2" => Some(DatasetKind::Syn2),
        _ => None,
    }
}

/// The usage line for `binary` (the HTTP-only options are shown only when
/// accepted).
pub fn usage(binary: &str, with_addr: bool) -> String {
    let addr = if with_addr {
        " [--addr HOST:PORT] [--max-body BYTES] [--read-timeout-ms N]"
    } else {
        ""
    };
    format!(
        "usage: {binary} [--preset NAME] [--scale F] [--seed N] \
         [--edges FILE --locations FILE] [--threads N] [--warm K1,K2] \
         [--shards N] [--slow-query-micros N] [--slowlog-capacity N] \
         [--trace-sample-every N] [--wal-dir DIR] [--wal-sync always|never|N] \
         [--checkpoint-every N] [--ship-addr HOST:PORT] \
         [--replicate-from HOST:PORT] [--staleness-ms N] [--lease-ms N] \
         [--replica-id N --advertise HOST:PORT --failover-dir DIR] \
         [--peer HOST:PORT]... [--fault-inject SPEC] \
         [--no-members] [--no-timing]{addr}"
    )
}

/// Parses the shared serving options; `with_addr` additionally accepts
/// `--addr` (the HTTP listener).  An empty error message means "help was
/// requested".
pub fn parse_args(args: &[String], with_addr: bool) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--preset" => {
                let name = value("--preset")?;
                opts.preset =
                    parse_preset(&name).ok_or_else(|| format!("unknown preset '{name}'"))?;
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0 && *s <= 1.0)
                    .ok_or("--scale must be in (0, 1]")?;
            }
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer")?,
                );
            }
            "--edges" => opts.edges = Some(value("--edges")?),
            "--locations" => opts.locations = Some(value("--locations")?),
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse::<usize>()
                    .ok()
                    .filter(|t| *t >= 1)
                    .ok_or("--threads must be a positive integer")?;
            }
            "--warm" => {
                for part in value("--warm")?.split(',') {
                    opts.warm.push(
                        part.trim()
                            .parse()
                            .map_err(|_| format!("bad --warm value '{part}'"))?,
                    );
                }
            }
            "--no-members" => opts.members = false,
            "--no-timing" => opts.timing = false,
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse::<usize>()
                    .map_err(|_| "--shards must be a non-negative integer")?;
            }
            "--slow-query-micros" => {
                opts.slow_query_micros = Some(
                    value("--slow-query-micros")?
                        .parse::<u64>()
                        .map_err(|_| "--slow-query-micros must be a non-negative integer")?,
                );
            }
            "--slowlog-capacity" => {
                opts.slowlog_capacity = Some(
                    value("--slowlog-capacity")?
                        .parse::<usize>()
                        .ok()
                        .filter(|c| *c >= 1)
                        .ok_or("--slowlog-capacity must be a positive integer")?,
                );
            }
            "--trace-sample-every" => {
                opts.trace_sample_every = Some(
                    value("--trace-sample-every")?
                        .parse::<u64>()
                        .map_err(|_| "--trace-sample-every must be a non-negative integer")?,
                );
            }
            "--wal-dir" => opts.wal_dir = Some(value("--wal-dir")?),
            "--wal-sync" => {
                let policy = value("--wal-sync")?;
                opts.wal_sync = SyncPolicy::parse(&policy)
                    .ok_or_else(|| format!("bad --wal-sync value '{policy}'"))?;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse::<u64>()
                    .map_err(|_| "--checkpoint-every must be a non-negative integer")?;
            }
            "--replicate-from" => opts.replicate_from = Some(value("--replicate-from")?),
            "--ship-addr" => opts.ship_addr = Some(value("--ship-addr")?),
            "--staleness-ms" => {
                opts.staleness_ms = value("--staleness-ms")?
                    .parse::<u64>()
                    .ok()
                    .filter(|ms| *ms >= 1)
                    .ok_or("--staleness-ms must be a positive integer")?;
            }
            "--lease-ms" => {
                opts.lease_ms = value("--lease-ms")?
                    .parse::<u64>()
                    .ok()
                    .filter(|ms| *ms >= 1)
                    .ok_or("--lease-ms must be a positive integer (a zero lease never expires)")?;
            }
            "--replica-id" => {
                opts.replica_id = Some(
                    value("--replica-id")?
                        .parse::<u64>()
                        .map_err(|_| "--replica-id must be a non-negative integer")?,
                );
            }
            "--advertise" => opts.advertise = Some(value("--advertise")?),
            "--failover-dir" => opts.failover_dir = Some(value("--failover-dir")?),
            "--peer" => opts.peers.push(value("--peer")?),
            "--fault-inject" => {
                let spec = value("--fault-inject")?;
                opts.faults =
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("bad --fault-inject: {e}"))?);
            }
            "--addr" if with_addr => opts.addr = value("--addr")?,
            "--max-body" if with_addr => {
                opts.max_body_bytes = value("--max-body")?
                    .parse::<usize>()
                    .ok()
                    .filter(|b| *b >= 1)
                    .ok_or("--max-body must be a positive byte count")?;
            }
            "--read-timeout-ms" if with_addr => {
                opts.read_timeout_ms = value("--read-timeout-ms")?
                    .parse::<u64>()
                    .map_err(|_| "--read-timeout-ms must be a non-negative integer")?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.edges.is_some() != opts.locations.is_some() {
        return Err("--edges and --locations must be given together".into());
    }
    if opts.replicate_from.is_some() && opts.wal_dir.is_some() {
        return Err(
            "--replicate-from conflicts with --wal-dir: a replica tails the \
                    primary's log instead of keeping its own"
                .into(),
        );
    }
    if opts.ship_addr.is_some() && opts.wal_dir.is_none() {
        return Err("--ship-addr requires --wal-dir (the shipped log)".into());
    }
    if opts.lease_ms >= opts.staleness_ms {
        return Err(format!(
            "--lease-ms ({}) must be below --staleness-ms ({}): a replica must get the \
             chance to fail over before it reports itself degraded",
            opts.lease_ms, opts.staleness_ms
        ));
    }
    let promotion_flags = [
        opts.replica_id.is_some(),
        opts.advertise.is_some(),
        opts.failover_dir.is_some(),
    ];
    if promotion_flags.iter().any(|&f| f) {
        if !promotion_flags.iter().all(|&f| f) {
            return Err(
                "--replica-id, --advertise and --failover-dir must be given together \
                 (the failover identity is all three)"
                    .into(),
            );
        }
        if opts.replicate_from.is_none() {
            return Err(
                "--replica-id/--advertise/--failover-dir require --replicate-from \
                 (only a replica can stand for promotion)"
                    .into(),
            );
        }
    }
    if !opts.peers.is_empty() && opts.wal_dir.is_none() {
        return Err("--peer requires --wal-dir (the probe fences a restarting primary)".into());
    }
    Ok(opts)
}

impl ServeOptions {
    /// Builds the snapshot graph these options describe.
    pub fn build_graph(&self) -> Result<SpatialGraph, String> {
        if let (Some(edges), Some(locations)) = (&self.edges, &self.locations) {
            return load_spatial_graph(edges, locations)
                .map_err(|e| format!("failed to load graph: {e}"));
        }
        let mut spec = DatasetSpec::scaled(self.preset, self.scale);
        if let Some(seed) = self.seed {
            spec = spec.with_seed(seed);
        }
        Ok(spec.generate())
    }

    /// The service configuration these options describe.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            threads: self.threads,
            encode: EncodeOptions {
                members: self.members,
                timing: self.timing,
            },
        }
    }

    /// The HTTP transport limits these options describe (`sac-http` only).
    pub fn http_config(&self) -> HttpConfig {
        HttpConfig {
            max_body_bytes: self.max_body_bytes,
            read_timeout: (self.read_timeout_ms > 0)
                .then(|| Duration::from_millis(self.read_timeout_ms)),
        }
    }

    /// The engine configuration these options describe.
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig {
            shards: self.shards,
            ..EngineConfig::default()
        };
        if let Some(threshold) = self.slow_query_micros {
            config.slow_query_micros = threshold;
        }
        if let Some(capacity) = self.slowlog_capacity {
            config.slowlog_capacity = capacity;
        }
        if let Some(every) = self.trace_sample_every {
            config.trace_sample_every = every;
        }
        config
    }

    /// The durability configuration these options describe (`None` without
    /// `--wal-dir`).
    pub fn durability(&self) -> Option<Durability> {
        self.wal_dir.as_ref().map(|dir| Durability {
            dir: dir.into(),
            sync: self.wal_sync,
            checkpoint_every: self.checkpoint_every,
        })
    }

    /// The replication fault plan: the `--fault-inject` flag, falling back
    /// to the `SAC_REPL_FAULTS` environment variable.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.or_else(FaultPlan::from_env)
    }

    /// The failover identity these options describe (`None` unless the
    /// promotion trio `--replica-id`/`--advertise`/`--failover-dir` is set).
    pub fn failover_config(&self) -> Option<FailoverConfig> {
        let mut config = FailoverConfig::new(
            self.replica_id?,
            self.advertise.clone()?,
            self.failover_dir.clone()?,
        );
        config.ship = ShipConfig {
            lease_ms: self.lease_ms,
            faults: self.fault_plan(),
            ..ShipConfig::default()
        };
        Some(config)
    }

    /// Boots a read replica of `primary` and fronts it with a service.
    fn boot_replica(&self, primary: &str) -> Result<SacService, String> {
        let mut replica_config = ReplicaConfig::new(primary);
        replica_config.staleness = Duration::from_millis(self.staleness_ms);
        replica_config.engine = self.engine_config();
        replica_config.faults = self.fault_plan();
        replica_config.replica_id = self.replica_id;
        replica_config.advertise = self.advertise.clone();
        let replica = Replica::boot(replica_config)
            .map_err(|e| format!("replica bootstrap from {primary} failed: {e}"))?;
        eprintln!(
            "replica bootstrapped from {primary} at epoch {}",
            replica.status().applied_epoch()
        );
        if !self.warm.is_empty() {
            replica.engine().warm(&self.warm);
            eprintln!("warmed k-core indexes for k = {:?}", self.warm);
        }
        Ok(SacService::for_replica(replica, self.service_config()))
    }

    /// Builds the graph (or recovers it from the WAL directory), warms the
    /// requested indexes and stands up the protocol service.  With
    /// `--replicate-from` the service fronts a read replica instead; with
    /// `--ship-addr` the WAL-shipping endpoint is spawned alongside.  With
    /// `--peer`, a restarting primary first probes its peers and — when one
    /// leads at a higher term — demotes itself to that leader's replica
    /// instead of forking history from its stale WAL.
    pub fn build_service(&self) -> Result<SacService, String> {
        let config = self.engine_config();
        if let Some(primary) = &self.replicate_from {
            return self.boot_replica(primary);
        }
        let live = match self.durability() {
            Some(durability) if sac_wal::has_state(&durability.dir) => {
                // Prior WAL state wins over the dataset flags: boot replays
                // snapshot + log back to the pre-crash epoch.
                let (live, report) = LiveEngine::recover(durability, config)
                    .map_err(|e| format!("WAL recovery failed: {e}"))?;
                eprintln!(
                    "recovered epoch {} from WAL (snapshot epoch {}, {} records / {} \
                     mutations replayed, {} torn bytes truncated, clean_shutdown={}) \
                     in {}us",
                    report.epoch,
                    report.snapshot_epoch,
                    report.records_replayed,
                    report.mutations_replayed,
                    report.truncated_bytes,
                    report.clean_shutdown,
                    report.micros
                );
                live
            }
            durability => {
                let graph = self.build_graph()?;
                eprintln!(
                    "snapshot ready ({} vertices, {} edges), {} worker threads",
                    graph.num_vertices(),
                    graph.num_edges(),
                    self.threads
                );
                let engine = Arc::new(SacEngine::with_config(Arc::new(graph), config));
                match durability {
                    None => LiveEngine::new(engine),
                    Some(durability) => {
                        let dir = durability.dir.clone();
                        let live = LiveEngine::with_durability(engine, durability)
                            .map_err(|e| format!("failed to open WAL: {e}"))?;
                        eprintln!("WAL enabled under {}", dir.display());
                        live
                    }
                }
            }
        };
        if !self.peers.is_empty() {
            // Zombie fencing: a primary that was deposed while down finds a
            // peer leading at a higher term and rejoins as its replica (the
            // stale WAL tail is discarded by the snapshot bootstrap).
            let local_term = live.engine().term();
            if let Some((leader, term)) =
                find_superseding_primary(&self.peers, local_term, Duration::from_secs(2))
            {
                eprintln!(
                    "superseded: peer {leader} leads at term {term} (local term \
                     {local_term}); demoting to its replica"
                );
                drop(live);
                return self.boot_replica(&leader);
            }
        }
        let engine = live.engine();
        if engine.shard_count() > 0 {
            eprintln!("serving {} spatial shards", engine.shard_count());
        }
        if !self.warm.is_empty() {
            engine.warm(&self.warm);
            eprintln!("warmed k-core indexes for k = {:?}", self.warm);
        }
        if let Some(ship_addr) = &self.ship_addr {
            let durability = self
                .durability()
                .expect("parse_args enforces --ship-addr requires --wal-dir");
            let listener = std::net::TcpListener::bind(ship_addr)
                .map_err(|e| format!("cannot bind shipping address {ship_addr}: {e}"))?;
            let ship_config = ShipConfig {
                lease_ms: self.lease_ms,
                faults: self.fault_plan(),
                ..ShipConfig::default()
            };
            let handle = spawn_shipper(listener, durability.dir, Arc::clone(engine), ship_config)
                .map_err(|e| format!("cannot start WAL shipper: {e}"))?;
            eprintln!("shipping WAL to replicas on {}", handle.addr());
        }
        Ok(SacService::with_live(live, self.service_config()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_shared_and_http_options() {
        let opts = parse_args(
            &args(&[
                "--preset",
                "syn1",
                "--scale",
                "0.5",
                "--seed",
                "7",
                "--threads",
                "2",
                "--warm",
                "2,4",
                "--slow-query-micros",
                "2500",
                "--slowlog-capacity",
                "32",
                "--trace-sample-every",
                "16",
                "--no-members",
                "--no-timing",
            ]),
            false,
        )
        .unwrap();
        assert_eq!(opts.preset, DatasetKind::Syn1);
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.seed, Some(7));
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.warm, vec![2, 4]);
        assert_eq!(opts.slow_query_micros, Some(2500));
        assert_eq!(opts.slowlog_capacity, Some(32));
        assert_eq!(opts.trace_sample_every, Some(16));
        assert!(!opts.members && !opts.timing);
        let config = opts.service_config();
        assert!(!config.encode.members && !config.encode.timing);

        let opts = parse_args(
            &args(&[
                "--addr",
                "0.0.0.0:9000",
                "--shards",
                "4",
                "--max-body",
                "4096",
                "--read-timeout-ms",
                "250",
            ]),
            true,
        )
        .unwrap();
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.shards, 4);
        let http = opts.http_config();
        assert_eq!(http.max_body_bytes, 4096);
        assert_eq!(http.read_timeout, Some(Duration::from_millis(250)));
        // Timeout 0 disables the read deadline.
        let opts = parse_args(&args(&["--read-timeout-ms", "0"]), true).unwrap();
        assert_eq!(opts.http_config().read_timeout, None);
        // --addr (and the other HTTP-only limits) are rejected where they
        // make no sense (the LDJSON binary).
        assert!(parse_args(&args(&["--addr", "x"]), false).is_err());
        assert!(parse_args(&args(&["--max-body", "10"]), false).is_err());
        assert!(parse_args(&args(&["--max-body", "0"]), true).is_err());
        assert!(parse_args(&args(&["--shards", "x"]), false).is_err());
        assert!(parse_args(&args(&["--slow-query-micros", "x"]), false).is_err());
        assert!(parse_args(&args(&["--slowlog-capacity", "0"]), false).is_err());
        assert!(parse_args(&args(&["--trace-sample-every", "x"]), false).is_err());
        assert!(parse_args(&args(&["--scale", "2"]), false).is_err());
        // Durability flags parse on both binaries.
        let opts = parse_args(
            &args(&[
                "--wal-dir",
                "/tmp/wal",
                "--wal-sync",
                "8",
                "--checkpoint-every",
                "100",
            ]),
            false,
        )
        .unwrap();
        assert_eq!(opts.wal_dir.as_deref(), Some("/tmp/wal"));
        assert_eq!(opts.wal_sync, SyncPolicy::EveryN(8));
        assert_eq!(opts.checkpoint_every, 100);
        let durability = opts.durability().unwrap();
        assert_eq!(durability.sync, SyncPolicy::EveryN(8));
        assert_eq!(durability.checkpoint_every, 100);
        let opts = parse_args(&args(&["--wal-sync", "never"]), true).unwrap();
        assert_eq!(opts.wal_sync, SyncPolicy::Never);
        assert!(opts.durability().is_none(), "no --wal-dir, no durability");
        assert!(parse_args(&args(&["--wal-sync", "sometimes"]), false).is_err());
        assert!(parse_args(&args(&["--checkpoint-every", "x"]), false).is_err());
        assert!(parse_args(&args(&["--edges", "a.txt"]), false).is_err());
        // Replication flags.
        let opts = parse_args(
            &args(&[
                "--wal-dir",
                "/tmp/wal",
                "--ship-addr",
                "127.0.0.1:7900",
                "--fault-inject",
                "seed=3,drop=0.1",
            ]),
            false,
        )
        .unwrap();
        assert_eq!(opts.ship_addr.as_deref(), Some("127.0.0.1:7900"));
        assert_eq!(opts.fault_plan().unwrap().drop, 0.1);
        let opts = parse_args(
            &args(&[
                "--replicate-from",
                "127.0.0.1:7900",
                "--staleness-ms",
                "500",
                "--lease-ms",
                "200",
            ]),
            false,
        )
        .unwrap();
        assert_eq!(opts.replicate_from.as_deref(), Some("127.0.0.1:7900"));
        assert_eq!(opts.staleness_ms, 500);
        assert_eq!(opts.lease_ms, 200);
        // A replica keeps no local WAL; a shipper needs one.
        assert!(parse_args(
            &args(&["--replicate-from", "a:1", "--wal-dir", "/tmp/w"]),
            false
        )
        .is_err());
        assert!(parse_args(&args(&["--ship-addr", "a:1"]), false).is_err());
        assert!(parse_args(&args(&["--staleness-ms", "0"]), false).is_err());
        assert!(parse_args(&args(&["--fault-inject", "nope=1"]), false).is_err());
        // Failover flags: zero leases and lease >= staleness are rejected at
        // parse time with explicit messages, not discovered at runtime.
        assert!(parse_args(&args(&["--lease-ms", "0"]), false)
            .unwrap_err()
            .contains("--lease-ms"));
        let err = parse_args(
            &args(&["--staleness-ms", "1000", "--lease-ms", "1000"]),
            false,
        )
        .unwrap_err();
        assert!(err.contains("below --staleness-ms"), "got: {err}");
        // The promotion identity is all-or-none and replica-only.
        assert!(parse_args(&args(&["--replica-id", "1"]), false)
            .unwrap_err()
            .contains("given together"));
        let trio = [
            "--replica-id",
            "1",
            "--advertise",
            "127.0.0.1:7901",
            "--failover-dir",
            "/tmp/f",
        ];
        assert!(parse_args(&args(&trio), false)
            .unwrap_err()
            .contains("--replicate-from"));
        let full: Vec<&str> = ["--replicate-from", "127.0.0.1:7900"]
            .iter()
            .chain(trio.iter())
            .copied()
            .collect();
        let opts = parse_args(&args(&full), false).unwrap();
        assert_eq!(opts.replica_id, Some(1));
        let failover = opts.failover_config().unwrap();
        assert_eq!(failover.replica_id, 1);
        assert_eq!(failover.advertise, "127.0.0.1:7901");
        assert_eq!(failover.ship.lease_ms, 1000);
        // Probing peers is a primary-side (WAL-holding) concern.
        assert!(parse_args(&args(&["--peer", "a:1"]), false)
            .unwrap_err()
            .contains("--wal-dir"));
        let opts = parse_args(
            &args(&["--wal-dir", "/tmp/w", "--peer", "a:1", "--peer", "b:2"]),
            false,
        )
        .unwrap();
        assert_eq!(opts.peers, vec!["a:1", "b:2"]);
        assert!(opts.failover_config().is_none(), "no trio, no failover");
        assert_eq!(parse_args(&args(&["--help"]), false).unwrap_err(), "");
        assert!(usage("sac-http", true).contains("--addr"));
        assert!(!usage("sac-serve", false).contains("--addr"));
    }
}
