//! Graph deltas: the batched mutation record between two epochs.

use sac_geom::Point;
use sac_graph::VertexId;

/// One graph mutation accepted by the write front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation {
    /// Insert the undirected edge `{u, v}`.
    InsertEdge(VertexId, VertexId),
    /// Remove the undirected edge `{u, v}`.
    RemoveEdge(VertexId, VertexId),
    /// Add a new vertex at the given location; its id is assigned on apply.
    AddVertex(Point),
    /// Move an existing vertex to a new location (position-only: core
    /// numbers are untouched, the commit is grid-only with
    /// `dirty_up_to = 0`).
    MoveVertex(VertexId, Point),
}

/// The ordered mutations accumulated since the last commit.
///
/// A delta is a *record*, not a plan: the write front applies each mutation
/// eagerly (so core numbers are maintained incrementally, one edge at a time)
/// and appends it here so a commit can report what the epoch contains — and
/// so callers can replay or audit the stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    ops: Vec<Mutation>,
    edges_inserted: usize,
    edges_removed: usize,
    vertices_added: usize,
    vertices_moved: usize,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Records one mutation.
    pub fn push(&mut self, op: Mutation) {
        match op {
            Mutation::InsertEdge(..) => self.edges_inserted += 1,
            Mutation::RemoveEdge(..) => self.edges_removed += 1,
            Mutation::AddVertex(..) => self.vertices_added += 1,
            Mutation::MoveVertex(..) => self.vertices_moved += 1,
        }
        self.ops.push(op);
    }

    /// The recorded mutations in application order.
    pub fn ops(&self) -> &[Mutation] {
        &self.ops
    }

    /// Total number of recorded mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta records no mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of recorded edge insertions.
    pub fn edges_inserted(&self) -> usize {
        self.edges_inserted
    }

    /// Number of recorded edge removals.
    pub fn edges_removed(&self) -> usize {
        self.edges_removed
    }

    /// Number of recorded vertex additions.
    pub fn vertices_added(&self) -> usize {
        self.vertices_added
    }

    /// Number of recorded vertex moves (position-only updates).
    pub fn vertices_moved(&self) -> usize {
        self.vertices_moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_counts_by_kind() {
        let mut delta = GraphDelta::new();
        assert!(delta.is_empty());
        delta.push(Mutation::InsertEdge(0, 1));
        delta.push(Mutation::AddVertex(Point::new(1.0, 2.0)));
        delta.push(Mutation::InsertEdge(1, 2));
        delta.push(Mutation::RemoveEdge(0, 1));
        delta.push(Mutation::MoveVertex(2, Point::new(3.0, 4.0)));
        assert_eq!(delta.len(), 5);
        assert_eq!(delta.edges_inserted(), 2);
        assert_eq!(delta.edges_removed(), 1);
        assert_eq!(delta.vertices_added(), 1);
        assert_eq!(delta.vertices_moved(), 1);
        assert_eq!(delta.ops()[0], Mutation::InsertEdge(0, 1));
        assert!(!delta.is_empty());
    }
}
