//! The live-update handle: a mutable write front over a [`SacEngine`].

use crate::delta::{GraphDelta, Mutation};
use sac_engine::SacEngine;
use sac_geom::Point;
use sac_graph::{DynamicGraph, EdgeChange, GraphError, SpatialGraph, VertexId};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What one [`LiveEngine::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReport {
    /// Epoch now being served (unchanged when the delta was empty).
    pub epoch: u64,
    /// Mutations applied in this delta.
    pub mutations: usize,
    /// Edge insertions among them.
    pub edges_inserted: usize,
    /// Edge removals among them.
    pub edges_removed: usize,
    /// Vertex additions among them.
    pub vertices_added: usize,
    /// Vertices whose core number changed during the delta (sum over
    /// mutations; a vertex flapping up and down is counted every time).
    pub cores_changed: u64,
    /// Largest `k` whose k-core the delta may have touched; cached per-`k`
    /// indexes above this carried over to the new epoch.
    pub dirty_up_to: u32,
    /// Per-`k` component indexes carried across the swap.
    pub components_carried: u64,
    /// Per-`k` component indexes invalidated by the swap.
    pub components_invalidated: u64,
    /// Wall-clock cost of the commit (CSR + spatial-index rebuild + publish),
    /// in microseconds.
    pub micros: u64,
}

/// Mutable state between two epochs: the maintained dynamic graph, the vertex
/// positions, and the record of what changed.
#[derive(Debug)]
struct WriteFront {
    dynamic: DynamicGraph,
    positions: Vec<Point>,
    delta: GraphDelta,
    dirty_up_to: u32,
    cores_changed: u64,
}

/// A concurrent-safe live-update handle over a shared [`SacEngine`].
///
/// The handle owns the *write front*: a [`DynamicGraph`] (adjacency +
/// incrementally maintained core numbers) plus the vertex positions.  Edge
/// insertions/removals and vertex additions are applied to the front
/// immediately — each one repairs the core numbers by walking only the
/// affected subcore — and are batched into a [`GraphDelta`] until
/// [`LiveEngine::commit`] rebuilds the immutable snapshot (CSR + grid index)
/// once and publishes it as the engine's next epoch.  Queries running against
/// the engine never see the front: they finish on the epoch they loaded, and
/// the k-core index cache carries over every `k` entry the delta did not
/// touch.
///
/// ```
/// use sac_engine::SacEngine;
/// use sac_live::LiveEngine;
/// use sac_geom::Point;
/// use std::sync::Arc;
///
/// let engine = Arc::new(SacEngine::new(sac_core::fixtures::figure3_graph()));
/// let live = LiveEngine::new(Arc::clone(&engine));
///
/// let v = live.add_vertex(Point::new(2.0, 2.0)).unwrap();
/// live.add_edge(v, sac_core::fixtures::figure3::Q).unwrap();
/// let report = live.commit().unwrap();
/// assert_eq!(report.epoch, 2);
/// assert_eq!(engine.snapshot().num_vertices(), 11);
/// ```
#[derive(Debug)]
pub struct LiveEngine {
    engine: Arc<SacEngine>,
    front: Mutex<WriteFront>,
}

impl LiveEngine {
    /// A write front seeded from the engine's current snapshot; the engine's
    /// memoised decomposition seeds the maintained core numbers, so no peel is
    /// paid here.
    pub fn new(engine: Arc<SacEngine>) -> Self {
        let snapshot = engine.snapshot();
        let decomposition = engine.decomposition();
        let dynamic = DynamicGraph::from_parts(snapshot.graph(), &decomposition);
        let positions = snapshot.positions().to_vec();
        LiveEngine {
            engine,
            front: Mutex::new(WriteFront {
                dynamic,
                positions,
                delta: GraphDelta::new(),
                dirty_up_to: 0,
                cores_changed: 0,
            }),
        }
    }

    /// The engine this handle publishes into.
    pub fn engine(&self) -> &Arc<SacEngine> {
        &self.engine
    }

    /// Number of mutations buffered since the last commit.
    pub fn pending(&self) -> usize {
        self.front.lock().expect("write front poisoned").delta.len()
    }

    /// A copy of the buffered delta (application order).
    pub fn pending_delta(&self) -> GraphDelta {
        self.front
            .lock()
            .expect("write front poisoned")
            .delta
            .clone()
    }

    /// Inserts the undirected edge `{u, v}` into the write front.
    ///
    /// Returns the incremental core repair (`applied == false` for self-loops
    /// and already-present edges); errors when an endpoint does not exist.
    pub fn add_edge(&self, u: VertexId, v: VertexId) -> Result<EdgeChange, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        let change = front.dynamic.insert_edge(u, v)?;
        if change.applied {
            front.delta.push(Mutation::InsertEdge(u, v));
            front.dirty_up_to = front.dirty_up_to.max(change.dirty_up_to);
            front.cores_changed += change.changed.len() as u64;
        }
        Ok(change)
    }

    /// Removes the undirected edge `{u, v}` from the write front.
    pub fn remove_edge(&self, u: VertexId, v: VertexId) -> Result<EdgeChange, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        let change = front.dynamic.remove_edge(u, v)?;
        if change.applied {
            front.delta.push(Mutation::RemoveEdge(u, v));
            front.dirty_up_to = front.dirty_up_to.max(change.dirty_up_to);
            front.cores_changed += change.changed.len() as u64;
        }
        Ok(change)
    }

    /// Adds a new vertex at `position` (core number 0 until edges attach it)
    /// and returns its id.
    pub fn add_vertex(&self, position: Point) -> Result<VertexId, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        if !position.is_finite() {
            return Err(GraphError::InvalidPosition(
                front.dynamic.num_vertices() as VertexId
            ));
        }
        let v = front.dynamic.add_vertex();
        front.positions.push(position);
        front.delta.push(Mutation::AddVertex(position));
        Ok(v)
    }

    /// Rebuilds the immutable snapshot from the write front and publishes it
    /// as the engine's next epoch.
    ///
    /// The CSR adjacency and the spatial grid index are rebuilt once per
    /// commit (`O(n + m)`), but the core decomposition is **not** recomputed —
    /// the incrementally maintained numbers are published as-is, and the
    /// engine carries over every cached per-`k` component index the delta did
    /// not touch.  An empty delta publishes nothing and reports the current
    /// epoch.
    pub fn commit(&self) -> Result<CommitReport, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        if front.delta.is_empty() {
            return Ok(CommitReport {
                epoch: self.engine.epoch(),
                mutations: 0,
                edges_inserted: 0,
                edges_removed: 0,
                vertices_added: 0,
                cores_changed: 0,
                dirty_up_to: 0,
                components_carried: 0,
                components_invalidated: 0,
                micros: 0,
            });
        }
        let start = Instant::now();
        let graph = front.dynamic.to_graph();
        let decomposition = front.dynamic.decomposition();
        let snapshot = SpatialGraph::new(graph, front.positions.clone())?;
        let dirty_up_to = front.dirty_up_to;
        let report = self
            .engine
            .publish(Arc::new(snapshot), decomposition, dirty_up_to);
        let delta = std::mem::take(&mut front.delta);
        let cores_changed = std::mem::take(&mut front.cores_changed);
        front.dirty_up_to = 0;
        Ok(CommitReport {
            epoch: report.epoch,
            mutations: delta.len(),
            edges_inserted: delta.edges_inserted(),
            edges_removed: delta.edges_removed(),
            vertices_added: delta.vertices_added(),
            cores_changed,
            dirty_up_to,
            components_carried: report.components_carried,
            components_invalidated: report.components_invalidated,
            micros: start.elapsed().as_micros() as u64,
        })
    }
}

// The handle is shared across writer threads alongside the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LiveEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_engine::{QueryBudget, SacRequest};
    use sac_graph::core_decomposition;

    fn live() -> LiveEngine {
        LiveEngine::new(Arc::new(SacEngine::new(figure3_graph())))
    }

    #[test]
    fn mutations_buffer_until_commit() {
        let live = live();
        let engine = Arc::clone(live.engine());
        let before = engine.snapshot();

        let v = live.add_vertex(Point::new(0.5, 0.5)).unwrap();
        live.add_edge(v, figure3::Q).unwrap();
        live.add_edge(v, figure3::A).unwrap();
        assert_eq!(live.pending(), 3);
        // The served snapshot is untouched until commit.
        assert_eq!(engine.snapshot().num_vertices(), before.num_vertices());

        let report = live.commit().unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.mutations, 3);
        assert_eq!(report.edges_inserted, 2);
        assert_eq!(report.vertices_added, 1);
        assert_eq!(live.pending(), 0);
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.num_vertices(), before.num_vertices() + 1);
        assert!(snapshot.graph().has_edge(v, figure3::Q));
        // Published core numbers equal a fresh decomposition.
        assert_eq!(
            engine.decomposition().core_numbers(),
            core_decomposition(snapshot.graph()).core_numbers()
        );
    }

    #[test]
    fn committed_updates_change_query_answers() {
        let live = live();
        let engine = Arc::clone(live.engine());
        // I (pendant) has no 2-core community on epoch 1.
        let req = SacRequest::new(1, figure3::I, 2).with_budget(QueryBudget::exact());
        assert!(engine.execute(&req).community().is_none());

        // Close the triangle F–G–H–I: now I belongs to a 2-core.
        live.add_edge(figure3::I, figure3::F).unwrap();
        let report = live.commit().unwrap();
        assert!(report.cores_changed >= 1);
        let response = engine.execute(&req);
        let community = response.community().expect("I joined a 2-core");
        assert!(community.contains(figure3::I));
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let live = live();
        let before = live.engine().epoch();
        let report = live.commit().unwrap();
        assert_eq!(report.epoch, before);
        assert_eq!(report.mutations, 0);
        assert_eq!(live.engine().epoch(), before);
    }

    #[test]
    fn noop_mutations_do_not_grow_the_delta() {
        let live = live();
        // Q–A already exists in the fixture.
        let change = live.add_edge(figure3::Q, figure3::A).unwrap();
        assert!(!change.applied);
        let change = live.remove_edge(figure3::Q, figure3::I).unwrap(); // absent edge
        assert!(!change.applied);
        assert_eq!(live.pending(), 0);
        assert!(live.add_edge(figure3::Q, 999).is_err());
        assert!(live.add_vertex(Point::new(f64::NAN, 0.0)).is_err());
        assert_eq!(live.pending(), 0);
    }

    #[test]
    fn selective_invalidation_carries_untouched_k() {
        let live = live();
        let engine = Arc::clone(live.engine());
        engine.warm(&[1, 2]);

        // Removing the pendant edge H–I only dirties k <= 1.
        live.remove_edge(figure3::H, figure3::I).unwrap();
        let report = live.commit().unwrap();
        assert_eq!(report.dirty_up_to, 1);
        assert_eq!(report.components_carried, 1); // k = 2 survived
        assert_eq!(report.components_invalidated, 1); // k = 1 dropped
    }
}
