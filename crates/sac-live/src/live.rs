//! The live-update handle: a mutable write front over a [`SacEngine`].

use crate::delta::{GraphDelta, Mutation};
use crate::durability::{
    wal_ops, CheckpointReport, CommitError, Durability, RecoveryReport, WalObs, WalState, WalStats,
};
use sac_engine::{EngineConfig, SacEngine};
use sac_geom::Point;
use sac_graph::{
    BatchChange, BatchOp, BatchStrategy, CoreDecomposition, DynamicGraph, EdgeChange, GraphError,
    ShardMap, SpatialGraph, VertexId,
};
use sac_obs::{Counter, Histogram, Span};
use sac_wal::{DeltaRecord, SnapshotFrame, WalError, WalOp, WalWriter};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pre-bound commit-pipeline instruments, registered into the engine's
/// [`MetricsRegistry`](sac_engine::MetricsRegistry) at construction so the
/// whole serving stack shares one `/metrics` exposition.
#[derive(Debug)]
struct LiveObs {
    /// Whether the engine runs with observability enabled.
    enabled: bool,
    /// `sac_commits_total` — non-empty commits published.
    commits: Arc<Counter>,
    /// `sac_commit_micros` — end-to-end commit latency.
    commit_micros: Arc<Histogram>,
    /// `sac_commit_stage_micros{stage="snapshot_build"}` — CSR + grid
    /// rebuild time (the engine itself records the downstream
    /// `shard_rebuild`/`epoch_swap` publish stages).
    snapshot_build: Arc<Histogram>,
    /// `sac_commit_dirty_shards_total` — shard snapshots marked dirty.
    dirty_shards: Arc<Counter>,
    /// `sac_batch_applies_total{strategy=…}` per repair strategy chosen.
    shared_peel_applies: Arc<Counter>,
    per_edge_applies: Arc<Counter>,
    /// `sac_batch_repair_micros{strategy=…}` — core-repair time per strategy.
    shared_peel_repair: Arc<Histogram>,
    per_edge_repair: Arc<Histogram>,
}

impl LiveObs {
    fn new(engine: &SacEngine) -> LiveObs {
        let registry = engine.metrics();
        LiveObs {
            enabled: engine.observing(),
            commits: registry.counter("sac_commits_total", "Non-empty commits published", &[]),
            commit_micros: registry.histogram(
                "sac_commit_micros",
                "End-to-end commit latency (rebuild + publish), microseconds",
                &[],
            ),
            snapshot_build: registry.histogram(
                "sac_commit_stage_micros",
                "Commit pipeline stage latency, microseconds",
                &[("stage", "snapshot_build")],
            ),
            dirty_shards: registry.counter(
                "sac_commit_dirty_shards_total",
                "Shard snapshots rebuilt because a mutation touched their coverage",
                &[],
            ),
            shared_peel_applies: registry.counter(
                "sac_batch_applies_total",
                "Bulk delta applies by chosen core-repair strategy",
                &[("strategy", "shared_peel")],
            ),
            per_edge_applies: registry.counter(
                "sac_batch_applies_total",
                "Bulk delta applies by chosen core-repair strategy",
                &[("strategy", "per_edge")],
            ),
            shared_peel_repair: registry.histogram(
                "sac_batch_repair_micros",
                "Core-repair time of bulk delta applies, microseconds",
                &[("strategy", "shared_peel")],
            ),
            per_edge_repair: registry.histogram(
                "sac_batch_repair_micros",
                "Core-repair time of bulk delta applies, microseconds",
                &[("strategy", "per_edge")],
            ),
        }
    }
}

/// What one [`LiveEngine::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReport {
    /// Epoch now being served (unchanged when the delta was empty).
    pub epoch: u64,
    /// Mutations applied in this delta.
    pub mutations: usize,
    /// Edge insertions among them.
    pub edges_inserted: usize,
    /// Edge removals among them.
    pub edges_removed: usize,
    /// Vertex additions among them.
    pub vertices_added: usize,
    /// Vertex moves (position-only updates) among them.
    pub vertices_moved: usize,
    /// Vertices whose core number changed during the delta (sum over
    /// mutations; a vertex flapping up and down is counted every time).
    pub cores_changed: u64,
    /// Largest `k` whose k-core the delta may have touched; cached per-`k`
    /// indexes above this carried over to the new epoch.
    pub dirty_up_to: u32,
    /// Per-`k` component indexes carried across the swap.
    pub components_carried: u64,
    /// Per-`k` component indexes invalidated by the swap.
    pub components_invalidated: u64,
    /// Shard snapshots rebuilt for the new epoch (0 on unsharded engines).
    pub shards_rebuilt: u32,
    /// Shard snapshots carried unchanged (their region saw no mutation).
    pub shards_carried: u32,
    /// Wall-clock cost of the commit (CSR + spatial-index rebuild + publish),
    /// in microseconds.
    pub micros: u64,
    /// CSR + spatial-grid rebuild share of `micros`.
    pub snapshot_build_micros: u64,
    /// Shard/cache rebuild share of the engine-side publish.
    pub rebuild_micros: u64,
    /// Epoch-pointer swap share of the engine-side publish.
    pub swap_micros: u64,
}

/// What one [`LiveEngine::apply_batch`] did (the bulk counterpart of the
/// per-mutation [`sac_graph::EdgeChange`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchApplyReport {
    /// Ops submitted.
    pub ops: usize,
    /// Ops that changed the graph (no-ops dropped).
    pub applied: usize,
    /// Vertices whose core number changed across the batch.
    pub cores_changed: usize,
    /// Dirty bound the batch contributed to the pending delta.
    pub dirty_up_to: u32,
    /// Whether the shared-peel strategy repaired the cores (`false` =
    /// per-edge cascades).
    pub recomputed: bool,
    /// Wall-clock cost of the core repair (the shared peel, or the per-edge
    /// cascade loop), in microseconds.
    pub repair_micros: u64,
}

/// Mutable state between two epochs: the maintained dynamic graph, the vertex
/// positions, the record of what changed, and which shards the changes
/// touched.
#[derive(Debug)]
struct WriteFront {
    dynamic: DynamicGraph,
    positions: Vec<Point>,
    delta: GraphDelta,
    dirty_up_to: u32,
    cores_changed: u64,
    /// Per-shard dirty flags (empty on unsharded engines): a shard is dirty
    /// when a mutation touched a position inside its coverage (region +
    /// halo), so its induced snapshot must be rebuilt at commit.
    dirty_shards: Vec<bool>,
}

impl WriteFront {
    /// Marks every shard whose coverage contains `p` dirty.
    fn mark_dirty(&mut self, map: &Option<Arc<ShardMap>>, p: Point) {
        if let Some(map) = map {
            for s in map.shards_covering(p) {
                self.dirty_shards[s as usize] = true;
            }
        }
    }
}

/// A concurrent-safe live-update handle over a shared [`SacEngine`].
///
/// The handle owns the *write front*: a [`DynamicGraph`] (adjacency +
/// incrementally maintained core numbers) plus the vertex positions.  Edge
/// insertions/removals and vertex additions are applied to the front
/// immediately — each one repairs the core numbers by walking only the
/// affected subcore — and are batched into a [`GraphDelta`] until
/// [`LiveEngine::commit`] rebuilds the immutable snapshot (CSR + grid index)
/// once and publishes it as the engine's next epoch.  Queries running against
/// the engine never see the front: they finish on the epoch they loaded, and
/// the k-core index cache carries over every `k` entry the delta did not
/// touch.
///
/// ```
/// use sac_engine::SacEngine;
/// use sac_live::LiveEngine;
/// use sac_geom::Point;
/// use std::sync::Arc;
///
/// let engine = Arc::new(SacEngine::new(sac_core::fixtures::figure3_graph()));
/// let live = LiveEngine::new(Arc::clone(&engine));
///
/// let v = live.add_vertex(Point::new(2.0, 2.0)).unwrap();
/// live.add_edge(v, sac_core::fixtures::figure3::Q).unwrap();
/// let report = live.commit().unwrap();
/// assert_eq!(report.epoch, 2);
/// assert_eq!(engine.snapshot().num_vertices(), 11);
/// ```
#[derive(Debug)]
pub struct LiveEngine {
    engine: Arc<SacEngine>,
    /// The engine's spatial partitioner, captured once (it is stable across
    /// epochs); used to mark dirty shards as mutations arrive.
    map: Option<Arc<ShardMap>>,
    front: Mutex<WriteFront>,
    obs: LiveObs,
    /// Durability state (`None` without a WAL).  Lock order: `front` before
    /// `wal` — the commit path appends under both so records and epoch swaps
    /// stay in lockstep, and checkpoints quiesce commits via `front`.
    wal: Mutex<Option<WalState>>,
}

impl LiveEngine {
    /// A write front seeded from the engine's current snapshot; the engine's
    /// memoised decomposition seeds the maintained core numbers, so no peel is
    /// paid here.
    pub fn new(engine: Arc<SacEngine>) -> Self {
        let snapshot = engine.snapshot();
        let decomposition = engine.decomposition();
        let dynamic = DynamicGraph::from_parts(snapshot.graph(), &decomposition);
        let positions = snapshot.positions().to_vec();
        let map = engine.shard_map();
        let shard_count = map.as_ref().map_or(0, |m| m.num_shards());
        let obs = LiveObs::new(&engine);
        LiveEngine {
            engine,
            map,
            obs,
            front: Mutex::new(WriteFront {
                dynamic,
                positions,
                delta: GraphDelta::new(),
                dirty_up_to: 0,
                cores_changed: 0,
                dirty_shards: vec![false; shard_count],
            }),
            wal: Mutex::new(None),
        }
    }

    /// A write front with durability: every commit is logged to the WAL under
    /// `config.dir` before it publishes, and checkpoints run on the
    /// configured cadence.  A fresh directory gets an initial checkpoint of
    /// the current epoch so recovery always has a base snapshot; a directory
    /// holding previous state should go through [`LiveEngine::recover`]
    /// instead.
    pub fn with_durability(
        engine: Arc<SacEngine>,
        config: Durability,
    ) -> Result<LiveEngine, WalError> {
        let live = LiveEngine::new(engine);
        live.attach_wal(config, None)?;
        Ok(live)
    }

    /// Rebuilds a live engine from the durable state under `config.dir`:
    /// loads the newest snapshot, replays every WAL record past its epoch
    /// (torn tail truncated unless a clean-shutdown marker vouches for the
    /// log; any other anomaly is a hard error), and restores the serialized
    /// shard partition.  The recovered engine is **bit-identical** to the
    /// pre-crash epoch: core numbers, shard layout and query answers all
    /// match, which the crash-recovery property test pins.
    pub fn recover(
        config: Durability,
        engine_config: EngineConfig,
    ) -> Result<(LiveEngine, RecoveryReport), WalError> {
        let start = Instant::now();
        let Some((snapshot_epoch, snapshot_path)) = sac_wal::latest_snapshot(&config.dir)? else {
            return Err(WalError::NoSnapshot(config.dir.clone()));
        };
        let image = sac_wal::read_snapshot(&snapshot_path)?;
        let clean_epoch = sac_wal::read_clean_marker(&config.dir);
        let marker_term = sac_wal::read_term_marker(&config.dir).unwrap_or(0);
        let log = sac_wal::read_log(&config.dir, clean_epoch.is_none())?;

        // Replay through the same incremental maintenance the live path uses.
        let decomposition = CoreDecomposition::from_core_numbers(image.core_numbers);
        let mut dynamic = DynamicGraph::from_parts(&image.graph, &decomposition);
        let mut positions = image.positions;
        let mut epoch = snapshot_epoch;
        let mut term = marker_term;
        let mut records_replayed = 0u64;
        let mut mutations_replayed = 0u64;
        for record in &log.records {
            if record.epoch <= snapshot_epoch {
                continue; // superseded by the snapshot
            }
            if record.epoch != epoch + 1 {
                return Err(WalError::EpochGap {
                    expected: epoch + 1,
                    found: record.epoch,
                });
            }
            // Terms are monotone within one history: a record below the
            // established term is a fenced zombie's write — replaying it
            // would fork history, so recovery refuses.
            if record.term < term {
                return Err(WalError::TermRegression {
                    expected: term,
                    found: record.term,
                    epoch: record.epoch,
                });
            }
            term = record.term;
            for op in &record.ops {
                match *op {
                    WalOp::InsertEdge(u, v) => {
                        dynamic.insert_edge(u, v).map_err(WalError::Graph)?;
                    }
                    WalOp::RemoveEdge(u, v) => {
                        dynamic.remove_edge(u, v).map_err(WalError::Graph)?;
                    }
                    WalOp::AddVertex(x, y) => {
                        dynamic.add_vertex();
                        positions.push(Point::new(x, y));
                    }
                    WalOp::MoveVertex(v, x, y) => {
                        if v as usize >= positions.len() {
                            return Err(WalError::Graph(GraphError::VertexOutOfRange(v)));
                        }
                        positions[v as usize] = Point::new(x, y);
                    }
                }
                mutations_replayed += 1;
            }
            epoch = record.epoch;
            records_replayed += 1;
        }

        let snapshot = SpatialGraph::new(dynamic.to_graph(), positions).map_err(WalError::Graph)?;
        let map = image.map.map(Arc::new);
        let engine = Arc::new(SacEngine::restored(
            Arc::new(snapshot),
            engine_config,
            map,
            epoch,
        ));
        engine.set_term(term);
        let live = LiveEngine::new(Arc::clone(&engine));
        live.attach_wal(config, Some(snapshot_epoch))?;
        let report = RecoveryReport {
            snapshot_epoch,
            epoch,
            term,
            records_replayed,
            mutations_replayed,
            truncated_bytes: log.truncated_bytes,
            clean_shutdown: clean_epoch.is_some(),
            micros: start.elapsed().as_micros() as u64,
        };
        if engine.observing() {
            engine.events().publish(
                "recovery",
                format!(
                    "snapshot_epoch={} epoch={} records={} mutations={} truncated_bytes={} clean={}",
                    report.snapshot_epoch,
                    report.epoch,
                    report.records_replayed,
                    report.mutations_replayed,
                    report.truncated_bytes,
                    report.clean_shutdown
                ),
            );
        }
        Ok((live, report))
    }

    /// Opens the log for appending and installs the WAL state.  On a fresh
    /// directory (no snapshot yet), writes the base checkpoint.
    fn attach_wal(&self, config: Durability, restored_from: Option<u64>) -> Result<(), WalError> {
        let writer = WalWriter::open(&config.dir, config.sync)?;
        let first_live_segment = sac_wal::list_segments(&config.dir)?
            .first()
            .copied()
            .unwrap_or_else(|| writer.segment());
        let shard_count = self.map.as_ref().map_or(0, |m| m.num_shards());
        let fresh = restored_from.is_none() && sac_wal::latest_snapshot(&config.dir)?.is_none();
        let state = WalState {
            writer,
            config,
            obs: WalObs::new(&self.engine),
            commits_since_checkpoint: 0,
            last_checkpoint_epoch: restored_from.unwrap_or(0),
            last_checkpoint_vertices: usize::MAX,
            frames: Vec::new(),
            dirty_since_checkpoint: vec![true; shard_count],
            appended_records: 0,
            appended_bytes: 0,
            first_live_segment,
        };
        let mut guard = self.wal.lock().expect("wal state poisoned");
        *guard = Some(state);
        if fresh {
            self.run_checkpoint(guard.as_mut().expect("just installed"))?;
        }
        Ok(())
    }

    /// Serializes the current epoch into a snapshot file, rotates the log,
    /// and deletes every segment strictly older than the new active one.
    /// Shard frames untouched since the previous checkpoint are reused
    /// verbatim.  Errors when durability is disabled.
    pub fn checkpoint(&self) -> Result<CheckpointReport, WalError> {
        // Quiesce commits so the snapshot and the segment cut are one
        // consistent point in the epoch sequence.
        let _front = self.front.lock().expect("write front poisoned");
        let mut guard = self.wal.lock().expect("wal state poisoned");
        let wal = guard.as_mut().ok_or(WalError::Disabled)?;
        self.run_checkpoint(wal)
    }

    /// Checkpoint body; the caller holds the locks that serialize commits.
    fn run_checkpoint(&self, wal: &mut WalState) -> Result<CheckpointReport, WalError> {
        let start = Instant::now();
        let snapshot = self.engine.snapshot();
        let decomposition = self.engine.decomposition();
        let epoch = self.engine.epoch();
        let graph = snapshot.graph();
        let positions = snapshot.positions();
        let map = self.map.as_deref();
        let n = graph.num_vertices();
        let expected = map.map_or(1, |m| m.num_shards());
        let full = wal.last_checkpoint_vertices != n || wal.frames.len() != expected;
        let mut frames_encoded = 0u32;
        let mut frames_reused = 0u32;
        let frames: Vec<SnapshotFrame> = if full {
            frames_encoded = expected as u32;
            sac_wal::encode_frames(graph, positions, map)
        } else {
            (0..expected)
                .map(|s| {
                    let dirty = wal.dirty_since_checkpoint.get(s).copied().unwrap_or(true);
                    if dirty {
                        frames_encoded += 1;
                        sac_wal::encode_frame(graph, positions, map, s as u32)
                    } else {
                        frames_reused += 1;
                        wal.frames[s].clone()
                    }
                })
                .collect()
        };
        let snapshot_bytes = sac_wal::write_snapshot(
            &wal.config.dir,
            epoch,
            positions,
            decomposition.core_numbers(),
            map,
            &frames,
        )?;
        // All records in pre-rotation segments carry epochs <= the snapshot's
        // (commits are serialized with this checkpoint), so everything below
        // the fresh segment is superseded.
        wal.writer.rotate()?;
        let segments_removed = wal.writer.remove_segments_below(wal.writer.segment())?;
        sac_wal::remove_snapshots_below(&wal.config.dir, epoch)?;
        wal.frames = frames;
        wal.last_checkpoint_vertices = n;
        wal.first_live_segment = wal.writer.segment();
        let report = CheckpointReport {
            epoch,
            snapshot_bytes,
            frames_encoded,
            frames_reused,
            segments_removed,
            segment: wal.writer.segment(),
            micros: start.elapsed().as_micros() as u64,
        };
        wal.note_checkpoint(&report, 1);
        if self.engine.observing() {
            self.engine.events().publish(
                "checkpoint",
                format!(
                    "epoch={} bytes={} frames_encoded={} frames_reused={} segments_removed={}",
                    report.epoch,
                    report.snapshot_bytes,
                    report.frames_encoded,
                    report.frames_reused,
                    report.segments_removed
                ),
            );
        }
        Ok(report)
    }

    /// Durably adopts a new leadership term: mirrors it into the WAL
    /// directory's term marker **before** stamping it into the engine, so a
    /// crash between the two leaves the stricter state (recovery
    /// re-establishes at least this term, and any record logged under it
    /// satisfies the monotonicity check).  Terms never regress: adopting a
    /// term at or below the current one is a no-op.  Errors when durability
    /// is disabled — a promotion without a WAL could not fence anything.
    pub fn adopt_term(&self, term: u64) -> Result<(), WalError> {
        if term <= self.engine.term() {
            return Ok(());
        }
        let guard = self.wal.lock().expect("wal state poisoned");
        let wal = guard.as_ref().ok_or(WalError::Disabled)?;
        sac_wal::write_term_marker(&wal.config.dir, term)?;
        self.engine.set_term(term);
        Ok(())
    }

    /// Flushes and fsyncs the WAL and writes the clean-shutdown marker, so
    /// the next boot can skip torn-tail scanning.  Returns `false` (and does
    /// nothing) when durability is disabled.  Mutations still buffered in
    /// the write front are *not* committed — uncommitted work is volatile by
    /// design.
    pub fn shutdown_flush(&self) -> Result<bool, WalError> {
        let _front = self.front.lock().expect("write front poisoned");
        let mut guard = self.wal.lock().expect("wal state poisoned");
        let Some(wal) = guard.as_mut() else {
            return Ok(false);
        };
        wal.writer.sync()?;
        sac_wal::write_clean_marker(&wal.config.dir, self.engine.epoch())?;
        Ok(true)
    }

    /// A point-in-time view of the WAL (`None` when durability is disabled).
    pub fn wal_stats(&self) -> Option<WalStats> {
        let guard = self.wal.lock().expect("wal state poisoned");
        let wal = guard.as_ref()?;
        let dir = sac_wal::scan_dir(&wal.config.dir).unwrap_or_default();
        Some(WalStats {
            dir: wal.config.dir.clone(),
            sync: wal.config.sync,
            segments: dir.segments,
            log_bytes: dir.log_bytes,
            snapshot_bytes: dir.snapshot_bytes,
            last_checkpoint_epoch: wal.last_checkpoint_epoch,
            appended_records: wal.appended_records,
            last_applied_epoch: self.engine.epoch(),
            tail_segment: wal.writer.segment(),
            tail_offset: wal.writer.segment_offset(),
        })
    }

    /// The engine this handle publishes into.
    pub fn engine(&self) -> &Arc<SacEngine> {
        &self.engine
    }

    /// Number of mutations buffered since the last commit.
    pub fn pending(&self) -> usize {
        self.front.lock().expect("write front poisoned").delta.len()
    }

    /// A copy of the buffered delta (application order).
    pub fn pending_delta(&self) -> GraphDelta {
        self.front
            .lock()
            .expect("write front poisoned")
            .delta
            .clone()
    }

    /// Inserts the undirected edge `{u, v}` into the write front.
    ///
    /// Returns the incremental core repair (`applied == false` for self-loops
    /// and already-present edges); errors when an endpoint does not exist.
    pub fn add_edge(&self, u: VertexId, v: VertexId) -> Result<EdgeChange, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        let change = front.dynamic.insert_edge(u, v)?;
        if change.applied {
            front.delta.push(Mutation::InsertEdge(u, v));
            front.dirty_up_to = front.dirty_up_to.max(change.dirty_up_to);
            front.cores_changed += change.changed.len() as u64;
            for w in [u, v] {
                let p = front.positions[w as usize];
                front.mark_dirty(&self.map, p);
            }
        }
        Ok(change)
    }

    /// Removes the undirected edge `{u, v}` from the write front.
    pub fn remove_edge(&self, u: VertexId, v: VertexId) -> Result<EdgeChange, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        let change = front.dynamic.remove_edge(u, v)?;
        if change.applied {
            front.delta.push(Mutation::RemoveEdge(u, v));
            front.dirty_up_to = front.dirty_up_to.max(change.dirty_up_to);
            front.cores_changed += change.changed.len() as u64;
            for w in [u, v] {
                let p = front.positions[w as usize];
                front.mark_dirty(&self.map, p);
            }
        }
        Ok(change)
    }

    /// Applies a whole batch of edge mutations in one pass: the core numbers
    /// are repaired once for the delta (shared `O(n + m)` peel for heavy
    /// batches) instead of once per edge — see
    /// [`sac_graph::DynamicGraph::apply_batch_with`].  The applied ops join
    /// the pending delta exactly as the equivalent single-edge calls would.
    pub fn apply_batch(&self, ops: &[BatchOp]) -> Result<BatchApplyReport, GraphError> {
        self.apply_batch_with(ops, BatchStrategy::Auto)
    }

    /// [`LiveEngine::apply_batch`] with an explicit repair strategy.
    pub fn apply_batch_with(
        &self,
        ops: &[BatchOp],
        strategy: BatchStrategy,
    ) -> Result<BatchApplyReport, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        let change: BatchChange = front.dynamic.apply_batch_with(ops, strategy)?;
        for op in &change.applied {
            let (u, v) = op.endpoints();
            front.delta.push(match op {
                BatchOp::Insert(..) => Mutation::InsertEdge(u, v),
                BatchOp::Remove(..) => Mutation::RemoveEdge(u, v),
            });
            for w in [u, v] {
                let p = front.positions[w as usize];
                front.mark_dirty(&self.map, p);
            }
        }
        front.dirty_up_to = front.dirty_up_to.max(change.dirty_up_to);
        front.cores_changed += change.changed.len() as u64;
        if self.obs.enabled {
            let (applies, repair) = if change.recomputed {
                (&self.obs.shared_peel_applies, &self.obs.shared_peel_repair)
            } else {
                (&self.obs.per_edge_applies, &self.obs.per_edge_repair)
            };
            applies.inc();
            repair.record(change.repair_micros);
            let strategy = if change.recomputed {
                "shared_peel"
            } else {
                "per_edge"
            };
            self.engine.events().publish(
                "batch_apply",
                format!(
                    "strategy={} ops={} applied={} cores_changed={}",
                    strategy,
                    ops.len(),
                    change.applied.len(),
                    change.changed.len()
                ),
            );
        }
        Ok(BatchApplyReport {
            ops: ops.len(),
            applied: change.applied.len(),
            cores_changed: change.changed.len(),
            dirty_up_to: change.dirty_up_to,
            recomputed: change.recomputed,
            repair_micros: change.repair_micros,
        })
    }

    /// Adds a new vertex at `position` (core number 0 until edges attach it)
    /// and returns its id.
    pub fn add_vertex(&self, position: Point) -> Result<VertexId, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        if !position.is_finite() {
            return Err(GraphError::InvalidPosition(
                front.dynamic.num_vertices() as VertexId
            ));
        }
        let v = front.dynamic.add_vertex();
        front.positions.push(position);
        front.delta.push(Mutation::AddVertex(position));
        front.mark_dirty(&self.map, position);
        Ok(v)
    }

    /// Moves an existing vertex to `position` — a **position-only** update:
    /// core numbers are untouched, so the commit publishing it is grid-only
    /// (`dirty_up_to` stays 0 and every per-`k` index carries over).
    ///
    /// Moving a vertex to its current position is a no-op (`Ok(false)`).
    pub fn move_vertex(&self, v: VertexId, position: Point) -> Result<bool, GraphError> {
        let mut front = self.front.lock().expect("write front poisoned");
        if (v as usize) >= front.positions.len() {
            return Err(GraphError::VertexOutOfRange(v));
        }
        if !position.is_finite() {
            return Err(GraphError::InvalidPosition(v));
        }
        let old = front.positions[v as usize];
        if old == position {
            return Ok(false);
        }
        front.positions[v as usize] = position;
        front.delta.push(Mutation::MoveVertex(v, position));
        // Both the vacated and the entered shard coverages change.
        front.mark_dirty(&self.map, old);
        front.mark_dirty(&self.map, position);
        Ok(true)
    }

    /// Rebuilds the immutable snapshot from the write front and publishes it
    /// as the engine's next epoch.
    ///
    /// The CSR adjacency and the spatial grid index are rebuilt once per
    /// commit (`O(n + m)`), but the core decomposition is **not** recomputed —
    /// the incrementally maintained numbers are published as-is, and the
    /// engine carries over every cached per-`k` component index the delta did
    /// not touch.  An empty delta publishes nothing and reports the current
    /// epoch.
    ///
    /// With durability enabled, the delta's record is appended to the WAL
    /// (and fsynced per the [`sac_wal::SyncPolicy`]) **before** the epoch
    /// swap: a crash after the append replays the commit, a crash before it
    /// loses only what was never acknowledged.  A WAL append failure leaves
    /// the mutations buffered and publishes nothing.
    pub fn commit(&self) -> Result<CommitReport, CommitError> {
        let mut front = self.front.lock().expect("write front poisoned");
        if front.delta.is_empty() {
            return Ok(CommitReport {
                epoch: self.engine.epoch(),
                mutations: 0,
                edges_inserted: 0,
                edges_removed: 0,
                vertices_added: 0,
                vertices_moved: 0,
                cores_changed: 0,
                dirty_up_to: 0,
                components_carried: 0,
                components_invalidated: 0,
                shards_rebuilt: 0,
                shards_carried: 0,
                micros: 0,
                snapshot_build_micros: 0,
                rebuild_micros: 0,
                swap_micros: 0,
            });
        }
        let start = Instant::now();
        let build_span = if self.obs.enabled {
            Span::start(&self.obs.snapshot_build)
        } else {
            Span::disabled()
        };
        let graph = front.dynamic.to_graph();
        let decomposition = front.dynamic.decomposition();
        let snapshot = SpatialGraph::new(graph, front.positions.clone())?;
        let snapshot_build_micros = build_span.finish();
        let dirty_up_to = front.dirty_up_to;
        // Clean shards (no mutation touched their coverage) carry their
        // induced snapshot across the epoch swap; only dirty ones rebuild.
        let dirty_shards = std::mem::take(&mut front.dirty_shards);
        // Write-ahead: the record must be on the log (durable per policy)
        // before the epoch swap makes the commit visible.  The wal lock is
        // held across the publish so a concurrent checkpoint can never cut
        // the log between this record and its epoch.
        let mut wal_guard = self.wal.lock().expect("wal state poisoned");
        if let Some(wal) = wal_guard.as_mut() {
            let record = DeltaRecord {
                epoch: self.engine.epoch() + 1,
                term: self.engine.term(),
                ops: wal_ops(&front.delta),
            };
            match wal.writer.append(&record) {
                Ok(info) => wal.note_append(&info, &dirty_shards),
                Err(e) => {
                    // Nothing published: restore the dirty flags so a retry
                    // still rebuilds the right shards.
                    front.dirty_shards = dirty_shards;
                    return Err(CommitError::Wal(e.into()));
                }
            }
        }
        let report = self.engine.publish_update(
            Arc::new(snapshot),
            decomposition,
            dirty_up_to,
            (!dirty_shards.is_empty()).then_some(dirty_shards.as_slice()),
        );
        front.dirty_shards = vec![false; dirty_shards.len()];
        let delta = std::mem::take(&mut front.delta);
        let cores_changed = std::mem::take(&mut front.cores_changed);
        front.dirty_up_to = 0;
        if self.obs.enabled {
            self.obs.commits.inc();
            self.obs
                .commit_micros
                .record(start.elapsed().as_micros() as u64);
            self.obs
                .dirty_shards
                .add(dirty_shards.iter().filter(|&&d| d).count() as u64);
        }
        if let Some(wal) = wal_guard.as_mut() {
            wal.commits_since_checkpoint += 1;
            if wal.config.checkpoint_every > 0
                && wal.commits_since_checkpoint >= wal.config.checkpoint_every
            {
                self.run_checkpoint(wal).map_err(CommitError::Wal)?;
            }
        }
        Ok(CommitReport {
            epoch: report.epoch,
            mutations: delta.len(),
            edges_inserted: delta.edges_inserted(),
            edges_removed: delta.edges_removed(),
            vertices_added: delta.vertices_added(),
            vertices_moved: delta.vertices_moved(),
            cores_changed,
            dirty_up_to,
            components_carried: report.components_carried,
            components_invalidated: report.components_invalidated,
            shards_rebuilt: report.shards_rebuilt,
            shards_carried: report.shards_carried,
            micros: start.elapsed().as_micros() as u64,
            snapshot_build_micros,
            rebuild_micros: report.rebuild_micros,
            swap_micros: report.swap_micros,
        })
    }
}

// The handle is shared across writer threads alongside the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LiveEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_engine::{QueryBudget, SacRequest};
    use sac_graph::core_decomposition;

    fn live() -> LiveEngine {
        LiveEngine::new(Arc::new(SacEngine::new(figure3_graph())))
    }

    #[test]
    fn mutations_buffer_until_commit() {
        let live = live();
        let engine = Arc::clone(live.engine());
        let before = engine.snapshot();

        let v = live.add_vertex(Point::new(0.5, 0.5)).unwrap();
        live.add_edge(v, figure3::Q).unwrap();
        live.add_edge(v, figure3::A).unwrap();
        assert_eq!(live.pending(), 3);
        // The served snapshot is untouched until commit.
        assert_eq!(engine.snapshot().num_vertices(), before.num_vertices());

        let report = live.commit().unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.mutations, 3);
        assert_eq!(report.edges_inserted, 2);
        assert_eq!(report.vertices_added, 1);
        assert_eq!(live.pending(), 0);
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.num_vertices(), before.num_vertices() + 1);
        assert!(snapshot.graph().has_edge(v, figure3::Q));
        // Published core numbers equal a fresh decomposition.
        assert_eq!(
            engine.decomposition().core_numbers(),
            core_decomposition(snapshot.graph()).core_numbers()
        );
    }

    #[test]
    fn committed_updates_change_query_answers() {
        let live = live();
        let engine = Arc::clone(live.engine());
        // I (pendant) has no 2-core community on epoch 1.
        let req = SacRequest::new(1, figure3::I, 2).with_budget(QueryBudget::exact());
        assert!(engine.execute(&req).community().is_none());

        // Close the triangle F–G–H–I: now I belongs to a 2-core.
        live.add_edge(figure3::I, figure3::F).unwrap();
        let report = live.commit().unwrap();
        assert!(report.cores_changed >= 1);
        let response = engine.execute(&req);
        let community = response.community().expect("I joined a 2-core");
        assert!(community.contains(figure3::I));
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let live = live();
        let before = live.engine().epoch();
        let report = live.commit().unwrap();
        assert_eq!(report.epoch, before);
        assert_eq!(report.mutations, 0);
        assert_eq!(live.engine().epoch(), before);
    }

    #[test]
    fn noop_mutations_do_not_grow_the_delta() {
        let live = live();
        // Q–A already exists in the fixture.
        let change = live.add_edge(figure3::Q, figure3::A).unwrap();
        assert!(!change.applied);
        let change = live.remove_edge(figure3::Q, figure3::I).unwrap(); // absent edge
        assert!(!change.applied);
        assert_eq!(live.pending(), 0);
        assert!(live.add_edge(figure3::Q, 999).is_err());
        assert!(live.add_vertex(Point::new(f64::NAN, 0.0)).is_err());
        assert_eq!(live.pending(), 0);
    }

    #[test]
    fn move_vertex_publishes_grid_only_epochs() {
        let live = live();
        let engine = Arc::clone(live.engine());
        engine.warm(&[1, 2]);
        // Position-only update: no core maintenance, dirty_up_to stays 0.
        assert!(live
            .move_vertex(figure3::Q, Point::new(10.0, 10.0))
            .unwrap());
        assert!(!live
            .move_vertex(figure3::Q, Point::new(10.0, 10.0))
            .unwrap());
        let report = live.commit().unwrap();
        assert_eq!(report.vertices_moved, 1);
        assert_eq!(report.dirty_up_to, 0);
        assert_eq!(report.cores_changed, 0);
        // Grid-only: every warmed per-k index carried across.
        assert_eq!(report.components_carried, 2);
        assert_eq!(report.components_invalidated, 0);
        // The new position is live in the snapshot and its spatial index.
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.position(figure3::Q), Point::new(10.0, 10.0));
        assert!(snapshot
            .vertices_in_circle(&sac_geom::Circle::new(Point::new(10.0, 10.0), 0.1))
            .contains(&figure3::Q));
        // Invalid moves are typed errors.
        assert!(live.move_vertex(999, Point::ORIGIN).is_err());
        assert!(live
            .move_vertex(figure3::Q, Point::new(f64::NAN, 0.0))
            .is_err());
    }

    #[test]
    fn batch_apply_flows_into_the_delta() {
        use sac_graph::{connected_kcore, BatchOp};

        let live = live();
        let engine = Arc::clone(live.engine());
        let report = live
            .apply_batch(&[
                BatchOp::Insert(figure3::I, figure3::F), // closes a 2-core for I
                BatchOp::Insert(figure3::I, figure3::F), // duplicate: no-op
                BatchOp::Remove(figure3::Q, 999),        // would be an error
            ])
            .unwrap_err();
        // One bad endpoint poisons the whole batch, atomically.
        let _ = report;
        assert_eq!(live.pending(), 0);

        let report = live
            .apply_batch(&[
                BatchOp::Insert(figure3::I, figure3::F),
                BatchOp::Insert(figure3::I, figure3::F),
            ])
            .unwrap();
        assert_eq!(report.ops, 2);
        assert_eq!(report.applied, 1);
        assert!(report.cores_changed >= 1);
        assert_eq!(live.pending(), 1);
        let commit = live.commit().unwrap();
        assert_eq!(commit.edges_inserted, 1);
        // The published epoch answers like a fresh build.
        let snapshot = engine.snapshot();
        assert_eq!(
            engine.connected_core(figure3::I, 2),
            connected_kcore(snapshot.graph(), figure3::I, 2)
        );
    }

    #[test]
    fn sharded_commits_republish_only_dirty_shards() {
        use sac_engine::SacEngine;

        let engine = Arc::new(SacEngine::with_shards(figure3_graph(), 2));
        let live = LiveEngine::new(Arc::clone(&engine));
        // The fixture's left component (Q, A..E) and right component (F..I)
        // land in different shards under the median split.  Mutating only the
        // right component must leave the left shard's snapshot carried.
        live.remove_edge(figure3::H, figure3::I).unwrap();
        let report = live.commit().unwrap();
        assert_eq!(
            report.shards_rebuilt + report.shards_carried,
            2,
            "every shard accounted for"
        );
        assert!(report.shards_rebuilt >= 1);
        assert!(
            report.shards_carried >= 1,
            "a localized delta must carry the untouched shard"
        );
        // Queries still answer identically to an unsharded engine on the new
        // epoch.
        let unsharded = SacEngine::new(
            sac_graph::SpatialGraph::new(
                engine.snapshot().graph().clone(),
                engine.snapshot().positions().to_vec(),
            )
            .unwrap(),
        );
        for q in 0..10u32 {
            let req = SacRequest::new(1, q, 2).with_budget(QueryBudget::exact());
            assert_eq!(
                engine
                    .execute(&req)
                    .community()
                    .map(|c| c.members().to_vec()),
                unsharded
                    .execute(&req)
                    .community()
                    .map(|c| c.members().to_vec()),
                "q={q}"
            );
        }
        // Vertex additions invalidate every shard (id-space change).
        live.add_vertex(Point::new(0.5, 0.5)).unwrap();
        let report = live.commit().unwrap();
        assert_eq!(report.shards_rebuilt, 2);
        assert_eq!(report.shards_carried, 0);
    }

    #[test]
    fn commit_pipeline_records_into_the_shared_registry() {
        use sac_graph::BatchOp;

        let live = live();
        let report = live
            .apply_batch(&[BatchOp::Insert(figure3::I, figure3::F)])
            .unwrap();
        assert!(!report.recomputed, "tiny batches repair per edge");
        live.commit().unwrap();
        // Commit + batch series land in the engine's registry, so one
        // exposition covers the whole serving stack.
        let text = live.engine().metrics_text();
        for needle in [
            "sac_commits_total 1",
            "sac_commit_micros_count 1",
            "sac_commit_stage_micros_count{stage=\"snapshot_build\"} 1",
            "sac_batch_applies_total{strategy=\"per_edge\"} 1",
            "sac_batch_repair_micros_count{strategy=\"per_edge\"} 1",
            // The engine's own publish stages fired under this commit.
            "sac_publish_stage_micros_count{stage=\"epoch_swap\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Unsharded engine: no shard was ever dirty.
        assert!(text.contains("sac_commit_dirty_shards_total 0"), "{text}");
    }

    #[test]
    fn sharded_commit_counts_dirty_shards() {
        let engine = Arc::new(SacEngine::with_shards(figure3_graph(), 2));
        let live = LiveEngine::new(Arc::clone(&engine));
        live.remove_edge(figure3::H, figure3::I).unwrap();
        let report = live.commit().unwrap();
        let text = engine.metrics_text();
        let expected = format!("sac_commit_dirty_shards_total {}", report.shards_rebuilt);
        assert!(text.contains(&expected), "missing {expected} in:\n{text}");
    }

    #[test]
    fn selective_invalidation_carries_untouched_k() {
        let live = live();
        let engine = Arc::clone(live.engine());
        engine.warm(&[1, 2]);

        // Removing the pendant edge H–I only dirties k <= 1.
        live.remove_edge(figure3::H, figure3::I).unwrap();
        let report = live.commit().unwrap();
        assert_eq!(report.dirty_up_to, 1);
        assert_eq!(report.components_carried, 1); // k = 2 survived
        assert_eq!(report.components_invalidated, 1); // k = 1 dropped
    }
}
