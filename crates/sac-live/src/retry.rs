//! Reconnect policy for the replication link: capped exponential backoff
//! with deterministic jitter and a per-attempt timeout.
//!
//! Jitter is derived from a seed and the attempt number (a splitmix64 hash,
//! no global RNG), so a test that pins the seed gets the exact same backoff
//! schedule every run — the replication proptest depends on that.

use std::time::Duration;

/// Backoff/timeout policy driving replication reconnects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub max: Duration,
    /// Growth factor per attempt (`delay = base * multiplier^attempt`).
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a deterministic
    /// factor drawn from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Socket/handshake timeout for each individual attempt.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.2,
            attempt_timeout: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based), jittered
    /// deterministically from `seed`.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self.multiplier.max(1.0).powi(attempt.min(63) as i32);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.max.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        // splitmix64 over (seed, attempt) → uniform in [0, 1).
        let unit =
            (splitmix64(seed ^ (u64::from(attempt) << 32)) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - jitter + 2.0 * jitter * unit;
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_saturates_and_stays_within_jitter_bounds() {
        let policy = RetryPolicy::default();
        let mut last = Duration::ZERO;
        for attempt in 0..12 {
            let d = policy.delay(attempt, 7);
            let nominal = (policy.base.as_secs_f64() * 2f64.powi(attempt as i32))
                .min(policy.max.as_secs_f64());
            assert!(
                d.as_secs_f64() >= nominal * 0.8 - 1e-9 && d.as_secs_f64() <= nominal * 1.2 + 1e-9,
                "attempt {attempt}: {d:?} outside jitter band of {nominal}s"
            );
            // Even with jitter, capped growth keeps later delays from
            // collapsing below much-earlier ones.
            if attempt >= 2 {
                assert!(
                    d >= last / 4,
                    "attempt {attempt} regressed: {d:?} < {last:?}/4"
                );
            }
            last = d;
        }
        // Saturation: far-out attempts sit at the cap (± jitter).
        let d = policy.delay(40, 7);
        assert!(d >= policy.max.mul_f64(0.8) && d <= policy.max.mul_f64(1.2));
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            assert_eq!(policy.delay(attempt, 42), policy.delay(attempt, 42));
        }
        assert_ne!(policy.delay(3, 1), policy.delay(3, 2));
    }

    #[test]
    fn golden_schedule_is_pinned_for_seed_42() {
        // Golden values captured from this implementation.  Any drift in the
        // backoff formula or the jitter hash changes the reconnect cadence
        // operators tune around, so it must show up here as a deliberate
        // edit, not as silent skew.
        let policy = RetryPolicy::default();
        const GOLDEN_NANOS: [(u32, u64); 12] = [
            (0, 54_831_298),
            (1, 92_192_895),
            (2, 171_095_015),
            (3, 430_061_051),
            (4, 823_201_407),
            (5, 1_456_385_634),
            (6, 1_767_454_415),
            (7, 2_137_497_463),
            (8, 2_165_768_512),
            (9, 1_933_182_488),
            (63, 2_065_793_906),
            (1000, 1_675_288_592),
        ];
        for (attempt, nanos) in GOLDEN_NANOS {
            assert_eq!(
                policy.delay(attempt, 42),
                Duration::from_nanos(nanos),
                "attempt {attempt} drifted from the pinned schedule"
            );
        }
        // Cap pinning: once `base * multiplier^n` crosses `max`, every later
        // delay sits in the jittered cap band [1.6 s, 2.4 s] forever —
        // including attempts far past the exponent clamp at 63.
        for attempt in [6, 7, 20, 40, 63, 64, 1000] {
            let d = policy.delay(attempt, 42);
            assert!(
                d >= Duration::from_millis(1600) && d <= Duration::from_millis(2400),
                "attempt {attempt} escaped the cap band: {d:?}"
            );
        }
        // Monotone growth of the jitter-stripped schedule up to saturation.
        let exact = RetryPolicy {
            jitter: 0.0,
            ..policy
        };
        let mut last = Duration::ZERO;
        for attempt in 0..=6 {
            let d = exact.delay(attempt, 42);
            assert!(
                d > last,
                "attempt {attempt} did not grow: {d:?} <= {last:?}"
            );
            last = d;
        }
        assert_eq!(exact.delay(7, 42), exact.delay(63, 42), "cap saturates");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.delay(0, 9), policy.base);
        assert_eq!(policy.delay(2, 9), policy.base * 4);
        assert_eq!(policy.delay(63, 9), policy.max);
    }
}
