//! The transport-agnostic protocol service: typed requests in, typed
//! responses out.
//!
//! Every transport (LDJSON over stdin/stdout, HTTP/1.1 over a socket, an
//! in-process test harness) decodes bytes into a
//! [`ProtoRequest`](sac_proto::ProtoRequest), calls [`SacService::handle`],
//! and encodes the returned [`ProtoResponse`](sac_proto::ProtoResponse) — the
//! service owns *all* protocol semantics, so transports cannot drift apart.

use crate::replication::{Replica, ReplicaStatus};
use crate::LiveEngine;
use sac_engine::SacEngine;
use sac_obs::TraceNode;
use sac_obs::{Counter, Histogram, Span};
use sac_proto::{
    CheckpointReply, CommitReply, CoreReply, EncodeOptions, EventsReply, MutationReply,
    ProtoRequest, ProtoResponse, QueryReply, SlowLogReply, StatsReply, VertexReply, WalStatsReply,
};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Which side of the replication link a [`SacService`] currently serves.
///
/// A service's role can change at runtime: failover (see [`crate::failover`])
/// promotes a replica-fronting service to primary in place, passing through
/// the transient [`Role::Candidate`] while the swap is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes and (optionally) ships its WAL to replicas.
    Primary,
    /// Serves reads from a tailed log; mutations are redirected.
    Replica,
    /// Mid-promotion: the replica link is stopped but the write path is not
    /// yet open.
    Candidate,
}

impl Role {
    /// The wire spelling used by `/healthz` and the probe handshake.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
            Role::Candidate => "candidate",
        }
    }

    fn from_u8(value: u8) -> Role {
        match value {
            1 => Role::Replica,
            2 => Role::Candidate,
            _ => Role::Primary,
        }
    }
}

/// Tunables of a [`SacService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads batched queries are fanned across.
    pub threads: usize,
    /// Response-encoding options (member lists, timing fields).
    pub encode: EncodeOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            encode: EncodeOptions::default(),
        }
    }
}

/// Per-transport-stage instruments shared by every front end, registered in
/// the engine's metric registry so `GET /metrics` covers the transports too.
///
/// The decode/handle/encode stages are transport-agnostic (both front ends
/// run the same codec); the read/write stages and the response-status
/// counters are labelled per transport in [`crate::http`] and
/// [`crate::ldjson`].
#[derive(Debug)]
pub(crate) struct ServiceObs {
    enabled: bool,
    decode: Arc<Histogram>,
    handle: Arc<Histogram>,
    encode: Arc<Histogram>,
    /// `sac_transport_io_micros{transport="http"|"ldjson",op="read"|"write"}`.
    pub(crate) http_read: Arc<Histogram>,
    pub(crate) http_write: Arc<Histogram>,
    pub(crate) ldjson_read: Arc<Histogram>,
    pub(crate) ldjson_write: Arc<Histogram>,
    /// `sac_http_responses_total{status=…}`, pre-bound for every status the
    /// front end can emit (plus a catch-all).
    statuses: Vec<(&'static str, Arc<Counter>)>,
}

impl ServiceObs {
    fn new(engine: &SacEngine) -> ServiceObs {
        let registry = engine.metrics();
        let stage = |stage: &'static str| {
            registry.histogram(
                "sac_request_stage_micros",
                "Transport-agnostic request pipeline stage latency, microseconds",
                &[("stage", stage)],
            )
        };
        let io = |transport: &'static str, op: &'static str| {
            registry.histogram(
                "sac_transport_io_micros",
                "Transport socket/stream IO latency, microseconds",
                &[("transport", transport), ("op", op)],
            )
        };
        const STATUSES: [&str; 8] = ["200", "400", "404", "405", "408", "413", "501", "other"];
        ServiceObs {
            enabled: engine.observing(),
            decode: stage("decode"),
            handle: stage("handle"),
            encode: stage("encode"),
            http_read: io("http", "read"),
            http_write: io("http", "write"),
            ldjson_read: io("ldjson", "read"),
            ldjson_write: io("ldjson", "write"),
            statuses: STATUSES
                .iter()
                .map(|&status| {
                    (
                        status,
                        registry.counter(
                            "sac_http_responses_total",
                            "HTTP responses by status code",
                            &[("status", status)],
                        ),
                    )
                })
                .collect(),
        }
    }

    /// A span over `hist`, or a disabled (record-nowhere) span when
    /// observation is off.
    pub(crate) fn span<'a>(&self, hist: &'a Histogram) -> Span<'a> {
        if self.enabled {
            Span::start(hist)
        } else {
            Span::disabled()
        }
    }

    /// Counts one HTTP response by its status line (e.g. `"200 OK"`).
    pub(crate) fn count_status(&self, status_line: &str) {
        if !self.enabled {
            return;
        }
        let code = status_line.split_whitespace().next().unwrap_or("other");
        let counter = self
            .statuses
            .iter()
            .find(|(status, _)| *status == code)
            .or_else(|| self.statuses.last())
            .map(|(_, counter)| counter);
        if let Some(counter) = counter {
            counter.inc();
        }
    }
}

/// The shared protocol service: one typed API every transport is a thin
/// shell over.
///
/// `handle` returns `None` exactly once — for [`ProtoRequest::Quit`] — which
/// transports interpret as "end this session" (the LDJSON loop stops, an
/// HTTP connection closes).
#[derive(Debug)]
pub struct SacService {
    /// The live front requests run against, swappable so failover can
    /// promote a replica to a writable primary without restarting the
    /// transports (they hold the service, not the engine).
    live: RwLock<Arc<LiveEngine>>,
    config: ServiceConfig,
    obs: ServiceObs,
    /// Process-start clock for the `uptime_secs` fields of `stats` and
    /// `/healthz`.
    started: Instant,
    /// Set on read replicas: mutation requests are answered with a typed
    /// redirect to the primary instead of being applied.  Cleared when
    /// failover promotes this service.
    replica: RwLock<Option<Arc<ReplicaStatus>>>,
    /// The owned replica link (tailer thread handle), consumed by promotion.
    handle: Mutex<Option<Replica>>,
    /// Current [`Role`], stored as its discriminant.
    role: AtomicU8,
}

impl SacService {
    /// A service over a fresh live front for `engine`.
    pub fn new(engine: Arc<SacEngine>, config: ServiceConfig) -> Self {
        SacService::with_live(LiveEngine::new(engine), config)
    }

    /// A service over an existing live front.
    pub fn with_live(live: LiveEngine, config: ServiceConfig) -> Self {
        let obs = ServiceObs::new(live.engine());
        SacService {
            live: RwLock::new(Arc::new(live)),
            config,
            obs,
            started: Instant::now(),
            replica: RwLock::new(None),
            handle: Mutex::new(None),
            role: AtomicU8::new(Role::Primary as u8),
        }
    }

    /// A read-only service over a booted [`Replica`]: queries run against
    /// the replica's converging engine, mutations get a redirect to the
    /// primary, and `stats`/`/healthz` report replication lag and health.
    ///
    /// The service takes ownership of the replica so failover (see
    /// [`crate::failover`]) can stop the link and promote the engine in
    /// place.
    pub fn for_replica(replica: Replica, config: ServiceConfig) -> Self {
        let service = SacService::with_live(LiveEngine::new(Arc::clone(replica.engine())), config);
        *service.replica.write().expect("replica lock poisoned") =
            Some(Arc::clone(replica.status()));
        *service.handle.lock().expect("replica handle poisoned") = Some(replica);
        service.set_role(Role::Replica);
        service
    }

    /// The replication status when this service fronts a replica (`None`
    /// once failover promotes it).
    pub fn replica_status(&self) -> Option<Arc<ReplicaStatus>> {
        self.replica.read().expect("replica lock poisoned").clone()
    }

    /// The role this service currently serves in.
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    /// Moves the service to `role` (failover transitions).
    pub fn set_role(&self, role: Role) {
        self.role.store(role as u8, Ordering::Release);
    }

    /// Takes the owned replica link out of the service (promotion consumes
    /// it; shutdown paths may stop it).
    pub(crate) fn take_replica(&self) -> Option<Replica> {
        self.handle.lock().expect("replica handle poisoned").take()
    }

    /// Stops the owned replica link, if any (orderly shutdown of a
    /// replica-fronting service).
    pub fn stop_replica(&self) {
        if let Some(replica) = self.take_replica() {
            replica.stop();
        }
    }

    /// Installs a new (writable) live front and clears the replica state:
    /// the final step of a promotion.  Requests that started on the old
    /// front finish there; new requests see the primary engine.
    pub(crate) fn install_live(&self, live: LiveEngine) {
        *self.live.write().expect("service live lock poisoned") = Arc::new(live);
        *self.replica.write().expect("replica lock poisoned") = None;
        self.set_role(Role::Primary);
    }

    /// The engine queries run against.
    pub fn engine(&self) -> Arc<SacEngine> {
        Arc::clone(self.live().engine())
    }

    /// The live-update front mutations go through (a clone of the current
    /// handle: failover may swap the front under a running service).
    pub fn live(&self) -> Arc<LiveEngine> {
        Arc::clone(&self.live.read().expect("service live lock poisoned"))
    }

    /// The encoding options transports must encode responses with.
    pub fn encode_options(&self) -> EncodeOptions {
        self.config.encode
    }

    /// Seconds since this service was constructed.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The Prometheus text exposition (the `GET /metrics` payload): engine
    /// counters, per-tier/per-algorithm latency histograms, commit-pipeline
    /// spans and transport series — everything registered in the engine's
    /// shared registry.
    pub fn metrics_text(&self) -> String {
        self.engine().metrics_text()
    }

    /// The transport instrumentation handles (crate-internal).
    pub(crate) fn obs(&self) -> &ServiceObs {
        &self.obs
    }

    /// Handles one typed request; `None` means "quit" (the transport ends
    /// the session without a reply).
    pub fn handle(&self, request: &ProtoRequest) -> Option<ProtoResponse> {
        let live = self.live();
        let engine = live.engine();
        if let Some(status) = self.replica_status() {
            // A replica's state is exactly the primary's log replayed; a
            // local write would fork it.  Send writers where the WAL is.
            if matches!(
                request,
                ProtoRequest::AddEdge { .. }
                    | ProtoRequest::RemoveEdge { .. }
                    | ProtoRequest::AddVertex { .. }
                    | ProtoRequest::MoveVertex { .. }
                    | ProtoRequest::Commit { .. }
                    | ProtoRequest::Checkpoint
            ) {
                return Some(ProtoResponse::redirect(
                    "read-only replica: mutations must go to the primary",
                    status.primary(),
                ));
            }
        }
        Some(match request {
            ProtoRequest::Quit => return None,
            ProtoRequest::Query(spec) => match spec.to_request(0) {
                Err(e) => ProtoResponse::Query(QueryReply::rejected(spec, 0, &e)),
                Ok(request) => ProtoResponse::Query(QueryReply::from_response(
                    &engine.execute(&request),
                    self.config.encode,
                )),
            },
            ProtoRequest::Batch(specs) => {
                // Build-validate every spec first; invalid budgets become
                // per-query `rejected` replies while the valid remainder is
                // fanned across the worker pool in one batch.
                let mut replies: Vec<Option<QueryReply>> = vec![None; specs.len()];
                let mut requests = Vec::with_capacity(specs.len());
                let mut positions = Vec::with_capacity(specs.len());
                for (i, spec) in specs.iter().enumerate() {
                    match spec.to_request(i as u64) {
                        Err(e) => replies[i] = Some(QueryReply::rejected(spec, i as u64, &e)),
                        Ok(request) => {
                            requests.push(request);
                            positions.push(i);
                        }
                    }
                }
                let responses = engine.execute_batch(&requests, self.config.threads);
                for (&i, response) in positions.iter().zip(&responses) {
                    replies[i] = Some(QueryReply::from_response(response, self.config.encode));
                }
                ProtoResponse::Batch(
                    replies
                        .into_iter()
                        .map(|r| r.expect("every batch slot is filled"))
                        .collect(),
                )
            }
            ProtoRequest::Stats => {
                let stats = engine.stats();
                let graph = engine.snapshot();
                let mut reply = StatsReply::from_stats(
                    &stats,
                    graph.num_vertices(),
                    graph.num_edges(),
                    live.pending(),
                );
                reply.uptime_secs = Some(self.uptime_secs());
                reply.wal = live.wal_stats().map(|w| WalStatsReply {
                    sync: w.sync.to_string(),
                    segments: w.segments,
                    log_bytes: w.log_bytes,
                    snapshot_bytes: w.snapshot_bytes,
                    last_checkpoint_epoch: w.last_checkpoint_epoch,
                    appended_records: w.appended_records,
                    last_applied_epoch: w.last_applied_epoch,
                    tail_segment: w.tail_segment,
                    tail_offset: w.tail_offset,
                });
                reply.replication = self.replica_status().map(|status| status.stats_reply());
                ProtoResponse::Stats(reply)
            }
            ProtoRequest::Metrics => ProtoResponse::Metrics {
                text: self.metrics_text(),
            },
            ProtoRequest::SlowLog => {
                let slow_log = engine.slow_log();
                ProtoResponse::SlowLog(SlowLogReply {
                    threshold_micros: slow_log.threshold_micros(),
                    dropped: slow_log.dropped(),
                    entries: slow_log.snapshot(),
                })
            }
            ProtoRequest::Warm(ks) => {
                engine.warm(ks);
                ProtoResponse::Warmed { count: ks.len() }
            }
            ProtoRequest::Core { q, k } => ProtoResponse::Core {
                reply: CoreReply {
                    members: engine.connected_core(*q, *k),
                },
                include_members: self.config.encode.members,
            },
            ProtoRequest::AddEdge { u, v } => match live.add_edge(*u, *v) {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(change) => ProtoResponse::Mutation(MutationReply {
                    applied: change.applied,
                    cores_changed: change.changed.len(),
                    pending: live.pending(),
                }),
            },
            ProtoRequest::RemoveEdge { u, v } => match live.remove_edge(*u, *v) {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(change) => ProtoResponse::Mutation(MutationReply {
                    applied: change.applied,
                    cores_changed: change.changed.len(),
                    pending: live.pending(),
                }),
            },
            ProtoRequest::AddVertex { x, y } => {
                match live.add_vertex(sac_geom::Point::new(*x, *y)) {
                    Err(e) => ProtoResponse::error(e.to_string()),
                    Ok(vertex) => ProtoResponse::Vertex(VertexReply {
                        vertex,
                        pending: live.pending(),
                    }),
                }
            }
            ProtoRequest::MoveVertex { v, x, y } => {
                match live.move_vertex(*v, sac_geom::Point::new(*x, *y)) {
                    Err(e) => ProtoResponse::error(e.to_string()),
                    Ok(applied) => ProtoResponse::Mutation(MutationReply {
                        applied,
                        cores_changed: 0,
                        pending: live.pending(),
                    }),
                }
            }
            ProtoRequest::Commit { trace } => match live.commit() {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(report) => ProtoResponse::Commit(CommitReply {
                    epoch: report.epoch,
                    mutations: report.mutations,
                    edges_inserted: report.edges_inserted,
                    edges_removed: report.edges_removed,
                    vertices_added: report.vertices_added,
                    vertices_moved: report.vertices_moved,
                    cores_changed: report.cores_changed,
                    dirty_up_to: report.dirty_up_to,
                    components_carried: report.components_carried,
                    components_invalidated: report.components_invalidated,
                    shards_rebuilt: report.shards_rebuilt,
                    shards_carried: report.shards_carried,
                    micros: Some(report.micros),
                    trace: (*trace && report.mutations > 0).then(|| {
                        let publish_start = report.snapshot_build_micros;
                        TraceNode::new("commit", 0, report.micros)
                            .with_child(TraceNode::new(
                                "snapshot_build",
                                0,
                                report.snapshot_build_micros,
                            ))
                            .with_child(
                                TraceNode::new(
                                    "publish",
                                    publish_start,
                                    report.rebuild_micros + report.swap_micros,
                                )
                                .with_child(TraceNode::new(
                                    "rebuild",
                                    publish_start,
                                    report.rebuild_micros,
                                ))
                                .with_child(TraceNode::new(
                                    "swap",
                                    publish_start + report.rebuild_micros,
                                    report.swap_micros,
                                )),
                            )
                    }),
                }),
            },
            ProtoRequest::Checkpoint => match live.checkpoint() {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(report) => ProtoResponse::Checkpoint(CheckpointReply {
                    epoch: report.epoch,
                    snapshot_bytes: report.snapshot_bytes,
                    frames_encoded: report.frames_encoded,
                    frames_reused: report.frames_reused,
                    segments_removed: report.segments_removed,
                    micros: Some(report.micros),
                }),
            },
            ProtoRequest::Events { since } => {
                ProtoResponse::Events(EventsReply::from_batch(engine.events().since(*since)))
            }
        })
    }

    /// The full LDJSON round trip for one line: decode, handle, encode.
    /// Malformed input becomes an error reply; `None` means "quit".
    ///
    /// Each stage is timed into
    /// `sac_request_stage_micros{stage="decode"|"handle"|"encode"}` (shared
    /// by both transports — they run this same codec).
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let decode_span = self.obs.span(&self.obs.decode);
        let request = ProtoRequest::parse_line(line);
        decode_span.finish();
        let response = match request {
            Err(e) => ProtoResponse::error(e.to_string()),
            Ok(request) => {
                let handle_span = self.obs.span(&self.obs.handle);
                let response = self.handle(&request);
                handle_span.finish();
                response?
            }
        };
        let encode_span = self.obs.span(&self.obs.encode);
        let line = response.encode_line(self.config.encode);
        encode_span.finish();
        Some(line)
    }
}

// One service is shared across transport threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SacService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_proto::QuerySpec;

    fn service() -> SacService {
        SacService::new(
            Arc::new(SacEngine::new(figure3_graph())),
            ServiceConfig::default(),
        )
    }

    #[test]
    fn queries_and_commands_round_trip() {
        let service = service();
        let reply = service
            .handle(&ProtoRequest::Query(QuerySpec::new(figure3::Q, 2)))
            .unwrap();
        let ProtoResponse::Query(reply) = reply else {
            panic!("expected a query reply");
        };
        assert!(matches!(
            reply.result,
            sac_proto::QueryResult::Community { .. }
        ));
        assert_eq!(reply.epoch, 1);

        let ProtoResponse::Stats(stats) = service.handle(&ProtoRequest::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.vertices, 10);

        assert!(service.handle(&ProtoRequest::Quit).is_none());
        assert!(service.handle_line(r#"{"cmd":"quit"}"#).is_none());
    }

    #[test]
    fn metrics_and_slowlog_round_trip_over_the_wire() {
        let service = service();
        let _ = service
            .handle(&ProtoRequest::Query(QuerySpec::new(figure3::Q, 2)))
            .unwrap();
        // The metrics command carries the same exposition text GET /metrics
        // serves raw, embedded as a JSON string.
        let line = service.handle_line(r#"{"cmd":"metrics"}"#).unwrap();
        assert!(line.starts_with(r#"{"ok":true,"metrics":""#), "got: {line}");
        assert!(line.contains("sac_queries_total 1"), "got: {line}");
        assert!(
            line.contains(r#"sac_request_stage_micros_count{stage=\"decode\"}"#),
            "transport stages share the registry, got: {line}"
        );
        // Nothing trips the default 10ms threshold on the tiny fixture.
        let line = service.handle_line(r#"{"cmd":"slowlog"}"#).unwrap();
        assert_eq!(
            line,
            r#"{"ok":true,"threshold_micros":10000,"dropped":0,"entries":[]}"#
        );
        // Stats now reports uptime and (after a query) per-tier latency.
        let line = service.handle_line(r#"{"cmd":"stats"}"#).unwrap();
        assert!(line.contains(r#""uptime_secs":"#), "got: {line}");
        assert!(
            line.contains(r#""tier_latency":[{"label":"interactive","count":0"#),
            "got: {line}"
        );
    }

    #[test]
    fn invalid_budgets_are_rejected_per_query_not_per_batch() {
        let service = service();
        let mut bad = QuerySpec::new(figure3::Q, 2);
        bad.ratio = Some(0.5);
        let batch = ProtoRequest::Batch(vec![QuerySpec::new(figure3::Q, 2), bad]);
        let ProtoResponse::Batch(replies) = service.handle(&batch).unwrap() else {
            panic!("expected a batch reply");
        };
        assert_eq!(replies.len(), 2);
        assert!(matches!(
            replies[0].result,
            sac_proto::QueryResult::Community { .. }
        ));
        assert_eq!(replies[1].plan, "rejected");
        assert!(matches!(
            replies[1].result,
            sac_proto::QueryResult::Error(_)
        ));
        // Rejected queries never reached the engine.
        assert_eq!(service.engine().stats().queries, 1);
    }

    #[test]
    fn algorithm_override_round_trips_over_the_wire() {
        let service = service();
        // The `global` baseline is unreachable through budgets; the explicit
        // wire field dispatches it for A/B comparisons.
        let line = service
            .handle_line(&format!(
                r#"{{"q":{},"k":2,"algorithm":"global"}}"#,
                figure3::Q
            ))
            .unwrap();
        assert!(line.contains(r#""plan":"global""#), "got: {line}");
        assert!(line.contains(r#""feasible":true"#), "got: {line}");
        // Unknown names are typed per-query rejections, not transport errors.
        let bad = service
            .handle_line(&format!(
                r#"{{"q":{},"k":2,"algorithm":"warp"}}"#,
                figure3::Q
            ))
            .unwrap();
        assert!(bad.contains(r#""plan":"rejected""#), "got: {bad}");
    }

    #[test]
    fn move_vertex_round_trips_over_the_wire() {
        let service = service();
        let line = service
            .handle_line(&format!(
                r#"{{"cmd":"move_vertex","v":{},"x":42.0,"y":42.0}}"#,
                figure3::Q
            ))
            .unwrap();
        assert!(line.contains(r#""applied":true"#), "got: {line}");
        assert!(line.contains(r#""cores_changed":0"#));
        let commit = service.handle_line(r#"{"cmd":"commit"}"#).unwrap();
        assert!(commit.contains(r#""vertices_moved":1"#), "got: {commit}");
        assert!(commit.contains(r#""dirty_up_to":0"#), "grid-only epoch");
        // Out-of-range moves are error replies, not panics.
        let err = service
            .handle_line(r#"{"cmd":"move_vertex","v":999,"x":0,"y":0}"#)
            .unwrap();
        assert!(err.contains(r#""ok":false"#));
    }

    #[test]
    fn events_and_traces_round_trip_over_the_wire() {
        let service = service();
        // The event log is empty until something structural happens.
        let line = service.handle_line(r#"{"cmd":"events"}"#).unwrap();
        assert_eq!(line, r#"{"ok":true,"next_seq":0,"missed":0,"events":[]}"#);
        // A traced commit returns the stage tree alongside the counts.
        service
            .handle(&ProtoRequest::AddEdge {
                u: figure3::I,
                v: figure3::F,
            })
            .unwrap();
        let ProtoResponse::Commit(commit) = service
            .handle(&ProtoRequest::Commit { trace: true })
            .unwrap()
        else {
            panic!("expected a commit reply");
        };
        let tree = commit.trace.expect("trace requested");
        assert_eq!(tree.name, "commit");
        let stages: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(stages, ["snapshot_build", "publish"]);
        let publish = &tree.children[1];
        let stages: Vec<&str> = publish.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(stages, ["rebuild", "swap"]);
        // An untraced empty commit returns no tree.
        let ProtoResponse::Commit(commit) = service
            .handle(&ProtoRequest::Commit { trace: true })
            .unwrap()
        else {
            panic!("expected a commit reply");
        };
        assert_eq!(commit.mutations, 0);
        assert!(commit.trace.is_none(), "empty commits have no stages");
        // The epoch swap landed in the event log; the cursor pages past it.
        let line = service.handle_line(r#"{"cmd":"events"}"#).unwrap();
        assert!(line.contains(r#""kind":"epoch_swap""#), "got: {line}");
        assert!(line.contains(r#""at_micros":"#), "got: {line}");
        let line = service
            .handle_line(r#"{"cmd":"events","since":1}"#)
            .unwrap();
        assert!(line.contains(r#""events":[]"#), "got: {line}");
        // A traced query carries its span tree on the wire.
        let line = service
            .handle_line(&format!(r#"{{"q":{},"k":2,"trace":true}}"#, figure3::Q))
            .unwrap();
        assert!(line.contains(r#""trace":{"name":"query""#), "got: {line}");
    }

    #[test]
    fn checkpoint_and_wal_stats_round_trip_over_the_wire() {
        // Without durability the admin command is a typed error and stats
        // stay byte-identical to the historical layout (no `wal` object).
        let service = service();
        let err = service.handle_line(r#"{"cmd":"checkpoint"}"#).unwrap();
        assert!(err.contains(r#""ok":false"#), "got: {err}");
        let stats = service.handle_line(r#"{"cmd":"stats"}"#).unwrap();
        assert!(!stats.contains(r#""wal""#), "got: {stats}");

        let dir = std::env::temp_dir().join(format!(
            "sac-service-wal-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let live = LiveEngine::with_durability(
            Arc::new(SacEngine::new(figure3_graph())),
            crate::Durability::new(&dir),
        )
        .unwrap();
        let service = SacService::with_live(live, ServiceConfig::default());
        service
            .handle(&ProtoRequest::AddEdge {
                u: figure3::I,
                v: figure3::F,
            })
            .unwrap();
        let commit = service.handle_line(r#"{"cmd":"commit"}"#).unwrap();
        assert!(commit.contains(r#""epoch":2"#), "got: {commit}");
        let line = service.handle_line(r#"{"cmd":"checkpoint"}"#).unwrap();
        assert!(line.contains(r#""ok":true"#), "got: {line}");
        assert!(line.contains(r#""epoch":2"#), "got: {line}");
        assert!(line.contains(r#""snapshot_bytes":"#), "got: {line}");
        let stats = service.handle_line(r#"{"cmd":"stats"}"#).unwrap();
        assert!(
            stats.contains(r#""wal":{"sync":"always","segments":1"#),
            "got: {stats}"
        );
        assert!(
            stats.contains(r#""last_checkpoint_epoch":2"#),
            "got: {stats}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_updates_flow_through_the_service() {
        let service = service();
        let reply = service
            .handle(&ProtoRequest::AddEdge {
                u: figure3::I,
                v: figure3::F,
            })
            .unwrap();
        assert!(matches!(
            reply,
            ProtoResponse::Mutation(MutationReply { applied: true, .. })
        ));
        let ProtoResponse::Commit(commit) = service
            .handle(&ProtoRequest::Commit { trace: false })
            .unwrap()
        else {
            panic!("expected a commit reply");
        };
        assert_eq!(commit.epoch, 2);
        assert_eq!(commit.edges_inserted, 1);
        // The published edge changes query answers.
        let line = service
            .handle_line(&format!(r#"{{"q":{},"k":2}}"#, figure3::I))
            .unwrap();
        assert!(line.contains(r#""feasible":true"#), "got: {line}");
        assert!(line.contains(r#""epoch":2"#));
        // Malformed input becomes a transport-level error reply.
        let err = service.handle_line("{oops").unwrap();
        assert!(err.starts_with(r#"{"ok":false,"error":"#));
    }
}
