//! The transport-agnostic protocol service: typed requests in, typed
//! responses out.
//!
//! Every transport (LDJSON over stdin/stdout, HTTP/1.1 over a socket, an
//! in-process test harness) decodes bytes into a
//! [`ProtoRequest`](sac_proto::ProtoRequest), calls [`SacService::handle`],
//! and encodes the returned [`ProtoResponse`](sac_proto::ProtoResponse) — the
//! service owns *all* protocol semantics, so transports cannot drift apart.

use crate::LiveEngine;
use sac_engine::SacEngine;
use sac_proto::{
    CommitReply, CoreReply, EncodeOptions, MutationReply, ProtoRequest, ProtoResponse, QueryReply,
    StatsReply, VertexReply,
};
use std::sync::Arc;

/// Tunables of a [`SacService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads batched queries are fanned across.
    pub threads: usize,
    /// Response-encoding options (member lists, timing fields).
    pub encode: EncodeOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            encode: EncodeOptions::default(),
        }
    }
}

/// The shared protocol service: one typed API every transport is a thin
/// shell over.
///
/// `handle` returns `None` exactly once — for [`ProtoRequest::Quit`] — which
/// transports interpret as "end this session" (the LDJSON loop stops, an
/// HTTP connection closes).
#[derive(Debug)]
pub struct SacService {
    live: LiveEngine,
    config: ServiceConfig,
}

impl SacService {
    /// A service over a fresh live front for `engine`.
    pub fn new(engine: Arc<SacEngine>, config: ServiceConfig) -> Self {
        SacService::with_live(LiveEngine::new(engine), config)
    }

    /// A service over an existing live front.
    pub fn with_live(live: LiveEngine, config: ServiceConfig) -> Self {
        SacService { live, config }
    }

    /// The engine queries run against.
    pub fn engine(&self) -> &Arc<SacEngine> {
        self.live.engine()
    }

    /// The live-update front mutations go through.
    pub fn live(&self) -> &LiveEngine {
        &self.live
    }

    /// The encoding options transports must encode responses with.
    pub fn encode_options(&self) -> EncodeOptions {
        self.config.encode
    }

    /// Handles one typed request; `None` means "quit" (the transport ends
    /// the session without a reply).
    pub fn handle(&self, request: &ProtoRequest) -> Option<ProtoResponse> {
        let engine = self.engine();
        Some(match request {
            ProtoRequest::Quit => return None,
            ProtoRequest::Query(spec) => match spec.to_request(0) {
                Err(e) => ProtoResponse::Query(QueryReply::rejected(spec, 0, &e)),
                Ok(request) => ProtoResponse::Query(QueryReply::from_response(
                    &engine.execute(&request),
                    self.config.encode,
                )),
            },
            ProtoRequest::Batch(specs) => {
                // Build-validate every spec first; invalid budgets become
                // per-query `rejected` replies while the valid remainder is
                // fanned across the worker pool in one batch.
                let mut replies: Vec<Option<QueryReply>> = vec![None; specs.len()];
                let mut requests = Vec::with_capacity(specs.len());
                let mut positions = Vec::with_capacity(specs.len());
                for (i, spec) in specs.iter().enumerate() {
                    match spec.to_request(i as u64) {
                        Err(e) => replies[i] = Some(QueryReply::rejected(spec, i as u64, &e)),
                        Ok(request) => {
                            requests.push(request);
                            positions.push(i);
                        }
                    }
                }
                let responses = engine.execute_batch(&requests, self.config.threads);
                for (&i, response) in positions.iter().zip(&responses) {
                    replies[i] = Some(QueryReply::from_response(response, self.config.encode));
                }
                ProtoResponse::Batch(
                    replies
                        .into_iter()
                        .map(|r| r.expect("every batch slot is filled"))
                        .collect(),
                )
            }
            ProtoRequest::Stats => {
                let stats = engine.stats();
                let graph = engine.snapshot();
                ProtoResponse::Stats(StatsReply::from_stats(
                    &stats,
                    graph.num_vertices(),
                    graph.num_edges(),
                    self.live.pending(),
                ))
            }
            ProtoRequest::Warm(ks) => {
                engine.warm(ks);
                ProtoResponse::Warmed { count: ks.len() }
            }
            ProtoRequest::Core { q, k } => ProtoResponse::Core {
                reply: CoreReply {
                    members: engine.connected_core(*q, *k),
                },
                include_members: self.config.encode.members,
            },
            ProtoRequest::AddEdge { u, v } => match self.live.add_edge(*u, *v) {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(change) => ProtoResponse::Mutation(MutationReply {
                    applied: change.applied,
                    cores_changed: change.changed.len(),
                    pending: self.live.pending(),
                }),
            },
            ProtoRequest::RemoveEdge { u, v } => match self.live.remove_edge(*u, *v) {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(change) => ProtoResponse::Mutation(MutationReply {
                    applied: change.applied,
                    cores_changed: change.changed.len(),
                    pending: self.live.pending(),
                }),
            },
            ProtoRequest::AddVertex { x, y } => {
                match self.live.add_vertex(sac_geom::Point::new(*x, *y)) {
                    Err(e) => ProtoResponse::error(e.to_string()),
                    Ok(vertex) => ProtoResponse::Vertex(VertexReply {
                        vertex,
                        pending: self.live.pending(),
                    }),
                }
            }
            ProtoRequest::MoveVertex { v, x, y } => {
                match self.live.move_vertex(*v, sac_geom::Point::new(*x, *y)) {
                    Err(e) => ProtoResponse::error(e.to_string()),
                    Ok(applied) => ProtoResponse::Mutation(MutationReply {
                        applied,
                        cores_changed: 0,
                        pending: self.live.pending(),
                    }),
                }
            }
            ProtoRequest::Commit => match self.live.commit() {
                Err(e) => ProtoResponse::error(e.to_string()),
                Ok(report) => ProtoResponse::Commit(CommitReply {
                    epoch: report.epoch,
                    mutations: report.mutations,
                    edges_inserted: report.edges_inserted,
                    edges_removed: report.edges_removed,
                    vertices_added: report.vertices_added,
                    vertices_moved: report.vertices_moved,
                    cores_changed: report.cores_changed,
                    dirty_up_to: report.dirty_up_to,
                    components_carried: report.components_carried,
                    components_invalidated: report.components_invalidated,
                    shards_rebuilt: report.shards_rebuilt,
                    shards_carried: report.shards_carried,
                    micros: Some(report.micros),
                }),
            },
        })
    }

    /// The full LDJSON round trip for one line: decode, handle, encode.
    /// Malformed input becomes an error reply; `None` means "quit".
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let response = match ProtoRequest::parse_line(line) {
            Err(e) => ProtoResponse::error(e.to_string()),
            Ok(request) => self.handle(&request)?,
        };
        Some(response.encode_line(self.config.encode))
    }
}

// One service is shared across transport threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SacService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_proto::QuerySpec;

    fn service() -> SacService {
        SacService::new(
            Arc::new(SacEngine::new(figure3_graph())),
            ServiceConfig::default(),
        )
    }

    #[test]
    fn queries_and_commands_round_trip() {
        let service = service();
        let reply = service
            .handle(&ProtoRequest::Query(QuerySpec::new(figure3::Q, 2)))
            .unwrap();
        let ProtoResponse::Query(reply) = reply else {
            panic!("expected a query reply");
        };
        assert!(matches!(
            reply.result,
            sac_proto::QueryResult::Community { .. }
        ));
        assert_eq!(reply.epoch, 1);

        let ProtoResponse::Stats(stats) = service.handle(&ProtoRequest::Stats).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.vertices, 10);

        assert!(service.handle(&ProtoRequest::Quit).is_none());
        assert!(service.handle_line(r#"{"cmd":"quit"}"#).is_none());
    }

    #[test]
    fn invalid_budgets_are_rejected_per_query_not_per_batch() {
        let service = service();
        let mut bad = QuerySpec::new(figure3::Q, 2);
        bad.ratio = Some(0.5);
        let batch = ProtoRequest::Batch(vec![QuerySpec::new(figure3::Q, 2), bad]);
        let ProtoResponse::Batch(replies) = service.handle(&batch).unwrap() else {
            panic!("expected a batch reply");
        };
        assert_eq!(replies.len(), 2);
        assert!(matches!(
            replies[0].result,
            sac_proto::QueryResult::Community { .. }
        ));
        assert_eq!(replies[1].plan, "rejected");
        assert!(matches!(
            replies[1].result,
            sac_proto::QueryResult::Error(_)
        ));
        // Rejected queries never reached the engine.
        assert_eq!(service.engine().stats().queries, 1);
    }

    #[test]
    fn algorithm_override_round_trips_over_the_wire() {
        let service = service();
        // The `global` baseline is unreachable through budgets; the explicit
        // wire field dispatches it for A/B comparisons.
        let line = service
            .handle_line(&format!(
                r#"{{"q":{},"k":2,"algorithm":"global"}}"#,
                figure3::Q
            ))
            .unwrap();
        assert!(line.contains(r#""plan":"global""#), "got: {line}");
        assert!(line.contains(r#""feasible":true"#), "got: {line}");
        // Unknown names are typed per-query rejections, not transport errors.
        let bad = service
            .handle_line(&format!(
                r#"{{"q":{},"k":2,"algorithm":"warp"}}"#,
                figure3::Q
            ))
            .unwrap();
        assert!(bad.contains(r#""plan":"rejected""#), "got: {bad}");
    }

    #[test]
    fn move_vertex_round_trips_over_the_wire() {
        let service = service();
        let line = service
            .handle_line(&format!(
                r#"{{"cmd":"move_vertex","v":{},"x":42.0,"y":42.0}}"#,
                figure3::Q
            ))
            .unwrap();
        assert!(line.contains(r#""applied":true"#), "got: {line}");
        assert!(line.contains(r#""cores_changed":0"#));
        let commit = service.handle_line(r#"{"cmd":"commit"}"#).unwrap();
        assert!(commit.contains(r#""vertices_moved":1"#), "got: {commit}");
        assert!(commit.contains(r#""dirty_up_to":0"#), "grid-only epoch");
        // Out-of-range moves are error replies, not panics.
        let err = service
            .handle_line(r#"{"cmd":"move_vertex","v":999,"x":0,"y":0}"#)
            .unwrap();
        assert!(err.contains(r#""ok":false"#));
    }

    #[test]
    fn live_updates_flow_through_the_service() {
        let service = service();
        let reply = service
            .handle(&ProtoRequest::AddEdge {
                u: figure3::I,
                v: figure3::F,
            })
            .unwrap();
        assert!(matches!(
            reply,
            ProtoResponse::Mutation(MutationReply { applied: true, .. })
        ));
        let ProtoResponse::Commit(commit) = service.handle(&ProtoRequest::Commit).unwrap() else {
            panic!("expected a commit reply");
        };
        assert_eq!(commit.epoch, 2);
        assert_eq!(commit.edges_inserted, 1);
        // The published edge changes query answers.
        let line = service
            .handle_line(&format!(r#"{{"q":{},"k":2}}"#, figure3::I))
            .unwrap();
        assert!(line.contains(r#""feasible":true"#), "got: {line}");
        assert!(line.contains(r#""epoch":2"#));
        // Malformed input becomes a transport-level error reply.
        let err = service.handle_line("{oops").unwrap();
        assert!(err.starts_with(r#"{"ok":false,"error":"#));
    }
}
