//! # sac-live
//!
//! Dynamic-graph subsystem for the SAC serving stack: a **mutable write
//! front** over the read-optimised `sac-engine` path.
//!
//! The paper's incremental variant (`AppInc`) exists because real geo-social
//! graphs mutate continuously; serving them from one frozen snapshot means a
//! full rebuild — graph, spatial index, core decomposition, every per-`k`
//! k-core index — on every edge change.  This crate closes that gap:
//!
//! * **Write front** — [`LiveEngine`] accepts edge insertions/removals and
//!   vertex additions (with positions), applying each to a
//!   [`sac_graph::DynamicGraph`] whose core numbers are maintained
//!   **incrementally**: a mutation walks only the affected subcore, and the
//!   result is bit-identical to a full recomputation (asserted by the
//!   property suite on random update streams).
//! * **Deltas** — mutations batch into a [`GraphDelta`] between commits;
//!   [`LiveEngine::commit`] rebuilds the immutable CSR + grid index once per
//!   epoch and publishes through the engine's atomic epoch pointer.
//! * **Epoch snapshots** — in-flight queries finish on the snapshot they
//!   loaded; new queries see the new epoch.  The engine's k-core index cache
//!   is *selectively* invalidated: only the `k` entries whose cores the delta
//!   touched are dropped, the rest carry over (observable via
//!   `EngineStats::components_carried`).
//! * **Bulk delta apply and sharded commits** — [`LiveEngine::apply_batch`]
//!   repairs core numbers once per delta (shared peel for heavy batches),
//!   [`LiveEngine::move_vertex`] publishes grid-only epochs for position
//!   updates, and on sharded engines a commit republishes only the shards a
//!   delta touched (see [`CommitReport::shards_carried`]).
//! * **The protocol service and its transports** — [`SacService`] executes
//!   typed `sac-proto` requests (queries, batches, live updates, admin
//!   commands) against the engine + write front; the `sac-serve` (LDJSON
//!   over stdin/stdout, [`ldjson`]) and `sac-http` (hand-rolled HTTP/1.1
//!   over `std::net::TcpListener`, [`http`]) binaries are thin shells over
//!   it, speaking byte-identical payloads.
//! * **Observability end to end** — the commit pipeline
//!   (`sac_commit_micros`, snapshot-build/publish stage spans, dirty-shard
//!   and batch-strategy counters) and both transports (decode/handle/encode
//!   stage spans, socket IO spans, per-status-code counters) record into the
//!   engine's shared `sac-obs` registry, so `GET /metrics` (Prometheus text)
//!   and the `{"cmd":"metrics"}` / `{"cmd":"slowlog"}` protocol commands
//!   expose the whole serving stack; `GET /stats` and `/healthz` report
//!   epoch, shard count, process uptime and durability state.
//! * **Durability** — with a [`Durability`] config every commit appends its
//!   delta record to a `sac-wal` write-ahead log *before* the epoch swap,
//!   checkpoints serialize the current epoch and truncate older segments,
//!   and [`LiveEngine::recover`] replays snapshot + log to a state
//!   bit-identical to the pre-crash epoch (core numbers, shard layout,
//!   query answers — pinned by the crash-recovery property suite).
//! * **Replication** — the WAL doubles as a replication stream:
//!   [`spawn_shipper`] serves it over TCP with snapshot bootstrap and
//!   offset-addressable resume, and a [`Replica`] tails it, applying commit
//!   records through the recovery replay path to serve reads bit-identical
//!   to the primary at every applied epoch.  [`RetryPolicy`]-driven
//!   reconnects, deterministic [`FaultInjector`] link faults on either
//!   side, and staleness-aware degradation ([`ReplicaStatus::degraded`])
//!   make the link's failure modes first-class and rehearsable (see
//!   [`replication`]).
//! * **Failover** — heartbeats double as leadership leases: when a replica's
//!   lease expires, the deterministic winner (lowest id in the last roster)
//!   promotes itself in place — tailer stopped, fresh WAL seeded, term
//!   bumped, shipping endpoint opened — while losers re-point and
//!   re-bootstrap.  Terms stamped into every WAL record and frame fence a
//!   restarted zombie primary out of the new history (see [`failover`]).
//!
//! ## Example
//!
//! ```
//! use sac_engine::{SacEngine, SacRequest};
//! use sac_live::LiveEngine;
//! use sac_geom::Point;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(SacEngine::new(sac_core::fixtures::figure3_graph()));
//! let live = LiveEngine::new(Arc::clone(&engine));
//!
//! // Mutate: a newcomer joins next to Q and befriends the Q–A–B triangle.
//! let v = live.add_vertex(Point::new(1.0, 0.5)).unwrap();
//! live.add_edge(v, sac_core::fixtures::figure3::Q).unwrap();
//! live.add_edge(v, sac_core::fixtures::figure3::A).unwrap();
//!
//! // Publish: epoch 2 serves the grown graph, cache carried where possible.
//! let report = live.commit().unwrap();
//! assert_eq!(report.epoch, 2);
//! let response = engine.execute(&SacRequest::new(1, v, 2));
//! assert!(response.community().expect("v sits in a 2-core").contains(v));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod delta;
mod durability;
pub mod failover;
mod fault;
pub mod http;
pub mod ldjson;
mod live;
pub mod replication;
mod retry;
mod service;

pub use delta::{GraphDelta, Mutation};
pub use durability::{CheckpointReport, CommitError, Durability, RecoveryReport, WalStats};
pub use failover::{FailoverConfig, FailoverHandle};
pub use fault::{FaultAction, FaultInjector, FaultPlan};
pub use live::{BatchApplyReport, CommitReport, LiveEngine};
pub use replication::{
    probe, spawn_shipper, Replica, ReplicaConfig, ReplicaError, ReplicaStatus, ShipConfig,
    ShipHandle,
};
pub use retry::RetryPolicy;
pub use sac_wal::SyncPolicy;
pub use service::{Role, SacService, ServiceConfig};
