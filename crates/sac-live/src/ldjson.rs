//! The line-delimited-JSON transport: one protocol document per input line,
//! one reply line per request — a thin shell over [`SacService`].

use crate::SacService;
use std::io::{BufRead, Write};

/// Serves LDJSON requests from `input` to `output` until EOF or a `quit`
/// command.  Blank lines are skipped; every other line produces exactly one
/// reply line (malformed input included, as an error reply).
///
/// Stream IO is timed into
/// `sac_transport_io_micros{transport="ldjson",op="read"|"write"}`; the
/// decode/handle/encode stages are timed inside
/// [`SacService::handle_line`].
pub fn serve<R: BufRead, W: Write>(
    service: &SacService,
    mut input: R,
    mut output: W,
) -> std::io::Result<()> {
    let obs = service.obs();
    loop {
        let read_span = obs.span(&obs.ldjson_read);
        let mut line = String::new();
        let n = input.read_line(&mut line)?;
        read_span.finish();
        if n == 0 {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        match service.handle_line(line.trim_end_matches(['\r', '\n'])) {
            Some(reply) => {
                let write_span = obs.span(&obs.ldjson_write);
                writeln!(output, "{reply}")?;
                output.flush()?;
                write_span.finish();
            }
            None => break,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_engine::SacEngine;
    use std::sync::Arc;

    #[test]
    fn serves_lines_until_quit() {
        let service = SacService::new(
            Arc::new(SacEngine::new(figure3_graph())),
            ServiceConfig::default(),
        );
        let input = format!(
            "{{\"id\":1,\"q\":{},\"k\":2}}\n\n{{\"cmd\":\"stats\"}}\n{{\"cmd\":\"quit\"}}\n{{\"q\":0,\"k\":2}}\n",
            figure3::Q
        );
        let mut output = Vec::new();
        serve(&service, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Two replies: the query and the stats; quit stops the loop before
        // the trailing query is read.
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"feasible\":true"));
        assert!(lines[1].contains("\"queries\":1"));
    }
}
