//! One assertion per row of the planner's budget→plan decision table (see the
//! `planner` module docs), driven through the registry-based [`Planner`] —
//! the table the paper's Table 3 inverts must survive the profile-driven
//! selection redesign bit-for-bit.

use sac_core::AlgorithmRegistry;
use sac_engine::{LatencyTier, Plan, PlanContext, Planner, QueryBudget};
use std::sync::Arc;

const SMALL_EXACT_THRESHOLD: usize = 48;
const EXACT_EPS_A: f64 = 1e-4;

const BIG_CORE: PlanContext = PlanContext {
    core_size: Some(100_000),
    infeasible: false,
};

const ALL_TIERS: [LatencyTier; 3] = [
    LatencyTier::Interactive,
    LatencyTier::Standard,
    LatencyTier::Batch,
];

fn planner() -> Planner {
    Planner::new(
        Arc::new(AlgorithmRegistry::builtin()),
        SMALL_EXACT_THRESHOLD,
        EXACT_EPS_A,
    )
}

fn plan(budget: &QueryBudget, ctx: &PlanContext) -> Plan {
    planner().plan(7, 3, budget, ctx, None).unwrap()
}

/// Row 1 — `theta` set: the θ-capable algorithm, regardless of tier and
/// ratio.
#[test]
fn row_theta_set_dispatches_theta_sac() {
    for tier in ALL_TIERS {
        for ratio in [1.0, 1.5, 3.0] {
            let budget = QueryBudget::within_ratio(ratio)
                .with_tier(tier)
                .with_theta(0.4);
            let plan = plan(&budget, &BIG_CORE);
            assert!(plan.dispatches("theta_sac"), "tier {tier:?} ratio {ratio}");
            assert_eq!(plan.label(), "theta_sac(theta=0.4)");
            assert_eq!(
                plan.guaranteed_ratio(),
                None,
                "θ-SAC answers a different objective"
            );
        }
    }
}

/// Row 2 — cache-proven infeasibility short-circuits every budget, θ
/// included.
#[test]
fn row_infeasible_short_circuits() {
    let infeasible = PlanContext {
        core_size: None,
        infeasible: true,
    };
    for tier in ALL_TIERS {
        for budget in [
            QueryBudget::exact().with_tier(tier),
            QueryBudget::within_ratio(1.5).with_tier(tier),
            QueryBudget::within_ratio(4.0).with_tier(tier),
            QueryBudget::balanced().with_tier(tier).with_theta(0.3),
        ] {
            assert_eq!(plan(&budget, &infeasible), Plan::Infeasible);
        }
    }
}

/// Row 3 — small-core upgrade: a tiny candidate set turns any unconstrained
/// budget into an exact plan; one above the threshold does not.
#[test]
fn row_small_core_upgrades_to_exact() {
    let at_threshold = PlanContext {
        core_size: Some(SMALL_EXACT_THRESHOLD),
        infeasible: false,
    };
    for tier in ALL_TIERS {
        let budget = QueryBudget::within_ratio(4.0).with_tier(tier);
        let plan = plan(&budget, &at_threshold);
        assert!(plan.dispatches("exact_plus"), "tier {tier:?}");
        assert_eq!(plan.guaranteed_ratio(), Some(1.0));
    }
    let above = PlanContext {
        core_size: Some(SMALL_EXACT_THRESHOLD + 1),
        infeasible: false,
    };
    assert!(!plan(&QueryBudget::within_ratio(4.0), &above).dispatches("exact_plus"));
    // ...but the θ row still wins over the upgrade (a constrained query has
    // its own algorithm).
    let tiny = PlanContext {
        core_size: Some(1),
        infeasible: false,
    };
    assert!(plan(&QueryBudget::balanced().with_theta(0.2), &tiny).dispatches("theta_sac"));
}

/// Row 4 — ratio 1 demands the optimum: the cheapest exact algorithm, tuned
/// with the configured `εA`.
#[test]
fn row_ratio_one_demands_exact_plus() {
    for tier in ALL_TIERS {
        let budget = QueryBudget {
            max_ratio: 1.0,
            tier,
            theta: None,
        };
        let plan = plan(&budget, &BIG_CORE);
        assert!(plan.dispatches("exact_plus"), "tier {tier:?}");
        assert_eq!(plan.label(), "exact_plus(eps_a=0.0001)");
        assert_eq!(plan.guaranteed_ratio(), Some(1.0));
    }
}

/// Row 5 — `1 < max_ratio < 2` is `AppAcc`'s declared band, every tier, with
/// `εA = max_ratio − 1`.
#[test]
fn row_ratio_between_one_and_two_is_app_acc() {
    for tier in ALL_TIERS {
        for ratio in [1.001, 1.25, 1.5, 1.99] {
            let budget = QueryBudget::within_ratio(ratio).with_tier(tier);
            let planned = match plan(&budget, &BIG_CORE) {
                Plan::Execute(planned) => planned,
                other => panic!("expected an algorithm plan, got {other}"),
            };
            assert_eq!(planned.algorithm, "app_acc", "tier {tier:?} ratio {ratio}");
            assert!(
                (planned.query.eps_a() - (ratio - 1.0)).abs() < 1e-9,
                "εA must be tuned to the budget"
            );
            assert!((planned.guaranteed_ratio.unwrap() - ratio).abs() < 1e-9);
        }
    }
}

/// Row 6 — `max_ratio ≥ 2` at interactive latency: the cheapest in-band
/// algorithm, `AppFast` with `εF = max_ratio − 2`.
#[test]
fn row_ratio_two_plus_interactive_is_app_fast() {
    for ratio in [2.0, 2.5, 4.0] {
        let budget = QueryBudget::within_ratio(ratio).with_tier(LatencyTier::Interactive);
        let planned = match plan(&budget, &BIG_CORE) {
            Plan::Execute(planned) => planned,
            other => panic!("expected an algorithm plan, got {other}"),
        };
        assert_eq!(planned.algorithm, "app_fast", "ratio {ratio}");
        assert!((planned.query.eps_f() - (ratio - 2.0)).abs() < 1e-9);
        assert!((planned.guaranteed_ratio.unwrap() - ratio).abs() < 1e-9);
    }
}

/// Row 7 — `max_ratio ≥ 2` with latency slack (standard/batch): the tightest
/// in-band guarantee, `AppInc`'s parameter-free ratio 2.
#[test]
fn row_ratio_two_plus_standard_and_batch_is_app_inc() {
    for tier in [LatencyTier::Standard, LatencyTier::Batch] {
        for ratio in [2.0, 2.5, 4.0] {
            let budget = QueryBudget::within_ratio(ratio).with_tier(tier);
            let plan = plan(&budget, &BIG_CORE);
            assert!(plan.dispatches("app_inc"), "tier {tier:?} ratio {ratio}");
            assert_eq!(plan.label(), "app_inc");
            assert_eq!(plan.guaranteed_ratio(), Some(2.0));
        }
    }
}

/// The registry is genuinely load-bearing: a registered non-builtin
/// algorithm with a cheaper in-band profile is selected with no planner
/// edits.
#[test]
fn registered_algorithms_join_the_table() {
    use sac_core::{
        AlgorithmProfile, CommunitySearch, CostClass, RatioGuarantee, SacOutcome, SacQuery,
        SearchContext,
    };

    /// A fake ratio-2 algorithm cheaper than anything built in.
    struct Turbo;
    impl CommunitySearch for Turbo {
        fn profile(&self) -> AlgorithmProfile {
            AlgorithmProfile {
                name: "turbo",
                ratio: RatioGuarantee::Fixed(2.0),
                cost: CostClass::Linear,
                supports_theta: false,
                shares_decomposition: false,
                reference: "test double",
            }
        }
        fn run(
            &self,
            _ctx: &mut SearchContext<'_>,
            _query: &SacQuery,
        ) -> Result<SacOutcome, sac_core::SacError> {
            Ok(SacOutcome::new(None))
        }
    }

    let mut registry = AlgorithmRegistry::builtin();
    registry.register(Arc::new(Turbo));
    let planner = Planner::new(Arc::new(registry), 0, EXACT_EPS_A);
    // Interactive minimises cost: turbo (Linear) now beats app_fast.
    let plan = planner
        .plan(
            0,
            2,
            &QueryBudget::within_ratio(3.0).with_tier(LatencyTier::Interactive),
            &BIG_CORE,
            None,
        )
        .unwrap();
    assert!(plan.dispatches("turbo"));
    // Standard prefers the tightest guarantee; turbo ties app_inc at 2 and
    // wins on cost among the parameter-free candidates.
    let plan = planner
        .plan(0, 2, &QueryBudget::within_ratio(3.0), &BIG_CORE, None)
        .unwrap();
    assert!(plan.dispatches("turbo"));
}
