//! Epoch-based snapshot publication.
//!
//! The live-update path swaps a whole epoch — graph snapshot plus its k-core
//! cache — under readers that never block on writers for more than a pointer
//! clone.  No `arc-swap` dependency: [`EpochCell`] is the classic
//! lock-around-the-pointer pattern (an `RwLock<Arc<T>>` guarding only the
//! pointer, never the data — readers share the lock), which the crate's
//! `#![forbid(unsafe_code)]` permits where a hand-rolled `AtomicPtr` juggling
//! act would not.
//!
//! Readers call [`EpochCell::load`] once per query and keep the returned
//! `Arc` for the query's whole lifetime: a concurrent [`EpochCell::swap`]
//! publishes the next epoch to *subsequent* loads while in-flight queries
//! finish on the snapshot they started with — exactly the paper-serving
//! contract the engine's concurrency tests pin down.

use std::sync::{Arc, RwLock};

/// A shared slot holding the current `Arc<T>`, swappable under readers.
///
/// `load` is a shared read-lock + pointer clone (no data copy, ~tens of
/// nanoseconds, and concurrent readers never serialise on each other — this
/// sits on the per-query hot path); `swap` takes the write lock, replaces the
/// pointer and returns the previous value so the publisher can harvest state
/// (e.g. cache entries to carry over).  The lock is held only for the pointer
/// operation, never while the data is used.
#[derive(Debug)]
pub struct EpochCell<T> {
    current: RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        EpochCell {
            current: RwLock::new(value),
        }
    }

    /// The current value.  The returned `Arc` stays valid (and unchanged)
    /// across any number of concurrent swaps.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read().expect("epoch cell poisoned"))
    }

    /// Publishes `next`, returning the previous value.
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        let mut slot = self.current.write().expect("epoch cell poisoned");
        std::mem::replace(&mut *slot, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_and_swap_roundtrip() {
        let cell = EpochCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        let old = cell.swap(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn readers_keep_their_snapshot_across_swaps() {
        let cell = Arc::new(EpochCell::new(Arc::new(0usize)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = cell.load();
                        let seen = *snapshot;
                        // The held Arc must never change underneath us.
                        std::hint::spin_loop();
                        assert_eq!(*snapshot, seen);
                    }
                });
            }
            for i in 1..200usize {
                cell.swap(Arc::new(i));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 199);
    }
}
