//! The shared k-core index cache.
//!
//! Every SAC algorithm starts from the same two structural facts about the
//! graph: the core number of every vertex (an `O(m)` peeling pass) and the
//! connected component of the k-core containing the query vertex.  A serving
//! engine answering many queries over one immutable snapshot recomputes
//! neither: this module memoises the [`CoreDecomposition`] once per snapshot
//! and a [`KCoreComponents`] labelling once per distinct `k`, both behind
//! lock-free (`OnceLock`) or read-mostly (`RwLock`) sharing so concurrent
//! readers never serialise on a cache hit.

use sac_graph::{core_decomposition, CoreDecomposition, Graph, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Connected-component labelling of one k-core (all vertices with core number
/// `>= k`), with members grouped per component for O(size) retrieval.
#[derive(Debug, Clone)]
pub struct KCoreComponents {
    k: u32,
    /// Component id per vertex; `NOT_IN_CORE` for vertices outside the k-core.
    label: Vec<u32>,
    /// Members of every component, grouped contiguously (CSR layout).
    members: Vec<VertexId>,
    /// `offsets[c]..offsets[c + 1]` indexes `members` for component `c`.
    offsets: Vec<u32>,
}

const NOT_IN_CORE: u32 = u32::MAX;

impl KCoreComponents {
    /// The (allocation-free) labelling of an empty k-core, used for any `k`
    /// above the graph's degeneracy.
    pub fn empty(k: u32) -> Self {
        KCoreComponents {
            k,
            label: Vec::new(),
            members: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Labels the connected components of the k-core in `O(n + m)`.
    pub fn build(graph: &Graph, decomposition: &CoreDecomposition, k: u32) -> Self {
        if k > decomposition.max_core() {
            return KCoreComponents::empty(k);
        }
        let n = graph.num_vertices();
        let mut label = vec![NOT_IN_CORE; n];
        let mut members = Vec::new();
        let mut offsets = vec![0u32];
        let mut queue = Vec::new();
        let mut next_component = 0u32;
        for start in 0..n as VertexId {
            if decomposition.core_number(start) < k || label[start as usize] != NOT_IN_CORE {
                continue;
            }
            label[start as usize] = next_component;
            queue.push(start);
            while let Some(v) = queue.pop() {
                members.push(v);
                for &u in graph.neighbors(v) {
                    if decomposition.core_number(u) >= k && label[u as usize] == NOT_IN_CORE {
                        label[u as usize] = next_component;
                        queue.push(u);
                    }
                }
            }
            offsets.push(members.len() as u32);
            next_component += 1;
        }
        // Members sorted within each component: deterministic output for
        // serving, and binary-searchable.
        for c in 0..next_component as usize {
            members[offsets[c] as usize..offsets[c + 1] as usize].sort_unstable();
        }
        KCoreComponents {
            k,
            label,
            members,
            offsets,
        }
    }

    /// The `k` this labelling was built for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of connected components of the k-core.
    pub fn num_components(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Component id of `v`, or `None` when `v` is not in the k-core.
    pub fn component_of(&self, v: VertexId) -> Option<u32> {
        match self.label.get(v as usize) {
            Some(&c) if c != NOT_IN_CORE => Some(c),
            _ => None,
        }
    }

    /// Sorted members of component `c`.
    pub fn component_members(&self, c: u32) -> &[VertexId] {
        &self.members[self.offsets[c as usize] as usize..self.offsets[c as usize + 1] as usize]
    }

    /// Size of the connected k-core containing `v` (`None` outside the k-core).
    pub fn core_size_of(&self, v: VertexId) -> Option<usize> {
        self.component_of(v)
            .map(|c| self.component_members(c).len())
    }

    /// Sorted members of the connected k-core containing `v` — the paper's
    /// "k-ĉore of q" — or `None` when `v` is not in the k-core.
    pub fn core_of(&self, v: VertexId) -> Option<&[VertexId]> {
        self.component_of(v).map(|c| self.component_members(c))
    }
}

/// Hit/miss counters of one cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLayerStats {
    /// Lookups answered from the resident index.
    pub hits: u64,
    /// Lookups that had to build the index.
    pub misses: u64,
}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Core-decomposition layer (one entry per snapshot).
    pub decomposition: CacheLayerStats,
    /// Per-`k` connected-component layer.
    pub components: CacheLayerStats,
}

/// Thread-safe memoisation of the k-core machinery for one graph snapshot.
///
/// The decomposition layer uses a `OnceLock`, so after the first computation a
/// hit is a single atomic load.  The per-`k` layer is a `RwLock`ed map of
/// `Arc`s: hits take the read lock only, and the returned `Arc` keeps the
/// index alive independent of the cache, so handed-out references never block
/// later insertions.
#[derive(Debug, Default)]
pub struct KCoreCache {
    decomposition: OnceLock<Arc<CoreDecomposition>>,
    components: RwLock<HashMap<u32, Arc<KCoreComponents>>>,
    decomp_hits: AtomicU64,
    decomp_misses: AtomicU64,
    comp_hits: AtomicU64,
    comp_misses: AtomicU64,
}

impl KCoreCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        KCoreCache::default()
    }

    /// A cache pre-seeded for a new epoch: the decomposition is already
    /// resident (e.g. maintained incrementally by the live-update path) and
    /// `carried` holds the per-`k` component indexes that survived the epoch's
    /// delta unchanged.
    ///
    /// Carried entries are real cache contents: lookups against them count as
    /// hits, which is how cross-epoch carry-over shows up in [`CacheStats`].
    pub fn seeded(
        decomposition: Arc<CoreDecomposition>,
        carried: impl IntoIterator<Item = Arc<KCoreComponents>>,
    ) -> Self {
        let cache = KCoreCache::default();
        cache
            .decomposition
            .set(decomposition)
            .expect("fresh OnceLock");
        {
            let mut map = cache.components.write().expect("cache lock poisoned");
            for entry in carried {
                map.insert(entry.k(), entry);
            }
        }
        cache
    }

    /// The resident per-`k` component indexes (used by the epoch-publish path
    /// to decide what carries over to the next snapshot).
    pub fn component_entries(&self) -> Vec<Arc<KCoreComponents>> {
        self.components
            .read()
            .expect("cache lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Whether the decomposition is already resident.
    pub fn is_warm(&self) -> bool {
        self.decomposition.get().is_some()
    }

    /// The memoised core decomposition of `graph`, computing it on first use.
    pub fn decomposition(&self, graph: &Graph) -> Arc<CoreDecomposition> {
        if let Some(d) = self.decomposition.get() {
            self.decomp_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(d);
        }
        // Two racing threads may both compute; OnceLock keeps the first.
        self.decomp_misses.fetch_add(1, Ordering::Relaxed);
        let computed = self
            .decomposition
            .get_or_init(|| Arc::new(core_decomposition(graph)));
        Arc::clone(computed)
    }

    /// The memoised component labelling of the k-core for this `k`.
    ///
    /// Only `k` values up to the graph's degeneracy are cached: for larger `k`
    /// the k-core is empty, and a cheap throwaway empty labelling is returned
    /// instead, so wire-supplied `k` values cannot grow the cache (or trigger
    /// `O(n)` builds) without bound.
    pub fn components(&self, graph: &Graph, k: u32) -> Arc<KCoreComponents> {
        if let Some(c) = self.components.read().expect("cache lock poisoned").get(&k) {
            self.comp_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(c);
        }
        let decomposition = self.decomposition(graph);
        if k > decomposition.max_core() {
            self.comp_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::new(KCoreComponents::empty(k));
        }
        self.comp_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(KCoreComponents::build(graph, &decomposition, k));
        let mut map = self.components.write().expect("cache lock poisoned");
        // A racing thread may have inserted meanwhile; keep the first so every
        // caller shares one index.
        Arc::clone(map.entry(k).or_insert(built))
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            decomposition: CacheLayerStats {
                hits: self.decomp_hits.load(Ordering::Relaxed),
                misses: self.decomp_misses.load(Ordering::Relaxed),
            },
            components: CacheLayerStats {
                hits: self.comp_hits.load(Ordering::Relaxed),
                misses: self.comp_misses.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_graph::GraphBuilder;

    /// Two disjoint triangles, each with a pendant vertex: the 2-core has two
    /// components {0,1,2} and {4,5,6}; vertices 3 and 7 have core number 1.
    fn two_triangles() -> Graph {
        GraphBuilder::from_edges([
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (4, 5),
            (5, 6),
            (4, 6),
            (6, 7),
        ])
    }

    #[test]
    fn components_label_the_kcore() {
        let g = two_triangles();
        let d = core_decomposition(&g);
        let c = KCoreComponents::build(&g, &d, 2);
        assert_eq!(c.k(), 2);
        assert_eq!(c.num_components(), 2);
        assert_eq!(c.core_of(0).unwrap(), &[0, 1, 2]);
        assert_eq!(c.core_of(5).unwrap(), &[4, 5, 6]);
        assert_eq!(c.core_size_of(1), Some(3));
        assert!(c.component_of(3).is_none());
        assert!(c.core_of(7).is_none());
        assert!(c.component_of(99).is_none());
        // Distinct components get distinct labels.
        assert_ne!(c.component_of(0), c.component_of(4));
    }

    #[test]
    fn cache_hits_after_first_use() {
        let g = two_triangles();
        let cache = KCoreCache::new();
        assert!(!cache.is_warm());
        let d1 = cache.decomposition(&g);
        assert!(cache.is_warm());
        let d2 = cache.decomposition(&g);
        assert!(Arc::ptr_eq(&d1, &d2));

        let c1 = cache.components(&g, 2);
        let c2 = cache.components(&g, 2);
        assert!(Arc::ptr_eq(&c1, &c2));
        // k above the degeneracy: answered with an empty labelling, no build,
        // and — crucially — no cache entry (wire-supplied k can't grow the map).
        let c3 = cache.components(&g, 3);
        assert_eq!(c3.num_components(), 0);
        assert!(c3.component_of(0).is_none());

        let stats = cache.stats();
        assert_eq!(stats.decomposition.misses, 1);
        // One explicit hit plus one per components() call below.
        assert_eq!(stats.decomposition.hits, 3);
        assert_eq!(stats.components.misses, 1, "only k=2 required a build");
        assert_eq!(stats.components.hits, 2);
    }

    #[test]
    fn cache_is_safe_under_concurrent_use() {
        let g = two_triangles();
        let cache = KCoreCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in [1u32, 2, 3] {
                        let c = cache.components(&g, k);
                        assert_eq!(c.k(), k);
                        if k == 2 {
                            assert_eq!(c.core_size_of(0), Some(3));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.components.hits + stats.components.misses, 24);
    }
}
