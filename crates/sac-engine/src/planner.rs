//! The query planner: maps a per-request accuracy/latency budget onto one of
//! the registered SAC algorithms.
//!
//! The paper's Table 3 gives every algorithm a proven approximation ratio on
//! the MCC radius and an asymptotic cost; each implementation now *declares*
//! that row as an [`AlgorithmProfile`](sac_core::AlgorithmProfile) (a
//! [`RatioGuarantee`] band plus a [`CostClass`](sac_core::CostClass)), and the
//! [`Planner`] inverts the table by selecting over the profiles of an
//! [`AlgorithmRegistry`] — no per-algorithm dispatch arms.  A request states
//! the worst ratio it tolerates ([`QueryBudget::max_ratio`]) and how much
//! latency it can spend ([`LatencyTier`]); the planner picks among the
//! algorithms whose declared band contains the budget:
//!
//! * **Interactive** minimises `(cost class, tuned guarantee)` — the cheapest
//!   fitting algorithm wins.
//! * **Standard/Batch** minimise `(tuned guarantee, parameter-free first,
//!   cost class)` — latency slack is spent on the tightest guarantee, and a
//!   fixed (parameter-free) guarantee beats a tunable one at equal ratio.
//!
//! Exact-ratio algorithms are reached through two dedicated doors rather than
//! the band competition: a budget demanding ratio 1, and the workload-aware
//! *small-core upgrade* — when the connected k-core containing `q` (which
//! every community is a subset of) is tiny, even `Exact+` is effectively
//! free, so the budget's slack is converted into an exact answer at no
//! latency cost.
//!
//! With the built-in registry the decision table is:
//!
//! | budget | plan |
//! |---|---|
//! | explicit `algorithm` override | that registry entry, verbatim (no upgrade, no cache short-circuit) |
//! | `theta` set | `theta_sac` (cheapest θ-capable algorithm, §3) |
//! | `q` not in any k-core (cache lookup) | [`Plan::Infeasible`] — answered without running any algorithm |
//! | k-ĉore of `q` ≤ `small_exact_threshold` | `exact_plus` |
//! | `max_ratio` = 1 | `exact_plus` |
//! | 1 < `max_ratio` < 2 | `app_acc` with `εA = max_ratio − 1` |
//! | `max_ratio` ≥ 2, [`LatencyTier::Interactive`] | `app_fast` with `εF = max_ratio − 2` |
//! | `max_ratio` ≥ 2, otherwise | `app_inc` |
//!
//! The override row is what makes registered-but-unreachable algorithms (the
//! `global`/`local` structure-only baselines have an unbounded ratio, so no
//! budget ever selects them) A/B-testable through the serving path.

use sac_core::{AlgorithmProfile, AlgorithmRegistry, RatioGuarantee, SacError, SacQuery};
use sac_graph::VertexId;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// How much latency a request is willing to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyTier {
    /// Sub-millisecond target: always the cheapest algorithm that fits the
    /// accuracy budget.
    Interactive,
    /// Default tier for online serving.
    #[default]
    Standard,
    /// Offline / analytical: latency is secondary to result quality.
    Batch,
}

impl LatencyTier {
    /// All tiers in dense-index order (see [`LatencyTier::index`]) — the
    /// iteration order of per-tier metric series.
    pub const ALL: [LatencyTier; 3] = [
        LatencyTier::Interactive,
        LatencyTier::Standard,
        LatencyTier::Batch,
    ];

    /// The wire name used by the serving protocol (`interactive`, `standard`,
    /// `batch`).
    pub fn as_str(&self) -> &'static str {
        match self {
            LatencyTier::Interactive => "interactive",
            LatencyTier::Standard => "standard",
            LatencyTier::Batch => "batch",
        }
    }

    /// Dense index of the tier (`ALL[tier.index()] == tier`), used to key
    /// per-tier metric arrays without a hash lookup on the dispatch path.
    pub fn index(self) -> usize {
        match self {
            LatencyTier::Interactive => 0,
            LatencyTier::Standard => 1,
            LatencyTier::Batch => 2,
        }
    }
}

impl fmt::Display for LatencyTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for LatencyTier {
    type Err = SacError;

    /// Parses the wire names used by the serving protocol, with a typed
    /// [`SacError::InvalidBudget`] for anything else.
    fn from_str(name: &str) -> Result<LatencyTier, SacError> {
        match name {
            "interactive" => Ok(LatencyTier::Interactive),
            "standard" => Ok(LatencyTier::Standard),
            "batch" => Ok(LatencyTier::Batch),
            other => Err(SacError::InvalidBudget(format!(
                "unknown latency tier '{other}' (expected interactive|standard|batch)"
            ))),
        }
    }
}

/// Per-request accuracy/latency budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBudget {
    /// Largest acceptable approximation ratio on the MCC radius (`>= 1`; `1`
    /// demands the optimum).
    pub max_ratio: f64,
    /// Latency tier.
    pub tier: LatencyTier,
    /// When set, ask the θ-SAC variant instead: the community must lie inside
    /// the circle of radius `theta` around the query vertex.
    pub theta: Option<f64>,
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::balanced()
    }
}

impl QueryBudget {
    /// Demands the optimal community (ratio 1) at batch latency.
    pub fn exact() -> Self {
        QueryBudget {
            max_ratio: 1.0,
            tier: LatencyTier::Batch,
            theta: None,
        }
    }

    /// The default online budget: ratio ≤ 1.5 at standard latency (the paper's
    /// `AppAcc` configuration, Table 5).
    pub fn balanced() -> Self {
        QueryBudget {
            max_ratio: 1.5,
            tier: LatencyTier::Standard,
            theta: None,
        }
    }

    /// The low-latency budget: ratio ≤ 2.5 (the paper's `AppFast`
    /// configuration) at interactive latency.
    pub fn interactive() -> Self {
        QueryBudget {
            max_ratio: 2.5,
            tier: LatencyTier::Interactive,
            theta: None,
        }
    }

    /// A budget tolerating approximation ratio `max_ratio` at standard
    /// latency.
    pub fn within_ratio(max_ratio: f64) -> Self {
        QueryBudget {
            max_ratio,
            tier: LatencyTier::Standard,
            theta: None,
        }
    }

    /// Sets the latency tier.
    pub fn with_tier(mut self, tier: LatencyTier) -> Self {
        self.tier = tier;
        self
    }

    /// Requests the θ-SAC variant with radius constraint `theta`.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Validates the budget parameters with typed errors:
    /// [`SacError::InvalidRatio`] unless `max_ratio` is a finite number `>= 1`,
    /// [`SacError::InvalidTheta`] unless a set `theta` is finite and `> 0`.
    pub fn validate(&self) -> Result<(), SacError> {
        if !self.max_ratio.is_finite() || self.max_ratio < 1.0 {
            return Err(SacError::InvalidRatio(self.max_ratio));
        }
        if let Some(theta) = self.theta {
            if !theta.is_finite() || theta <= 0.0 {
                return Err(SacError::InvalidTheta(theta));
            }
        }
        Ok(())
    }
}

/// One algorithm selected from the registry, with its tuned query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedQuery {
    /// Registry name of the algorithm to dispatch.
    pub algorithm: &'static str,
    /// The tuned query (accuracy parameters derived from the budget).
    pub query: SacQuery,
    /// The approximation ratio the tuned algorithm guarantees (`None` for
    /// radius-constrained plans, which answer a different objective).
    pub guaranteed_ratio: Option<f64>,
}

/// The outcome of planning one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Plan {
    /// Dispatch the selected algorithm from the registry.
    Execute(PlannedQuery),
    /// Answered from the k-core cache without running any algorithm: `q` is in
    /// no k-core, so no SAC community exists (every algorithm returns `None`).
    Infeasible,
    /// The request never reached an algorithm (invalid budget or query).
    Rejected,
}

impl Plan {
    /// The registry name of the algorithm this plan dispatches, when any.
    pub fn algorithm(&self) -> Option<&'static str> {
        match self {
            Plan::Execute(planned) => Some(planned.algorithm),
            Plan::Infeasible | Plan::Rejected => None,
        }
    }

    /// Whether this plan dispatches the named algorithm.
    pub fn dispatches(&self, name: &str) -> bool {
        self.algorithm() == Some(name)
    }

    /// The approximation ratio this plan guarantees (`None` for plans that do
    /// not return an unconstrained SAC community).
    pub fn guaranteed_ratio(&self) -> Option<f64> {
        match self {
            Plan::Execute(planned) => planned.guaranteed_ratio,
            Plan::Infeasible | Plan::Rejected => None,
        }
    }

    /// Short wire/bench label, e.g. `exact_plus(eps_a=0.0001)`.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

// Stable wire labels: `<algorithm>(<explicit params>)`, and the two
// algorithm-free outcomes keep their historical names.
impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Execute(planned) => {
                write!(f, "{}{}", planned.algorithm, planned.query.params_label())
            }
            Plan::Infeasible => f.write_str("infeasible(cache)"),
            Plan::Rejected => f.write_str("rejected"),
        }
    }
}

/// Structural facts the planner reads from the k-core cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanContext {
    /// Size of the connected k-core containing `q`; `None` when `q` is in no
    /// k-core (or the check was skipped because `k < 2`).
    pub core_size: Option<usize>,
    /// Whether the cache proved the query infeasible (`k >= 2` and
    /// `core(q) < k`).
    pub infeasible: bool,
}

/// `AppAcc` requires `εA ∈ (0, 1)`: keep planner-derived values inside the
/// open interval.
fn clamp_eps_a(eps: f64) -> f64 {
    eps.clamp(1e-6, 1.0 - 1e-6)
}

/// A budget-to-algorithm planner over the profiles of an
/// [`AlgorithmRegistry`] (see the module docs for the selection policy and
/// the resulting decision table).
#[derive(Debug, Clone)]
pub struct Planner {
    registry: Arc<AlgorithmRegistry>,
    small_exact_threshold: usize,
    exact_eps_a: f64,
}

impl Planner {
    /// A planner selecting over `registry`, upgrading to an exact algorithm
    /// when the candidate k-core has at most `small_exact_threshold` members,
    /// and passing `exact_eps_a` to exact plans' bootstrap phase.
    pub fn new(
        registry: Arc<AlgorithmRegistry>,
        small_exact_threshold: usize,
        exact_eps_a: f64,
    ) -> Self {
        Planner {
            registry,
            small_exact_threshold,
            exact_eps_a,
        }
    }

    /// The registry this planner selects from.
    pub fn registry(&self) -> &Arc<AlgorithmRegistry> {
        &self.registry
    }

    /// Plans one query: validates the budget, then picks the best registered
    /// algorithm for it (see the module docs for the policy).  An explicit
    /// `override_algorithm` bypasses selection entirely and dispatches that
    /// registry entry with its default parameters.
    ///
    /// Errors are typed: an invalid budget is rejected here, a registry with
    /// no fitting algorithm yields [`SacError::InvalidBudget`], and an
    /// unknown override yields [`SacError::UnknownAlgorithm`].
    pub fn plan(
        &self,
        q: VertexId,
        k: u32,
        budget: &QueryBudget,
        ctx: &PlanContext,
        override_algorithm: Option<&str>,
    ) -> Result<Plan, SacError> {
        budget.validate()?;
        if let Some(name) = override_algorithm {
            return self.override_plan(q, k, budget, name);
        }
        if ctx.infeasible {
            return Ok(Plan::Infeasible);
        }
        if let Some(theta) = budget.theta {
            return self.theta_plan(q, k, theta);
        }
        // Workload-aware upgrade: every SAC community is a subset of the
        // connected k-core containing q, so a tiny candidate set makes an
        // exact algorithm as cheap as the approximations — spend the slack on
        // exactness.
        let small_core = ctx
            .core_size
            .is_some_and(|size| size <= self.small_exact_threshold);
        if small_core || budget.max_ratio <= 1.0 + 1e-12 {
            return self.exact_plan(q, k);
        }
        self.approximate_plan(q, k, budget)
    }

    /// Explicit A/B override: dispatch the named registry entry verbatim,
    /// with its documented default parameters (plus the budget's θ when set —
    /// θ-capable algorithms need it, the rest ignore it).  The reported
    /// guarantee is what the algorithm's declared band yields at defaults.
    fn override_plan(
        &self,
        q: VertexId,
        k: u32,
        budget: &QueryBudget,
        name: &str,
    ) -> Result<Plan, SacError> {
        let algorithm = self
            .registry
            .get(name)
            .ok_or_else(|| SacError::UnknownAlgorithm(name.to_string()))?;
        let profile = algorithm.profile();
        let mut query = SacQuery::new(q, k);
        if let Some(theta) = budget.theta {
            query = query.with_theta(theta);
        }
        let guaranteed_ratio = match profile.ratio {
            RatioGuarantee::Exact => Some(1.0),
            RatioGuarantee::Fixed(ratio) => Some(ratio),
            RatioGuarantee::OnePlusEpsA => Some(1.0 + sac_core::DEFAULT_EPS_A),
            RatioGuarantee::TwoPlusEpsF => Some(2.0 + sac_core::DEFAULT_EPS_F),
            RatioGuarantee::Unbounded => None,
        };
        Ok(Plan::Execute(PlannedQuery {
            algorithm: profile.name,
            query,
            guaranteed_ratio,
        }))
    }

    /// Radius-constrained request: the cheapest θ-capable algorithm.
    fn theta_plan(&self, q: VertexId, k: u32, theta: f64) -> Result<Plan, SacError> {
        let profile = self
            .fitting_profiles(|p| p.supports_theta)
            .into_iter()
            .min_by_key(|p| p.cost)
            .ok_or_else(|| {
                SacError::InvalidBudget("no registered algorithm supports theta".to_string())
            })?;
        Ok(Plan::Execute(PlannedQuery {
            algorithm: profile.name,
            query: SacQuery::new(q, k).with_theta(theta),
            guaranteed_ratio: None,
        }))
    }

    /// Exact demand (ratio 1 or small-core upgrade): the cheapest exact-ratio
    /// algorithm.
    fn exact_plan(&self, q: VertexId, k: u32) -> Result<Plan, SacError> {
        let profile = self
            .fitting_profiles(|p| p.ratio.is_exact())
            .into_iter()
            .min_by_key(|p| p.cost)
            .ok_or_else(|| {
                SacError::InvalidBudget("no registered algorithm is exact".to_string())
            })?;
        Ok(Plan::Execute(PlannedQuery {
            algorithm: profile.name,
            query: SacQuery::new(q, k).with_eps_a(self.exact_eps_a),
            guaranteed_ratio: Some(1.0),
        }))
    }

    /// Approximate demand: selects among the algorithms whose declared
    /// guarantee band contains `max_ratio` (exact-ratio algorithms compete
    /// only through [`Planner::exact_plan`]'s doors).
    fn approximate_plan(
        &self,
        q: VertexId,
        k: u32,
        budget: &QueryBudget,
    ) -> Result<Plan, SacError> {
        let candidates =
            self.fitting_profiles(|p| !p.ratio.is_exact() && p.ratio.fits(budget.max_ratio));
        let chosen = match budget.tier {
            // Interactive: cheapest wins; guarantee breaks cost ties.
            LatencyTier::Interactive => candidates.into_iter().min_by(|a, b| {
                (a.cost, tuned(a, budget))
                    .partial_cmp(&(b.cost, tuned(b, budget)))
                    .expect("fitting guarantees are finite")
            }),
            // Standard/Batch: tightest guarantee wins; a parameter-free
            // (fixed) guarantee beats a tunable one at equal ratio — it hits
            // its bound without accuracy-parameter slack; cost breaks what
            // remains.
            LatencyTier::Standard | LatencyTier::Batch => candidates.into_iter().min_by(|a, b| {
                (tuned(a, budget), a.ratio.is_tunable(), a.cost)
                    .partial_cmp(&(tuned(b, budget), b.ratio.is_tunable(), b.cost))
                    .expect("fitting guarantees are finite")
            }),
        };
        // Nothing in-band (possible with a stripped-down registry): fall back
        // to an exact answer, which trivially satisfies any ratio.
        let Some(profile) = chosen else {
            return self.exact_plan(q, k);
        };
        let mut query = SacQuery::new(q, k);
        let guaranteed = match profile.ratio {
            RatioGuarantee::OnePlusEpsA => {
                let eps_a = clamp_eps_a(budget.max_ratio - 1.0);
                query = query.with_eps_a(eps_a);
                1.0 + eps_a
            }
            RatioGuarantee::TwoPlusEpsF => {
                let eps_f = budget.max_ratio - 2.0;
                query = query.with_eps_f(eps_f);
                2.0 + eps_f
            }
            RatioGuarantee::Fixed(ratio) => ratio,
            RatioGuarantee::Exact => 1.0,
            RatioGuarantee::Unbounded => {
                unreachable!("unbounded guarantees never fit a ratio budget")
            }
        };
        Ok(Plan::Execute(PlannedQuery {
            algorithm: profile.name,
            query,
            guaranteed_ratio: Some(guaranteed),
        }))
    }

    /// The registered profiles passing `filter`.
    fn fitting_profiles(
        &self,
        filter: impl Fn(&AlgorithmProfile) -> bool,
    ) -> Vec<AlgorithmProfile> {
        self.registry
            .iter()
            .map(|a| a.profile())
            .filter(|p| filter(p))
            .collect()
    }
}

/// The guarantee `profile` achieves when tuned for `budget` (infinite when it
/// cannot fit, so it loses every comparison).
fn tuned(profile: &AlgorithmProfile, budget: &QueryBudget) -> f64 {
    profile
        .ratio
        .tuned(budget.max_ratio)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX_BIG: PlanContext = PlanContext {
        core_size: Some(100_000),
        infeasible: false,
    };

    fn planner() -> Planner {
        Planner::new(Arc::new(AlgorithmRegistry::builtin()), 48, 1e-4)
    }

    fn plan(budget: &QueryBudget, ctx: &PlanContext) -> Plan {
        planner().plan(0, 2, budget, ctx, None).unwrap()
    }

    #[test]
    fn accuracy_budget_selects_algorithm_family() {
        assert!(plan(&QueryBudget::exact(), &CTX_BIG).dispatches("exact_plus"));
        let acc = plan(&QueryBudget::within_ratio(1.5), &CTX_BIG);
        assert!(acc.dispatches("app_acc"));
        assert!(
            matches!(acc, Plan::Execute(p) if (p.query.eps_a() - 0.5).abs() < 1e-9),
            "AppAcc must be tuned to eps_a = max_ratio - 1"
        );
        assert!(plan(&QueryBudget::within_ratio(2.0), &CTX_BIG).dispatches("app_inc"));
        let fast = plan(
            &QueryBudget::within_ratio(2.5).with_tier(LatencyTier::Interactive),
            &CTX_BIG,
        );
        assert!(fast.dispatches("app_fast"));
        assert!(matches!(fast, Plan::Execute(p) if (p.query.eps_f() - 0.5).abs() < 1e-9));
    }

    #[test]
    fn every_plan_fits_its_budget() {
        for ratio in [1.0, 1.2, 1.5, 1.99, 2.0, 2.5, 4.0] {
            for tier in [
                LatencyTier::Interactive,
                LatencyTier::Standard,
                LatencyTier::Batch,
            ] {
                let budget = QueryBudget::within_ratio(ratio).with_tier(tier);
                let plan = plan(&budget, &CTX_BIG);
                let guaranteed = plan.guaranteed_ratio().expect("feasible plans have ratios");
                assert!(
                    guaranteed <= ratio + 1e-9,
                    "plan {plan} (ratio {guaranteed}) exceeds budget {ratio}"
                );
            }
        }
    }

    #[test]
    fn theta_and_infeasibility_short_circuit() {
        let budget = QueryBudget::balanced().with_theta(0.25);
        let plan_theta = plan(&budget, &CTX_BIG);
        assert!(plan_theta.dispatches("theta_sac"));
        assert_eq!(plan_theta.label(), "theta_sac(theta=0.25)");
        assert_eq!(plan_theta.guaranteed_ratio(), None);
        let infeasible = PlanContext {
            core_size: None,
            infeasible: true,
        };
        assert_eq!(plan(&budget, &infeasible), Plan::Infeasible);
        assert_eq!(plan(&QueryBudget::exact(), &infeasible), Plan::Infeasible);
    }

    #[test]
    fn tiny_core_upgrades_to_exact() {
        let small = PlanContext {
            core_size: Some(12),
            infeasible: false,
        };
        assert!(plan(&QueryBudget::interactive(), &small).dispatches("exact_plus"));
        // Just above the threshold: no upgrade.
        let medium = PlanContext {
            core_size: Some(49),
            infeasible: false,
        };
        assert!(plan(&QueryBudget::interactive(), &medium).dispatches("app_fast"));
    }

    #[test]
    fn budget_validation_rejects_nonsense() {
        assert_eq!(
            QueryBudget::within_ratio(0.5).validate(),
            Err(SacError::InvalidRatio(0.5))
        );
        assert!(QueryBudget::within_ratio(f64::NAN).validate().is_err());
        assert_eq!(
            QueryBudget::balanced().with_theta(-1.0).validate(),
            Err(SacError::InvalidTheta(-1.0))
        );
        assert_eq!(
            QueryBudget::balanced().with_theta(0.0).validate(),
            Err(SacError::InvalidTheta(0.0))
        );
        assert!(QueryBudget::balanced()
            .with_theta(f64::INFINITY)
            .validate()
            .is_err());
        assert!(QueryBudget::balanced().validate().is_ok());
        assert!(QueryBudget::exact().validate().is_ok());
        // The planner applies the same validation.
        assert!(planner()
            .plan(0, 2, &QueryBudget::within_ratio(0.2), &CTX_BIG, None)
            .is_err());
    }

    #[test]
    fn explicit_override_reaches_any_registered_algorithm() {
        let planner = planner();
        // The baselines are unreachable through budgets (Unbounded ratio)...
        for ratio in [1.0, 1.5, 4.0] {
            assert!(!plan(&QueryBudget::within_ratio(ratio), &CTX_BIG).dispatches("global"));
        }
        // ... but an explicit override dispatches them directly.
        for name in ["global", "local", "exact", "app_inc"] {
            let plan = planner
                .plan(0, 2, &QueryBudget::balanced(), &CTX_BIG, Some(name))
                .unwrap();
            assert!(plan.dispatches(name), "override {name}");
        }
        // Overrides skip the small-core upgrade and the infeasibility
        // short-circuit: the named algorithm runs even when the cache would
        // have answered.
        let infeasible = PlanContext {
            core_size: None,
            infeasible: true,
        };
        let plan_override = planner
            .plan(
                0,
                2,
                &QueryBudget::balanced(),
                &infeasible,
                Some("app_fast"),
            )
            .unwrap();
        assert!(plan_override.dispatches("app_fast"));
        // θ flows through to θ-capable overrides.
        let theta = planner
            .plan(
                0,
                2,
                &QueryBudget::balanced().with_theta(0.5),
                &CTX_BIG,
                Some("theta_sac"),
            )
            .unwrap();
        assert_eq!(theta.label(), "theta_sac(theta=0.5)");
        // Unknown overrides are typed errors; invalid budgets still reject.
        assert_eq!(
            planner.plan(0, 2, &QueryBudget::balanced(), &CTX_BIG, Some("bogus")),
            Err(SacError::UnknownAlgorithm("bogus".to_string()))
        );
        assert!(planner
            .plan(
                0,
                2,
                &QueryBudget::within_ratio(0.1),
                &CTX_BIG,
                Some("exact")
            )
            .is_err());
    }

    #[test]
    fn plans_render_stable_labels() {
        let inc = plan(&QueryBudget::within_ratio(2.0), &CTX_BIG);
        assert_eq!(inc.label(), "app_inc");
        let fast = plan(
            &QueryBudget::within_ratio(2.5).with_tier(LatencyTier::Interactive),
            &CTX_BIG,
        );
        assert_eq!(fast.label(), "app_fast(eps_f=0.5)");
        assert_eq!(Plan::Infeasible.label(), "infeasible(cache)");
        assert_eq!(Plan::Rejected.label(), "rejected");
        assert_eq!("batch".parse::<LatencyTier>(), Ok(LatencyTier::Batch));
        assert_eq!(LatencyTier::Batch.as_str(), "batch");
        assert!(matches!(
            "bogus".parse::<LatencyTier>(),
            Err(SacError::InvalidBudget(_))
        ));
    }

    #[test]
    fn fixed_guarantees_never_exceed_the_budget() {
        // Just below 2: AppInc's fixed ratio 2 does NOT fit — the plan must
        // stay in AppAcc's band even at interactive latency, so the handed-
        // back guarantee never exceeds what the caller demanded.
        let ratio = 2.0 - 1e-10;
        for tier in [
            LatencyTier::Interactive,
            LatencyTier::Standard,
            LatencyTier::Batch,
        ] {
            let plan = plan(&QueryBudget::within_ratio(ratio).with_tier(tier), &CTX_BIG);
            assert!(plan.dispatches("app_acc"), "tier {tier:?}");
            assert!(plan.guaranteed_ratio().unwrap() <= ratio);
        }
    }

    #[test]
    fn stripped_registries_fall_back_or_reject_with_typed_errors() {
        // Only AppInc registered: a 1.5-ratio budget has nothing in band and
        // no exact fallback -> typed error.
        let mut registry = AlgorithmRegistry::empty();
        registry.register(Arc::new(sac_core::AppIncSearch));
        let planner = Planner::new(Arc::new(registry), 0, 1e-4);
        assert!(matches!(
            planner.plan(0, 2, &QueryBudget::within_ratio(1.5), &CTX_BIG, None),
            Err(SacError::InvalidBudget(_))
        ));
        // ...and a theta request has no capable algorithm either.
        assert!(planner
            .plan(
                0,
                2,
                &QueryBudget::balanced().with_theta(1.0),
                &CTX_BIG,
                None
            )
            .is_err());

        // AppInc + Exact+: the out-of-band budget falls back to exact.
        let mut registry = AlgorithmRegistry::empty();
        registry.register(Arc::new(sac_core::AppIncSearch));
        registry.register(Arc::new(sac_core::ExactPlusSearch));
        let planner = Planner::new(Arc::new(registry), 0, 1e-4);
        let plan = planner
            .plan(0, 2, &QueryBudget::within_ratio(1.5), &CTX_BIG, None)
            .unwrap();
        assert!(plan.dispatches("exact_plus"));
    }
}
