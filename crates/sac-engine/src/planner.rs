//! The query planner: maps a per-request accuracy/latency budget onto one of
//! the paper's SAC algorithms.
//!
//! The paper's Table 3 gives every algorithm a proven approximation ratio on
//! the MCC radius and an asymptotic cost; the planner inverts that table.  A
//! request states the worst ratio it tolerates ([`QueryBudget::max_ratio`])
//! and how much latency it can spend ([`LatencyTier`]); the planner picks the
//! cheapest algorithm whose proven ratio fits, using the k-core cache's
//! structural statistics for one workload-aware upgrade: when the candidate
//! set (the connected k-core containing `q`, which every community is a subset
//! of) is tiny, even `Exact+` is effectively free, so the budget's slack is
//! converted into an exact answer at no latency cost.
//!
//! | budget | plan |
//! |---|---|
//! | `theta` set | [`Plan::ThetaSac`] (radius-constrained variant, §3) |
//! | `q` not in any k-core (cache lookup) | [`Plan::Infeasible`] — answered without running any algorithm |
//! | k-ĉore of `q` ≤ `small_exact_threshold` | [`Plan::ExactPlus`] |
//! | `max_ratio` = 1 | [`Plan::ExactPlus`] |
//! | 1 < `max_ratio` < 2 | [`Plan::AppAcc`] with `εA = max_ratio − 1` |
//! | `max_ratio` ≥ 2, [`LatencyTier::Interactive`] | [`Plan::AppFast`] with `εF = max_ratio − 2` |
//! | `max_ratio` ≥ 2, otherwise | [`Plan::AppInc`] |

use sac_core::SacError;
use std::fmt;

/// How much latency a request is willing to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyTier {
    /// Sub-millisecond target: always the cheapest algorithm that fits the
    /// accuracy budget.
    Interactive,
    /// Default tier for online serving.
    #[default]
    Standard,
    /// Offline / analytical: latency is secondary to result quality.
    Batch,
}

impl LatencyTier {
    /// Parses the wire names used by `sac-serve` (`interactive`, `standard`,
    /// `batch`).
    pub fn parse(name: &str) -> Option<LatencyTier> {
        match name {
            "interactive" => Some(LatencyTier::Interactive),
            "standard" => Some(LatencyTier::Standard),
            "batch" => Some(LatencyTier::Batch),
            _ => None,
        }
    }
}

/// Per-request accuracy/latency budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBudget {
    /// Largest acceptable approximation ratio on the MCC radius (`>= 1`; `1`
    /// demands the optimum).
    pub max_ratio: f64,
    /// Latency tier.
    pub tier: LatencyTier,
    /// When set, ask the θ-SAC variant instead: the community must lie inside
    /// the circle of radius `theta` around the query vertex.
    pub theta: Option<f64>,
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::balanced()
    }
}

impl QueryBudget {
    /// Demands the optimal community (ratio 1) at batch latency.
    pub fn exact() -> Self {
        QueryBudget {
            max_ratio: 1.0,
            tier: LatencyTier::Batch,
            theta: None,
        }
    }

    /// The default online budget: ratio ≤ 1.5 at standard latency (the paper's
    /// `AppAcc` configuration, Table 5).
    pub fn balanced() -> Self {
        QueryBudget {
            max_ratio: 1.5,
            tier: LatencyTier::Standard,
            theta: None,
        }
    }

    /// The low-latency budget: ratio ≤ 2.5 (the paper's `AppFast`
    /// configuration) at interactive latency.
    pub fn interactive() -> Self {
        QueryBudget {
            max_ratio: 2.5,
            tier: LatencyTier::Interactive,
            theta: None,
        }
    }

    /// A budget tolerating approximation ratio `max_ratio` at standard
    /// latency.
    pub fn within_ratio(max_ratio: f64) -> Self {
        QueryBudget {
            max_ratio,
            tier: LatencyTier::Standard,
            theta: None,
        }
    }

    /// Sets the latency tier.
    pub fn with_tier(mut self, tier: LatencyTier) -> Self {
        self.tier = tier;
        self
    }

    /// Requests the θ-SAC variant with radius constraint `theta`.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Validates the budget parameters.
    pub fn validate(&self) -> Result<(), SacError> {
        if !self.max_ratio.is_finite() || self.max_ratio < 1.0 {
            return Err(SacError::InvalidParameter {
                name: "max_ratio",
                message: format!("must be a finite number >= 1, got {}", self.max_ratio),
            });
        }
        if let Some(theta) = self.theta {
            if !theta.is_finite() || theta < 0.0 {
                return Err(SacError::InvalidParameter {
                    name: "theta",
                    message: format!("must be a finite non-negative number, got {theta}"),
                });
            }
        }
        Ok(())
    }
}

/// The algorithm chosen for one request, with its accuracy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Plan {
    /// `Exact+` (Algorithm 5): optimal result.
    ExactPlus {
        /// `εA` passed to the `AppAcc` bootstrap phase.
        eps_a: f64,
    },
    /// `AppAcc` (Algorithm 4): ratio `1 + εA`.
    AppAcc {
        /// Accuracy parameter `εA ∈ (0, 1)`.
        eps_a: f64,
    },
    /// `AppFast` (Algorithm 3): ratio `2 + εF`.
    AppFast {
        /// Accuracy parameter `εF ≥ 0`.
        eps_f: f64,
    },
    /// `AppInc` (Algorithm 2): ratio 2.
    AppInc,
    /// `θ-SAC` (§3): community constrained to the circle `O(q, θ)`.
    ThetaSac {
        /// Radius constraint.
        theta: f64,
    },
    /// Answered from the k-core cache without running any algorithm: `q` is in
    /// no k-core, so no SAC community exists (every algorithm returns `None`).
    Infeasible,
    /// The request never reached an algorithm (invalid budget or query).
    Rejected,
}

impl Plan {
    /// The approximation ratio this plan guarantees (`None` for plans that do
    /// not return an unconstrained SAC community).
    pub fn guaranteed_ratio(&self) -> Option<f64> {
        match self {
            Plan::ExactPlus { .. } => Some(1.0),
            Plan::AppAcc { eps_a } => Some(1.0 + eps_a),
            Plan::AppFast { eps_f } => Some(2.0 + eps_f),
            Plan::AppInc => Some(2.0),
            Plan::ThetaSac { .. } | Plan::Infeasible | Plan::Rejected => None,
        }
    }

    /// Short wire/bench label, e.g. `exact_plus(eps_a=0.0001)`.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::ExactPlus { eps_a } => write!(f, "exact_plus(eps_a={eps_a})"),
            Plan::AppAcc { eps_a } => write!(f, "app_acc(eps_a={eps_a})"),
            Plan::AppFast { eps_f } => write!(f, "app_fast(eps_f={eps_f})"),
            Plan::AppInc => write!(f, "app_inc"),
            Plan::ThetaSac { theta } => write!(f, "theta_sac(theta={theta})"),
            Plan::Infeasible => write!(f, "infeasible(cache)"),
            Plan::Rejected => write!(f, "rejected"),
        }
    }
}

/// Structural facts the planner reads from the k-core cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanContext {
    /// Size of the connected k-core containing `q`; `None` when `q` is in no
    /// k-core (or the check was skipped because `k < 2`).
    pub core_size: Option<usize>,
    /// Whether the cache proved the query infeasible (`k >= 2` and
    /// `core(q) < k`).
    pub infeasible: bool,
}

/// `AppAcc` requires `εA ∈ (0, 1)`: keep planner-derived values inside the
/// open interval.
fn clamp_eps_a(eps: f64) -> f64 {
    eps.clamp(1e-6, 1.0 - 1e-6)
}

/// Picks the cheapest plan whose guaranteed ratio fits `budget` (see the
/// module docs for the full decision table).
pub fn plan_query(
    budget: &QueryBudget,
    ctx: &PlanContext,
    small_exact_threshold: usize,
    exact_eps_a: f64,
) -> Plan {
    if let Some(theta) = budget.theta {
        if ctx.infeasible {
            return Plan::Infeasible;
        }
        return Plan::ThetaSac { theta };
    }
    if ctx.infeasible {
        return Plan::Infeasible;
    }
    // Workload-aware upgrade: every SAC community is a subset of the connected
    // k-core containing q, so a tiny candidate set makes Exact+ as cheap as
    // the approximations — spend the slack on exactness.
    if let Some(size) = ctx.core_size {
        if size <= small_exact_threshold {
            return Plan::ExactPlus { eps_a: exact_eps_a };
        }
    }
    if budget.max_ratio <= 1.0 + 1e-12 {
        return Plan::ExactPlus { eps_a: exact_eps_a };
    }
    if budget.max_ratio < 2.0 {
        return Plan::AppAcc {
            eps_a: clamp_eps_a(budget.max_ratio - 1.0),
        };
    }
    match budget.tier {
        LatencyTier::Interactive => Plan::AppFast {
            eps_f: budget.max_ratio - 2.0,
        },
        LatencyTier::Standard | LatencyTier::Batch => Plan::AppInc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX_BIG: PlanContext = PlanContext {
        core_size: Some(100_000),
        infeasible: false,
    };

    fn plan(budget: &QueryBudget, ctx: &PlanContext) -> Plan {
        plan_query(budget, ctx, 48, 1e-4)
    }

    #[test]
    fn accuracy_budget_selects_algorithm_family() {
        assert!(matches!(
            plan(&QueryBudget::exact(), &CTX_BIG),
            Plan::ExactPlus { .. }
        ));
        let acc = plan(&QueryBudget::within_ratio(1.5), &CTX_BIG);
        assert!(matches!(acc, Plan::AppAcc { eps_a } if (eps_a - 0.5).abs() < 1e-9));
        assert!(matches!(
            plan(&QueryBudget::within_ratio(2.0), &CTX_BIG),
            Plan::AppInc
        ));
        let fast = plan(
            &QueryBudget::within_ratio(2.5).with_tier(LatencyTier::Interactive),
            &CTX_BIG,
        );
        assert!(matches!(fast, Plan::AppFast { eps_f } if (eps_f - 0.5).abs() < 1e-9));
    }

    #[test]
    fn every_plan_fits_its_budget() {
        for ratio in [1.0, 1.2, 1.5, 1.99, 2.0, 2.5, 4.0] {
            for tier in [
                LatencyTier::Interactive,
                LatencyTier::Standard,
                LatencyTier::Batch,
            ] {
                let budget = QueryBudget::within_ratio(ratio).with_tier(tier);
                let plan = plan(&budget, &CTX_BIG);
                let guaranteed = plan.guaranteed_ratio().expect("feasible plans have ratios");
                assert!(
                    guaranteed <= ratio + 1e-9,
                    "plan {plan} (ratio {guaranteed}) exceeds budget {ratio}"
                );
            }
        }
    }

    #[test]
    fn theta_and_infeasibility_short_circuit() {
        let budget = QueryBudget::balanced().with_theta(0.25);
        assert_eq!(plan(&budget, &CTX_BIG), Plan::ThetaSac { theta: 0.25 });
        let infeasible = PlanContext {
            core_size: None,
            infeasible: true,
        };
        assert_eq!(plan(&budget, &infeasible), Plan::Infeasible);
        assert_eq!(plan(&QueryBudget::exact(), &infeasible), Plan::Infeasible);
    }

    #[test]
    fn tiny_core_upgrades_to_exact() {
        let small = PlanContext {
            core_size: Some(12),
            infeasible: false,
        };
        assert!(matches!(
            plan(&QueryBudget::interactive(), &small),
            Plan::ExactPlus { .. }
        ));
        // Just above the threshold: no upgrade.
        let medium = PlanContext {
            core_size: Some(49),
            infeasible: false,
        };
        assert!(matches!(
            plan(&QueryBudget::interactive(), &medium),
            Plan::AppFast { .. }
        ));
    }

    #[test]
    fn budget_validation_rejects_nonsense() {
        assert!(QueryBudget::within_ratio(0.5).validate().is_err());
        assert!(QueryBudget::within_ratio(f64::NAN).validate().is_err());
        assert!(QueryBudget::balanced().with_theta(-1.0).validate().is_err());
        assert!(QueryBudget::balanced()
            .with_theta(f64::INFINITY)
            .validate()
            .is_err());
        assert!(QueryBudget::balanced().validate().is_ok());
        assert!(QueryBudget::exact().validate().is_ok());
    }

    #[test]
    fn plans_render_stable_labels() {
        assert_eq!(Plan::AppInc.label(), "app_inc");
        assert_eq!(Plan::AppFast { eps_f: 0.5 }.label(), "app_fast(eps_f=0.5)");
        assert_eq!(Plan::Infeasible.label(), "infeasible(cache)");
        assert_eq!(LatencyTier::parse("batch"), Some(LatencyTier::Batch));
        assert_eq!(LatencyTier::parse("bogus"), None);
    }
}
