//! The serving engine: epoch-published immutable graph snapshots, the shared
//! k-core cache, the planner, and a concurrent batch executor.

use crate::cache::{CacheLayerStats, CacheStats, KCoreCache, KCoreComponents};
use crate::epoch::EpochCell;
use crate::planner::{LatencyTier, Plan, PlanContext, PlannedQuery, Planner, QueryBudget};
use sac_core::{AlgorithmRegistry, Community, SacError, SearchContext, EXACT_PLUS_EPS_A};
use sac_geom::EPS;
use sac_graph::{CoreDecomposition, ShardMap, ShardedGraph, SpatialGraph, SweepStats, VertexId};
use sac_obs::{
    Counter, EventLog, Histogram, LatencySummary, MetricsRegistry, SlowQueryLog, SlowQueryRecord,
    Span, TraceNode, WindowedHistogram,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Tunables of a [`SacEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Connected-k-core size at or below which the planner upgrades any
    /// unconstrained budget to `Exact+` (the candidate set is so small that an
    /// exact answer costs no more than an approximate one).
    pub small_exact_threshold: usize,
    /// `εA` used inside `Exact+` plans (the paper's exact-experiment value).
    pub exact_eps_a: f64,
    /// Number of spatial shards the engine serves (`0` or `1` = unsharded).
    /// With `N >= 2`, each epoch additionally carries `N` per-shard induced
    /// snapshots and queries whose cover circle fits inside one shard's
    /// interior execute on that shard alone (see [`sac_graph::ShardMap`]).
    pub shards: usize,
    /// Halo-ring width of each shard, as a fraction of the data bounding-box
    /// diagonal (see [`sac_graph::ShardMap::halo`]).  Larger halos route more
    /// queries single-shard at the price of more duplicated boundary edges.
    pub shard_halo_frac: f64,
    /// Whether the engine records latency histograms, stage spans and
    /// fallback-reason counters (see [`SacEngine::metrics`]).  On by default
    /// — recording is a handful of relaxed atomic adds per query (the bench
    /// gate pins the dispatch overhead at ≤1.05x) — but the overhead
    /// benchmark itself, and any caller that wants the absolute minimum hot
    /// path, can switch it off.
    pub observe: bool,
    /// Queries slower than this many microseconds end-to-end are captured in
    /// the slow-query ring buffer ([`SacEngine::slow_log`]); `0` disables
    /// capture.  Ignored when `observe` is off.
    pub slow_query_micros: u64,
    /// Capacity of the slow-query ring buffer: when full, the oldest entry
    /// is evicted (and counted in `sac_slow_queries_dropped_total`).  Sized
    /// for the scrape interval — a scraper that polls every few seconds only
    /// needs the ring to hold the slow queries of one interval.
    pub slowlog_capacity: usize,
    /// Head-sampling rate for per-query trace trees: every `N`th query (by
    /// engine query id) gets a full [`TraceNode`] span tree attached to its
    /// [`QueryTrace::tree`]; `0` disables sampling.  Requests that set
    /// [`SacRequest::trace`] and queries that trip the slow-query threshold
    /// are always traced regardless.  Trees are assembled off the hot path
    /// from stage timings the engine measures anyway, so sampled queries pay
    /// one small allocation after their response is already timed.
    pub trace_sample_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            small_exact_threshold: 48,
            exact_eps_a: EXACT_PLUS_EPS_A,
            shards: 0,
            shard_halo_frac: 0.125,
            observe: true,
            slow_query_micros: 10_000,
            slowlog_capacity: 128,
            trace_sample_every: 64,
        }
    }
}

/// Number of windows in the engine's rotating latency telemetry ring.
const TELEMETRY_WINDOWS: usize = 10;
/// Width of one telemetry window in microseconds (1s; the ring spans 10s).
const TELEMETRY_WINDOW_MICROS: u64 = 1_000_000;
/// Capacity of the engine's control-plane event ring.
const EVENT_LOG_CAPACITY: usize = 1024;

/// One SAC query against the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SacRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Query vertex.
    pub q: VertexId,
    /// Minimum degree constraint.
    pub k: u32,
    /// Accuracy/latency budget driving plan selection.
    pub budget: QueryBudget,
    /// Explicit algorithm override: when set, the planner dispatches this
    /// registry name directly (default parameters, no small-core upgrade, no
    /// cache-infeasibility short-circuit), which makes otherwise unreachable
    /// registrations — e.g. the `global`/`local` baselines — A/B-testable
    /// against the planned path.
    pub algorithm: Option<String>,
    /// Requests a full [`TraceNode`] span tree on the response regardless of
    /// the engine's head-sampling rate ([`EngineConfig::trace_sample_every`]).
    pub trace: bool,
}

impl SacRequest {
    /// A request with the default (balanced) budget.
    pub fn new(id: u64, q: VertexId, k: u32) -> Self {
        SacRequest {
            id,
            q,
            k,
            budget: QueryBudget::default(),
            algorithm: None,
            trace: false,
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Forces the named registry algorithm instead of planner selection.
    pub fn with_algorithm(mut self, algorithm: impl Into<String>) -> Self {
        self.algorithm = Some(algorithm.into());
        self
    }

    /// Requests a span tree on the response (see [`SacRequest::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// A validating builder for a request against vertex `q` with degree
    /// bound `k` (see [`SacRequestBuilder`]).
    pub fn builder(q: VertexId, k: u32) -> SacRequestBuilder {
        SacRequestBuilder {
            id: 0,
            q,
            k,
            budget: QueryBudget::default(),
            algorithm: None,
            trace: false,
        }
    }
}

/// A validating builder for [`SacRequest`]: budget nonsense (`max_ratio < 1`,
/// non-finite or non-positive `theta`) is rejected with typed errors at
/// construction time, before the request ever reaches an engine.
///
/// ```
/// use sac_engine::{LatencyTier, SacRequest};
/// use sac_core::SacError;
///
/// let request = SacRequest::builder(17, 4)
///     .id(1)
///     .ratio(1.5)
///     .tier(LatencyTier::Interactive)
///     .build()
///     .unwrap();
/// assert_eq!(request.budget.max_ratio, 1.5);
///
/// // Invalid budgets never become requests.
/// assert_eq!(
///     SacRequest::builder(17, 4).ratio(0.5).build(),
///     Err(SacError::InvalidRatio(0.5))
/// );
/// assert_eq!(
///     SacRequest::builder(17, 4).theta(0.0).build(),
///     Err(SacError::InvalidTheta(0.0))
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SacRequestBuilder {
    id: u64,
    q: VertexId,
    k: u32,
    budget: QueryBudget,
    algorithm: Option<String>,
    trace: bool,
}

impl SacRequestBuilder {
    /// Sets the caller-chosen request id (echoed in the response).
    pub fn id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Forces the named registry algorithm instead of planner selection (see
    /// [`SacRequest::algorithm`]); an unknown name is reported by the engine
    /// as [`SacError::UnknownAlgorithm`].
    pub fn algorithm(mut self, algorithm: impl Into<String>) -> Self {
        self.algorithm = Some(algorithm.into());
        self
    }

    /// Sets the largest acceptable approximation ratio (`>= 1`).
    pub fn ratio(mut self, max_ratio: f64) -> Self {
        self.budget.max_ratio = max_ratio;
        self
    }

    /// Sets the latency tier.
    pub fn tier(mut self, tier: LatencyTier) -> Self {
        self.budget.tier = tier;
        self
    }

    /// Requests the θ-SAC variant with radius constraint `theta` (`> 0`).
    pub fn theta(mut self, theta: f64) -> Self {
        self.budget.theta = Some(theta);
        self
    }

    /// Replaces the whole budget.
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Requests a span tree on the response (see [`SacRequest::trace`]).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Validates the budget and builds the request.
    ///
    /// Typed errors: [`SacError::InvalidRatio`] for `max_ratio < 1` (or
    /// non-finite), [`SacError::InvalidTheta`] for `theta <= 0` (or
    /// non-finite).  An unknown query vertex is reported by the engine — the
    /// builder has no graph to check against — as the equally typed
    /// [`SacError::QueryVertexOutOfRange`].
    pub fn build(self) -> Result<SacRequest, SacError> {
        self.budget.validate()?;
        Ok(SacRequest {
            id: self.id,
            q: self.q,
            k: self.k,
            budget: self.budget,
            algorithm: self.algorithm,
            trace: self.trace,
        })
    }
}

/// Per-request trace metadata: where and how a response was produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryTrace {
    /// Monotonically increasing per-engine query id (1, 2, 3, …), assigned
    /// at execution time — the correlation key between responses, slow-log
    /// entries and transport logs.
    pub query_id: u64,
    /// Epoch (snapshot generation) the query was answered against.
    pub epoch: u64,
    /// Number of spatial shards in the serving epoch (`0` for an unsharded
    /// engine).
    pub shard_count: u32,
    /// Shards this query's execution involved: `1` when its cover circle fit
    /// inside one shard's interior (the single-shard fast path), the number
    /// of shard regions the cover circle intersects when it fell back to the
    /// global snapshot, and `0` for queries that never dispatched an
    /// algorithm (cache-answered or rejected) or ran on an unsharded engine.
    pub shards_touched: u32,
    /// Microseconds spent planning (budget validation, cache feasibility
    /// lookup, profile selection).
    pub plan_micros: u64,
    /// Microseconds spent executing the selected algorithm.
    pub exec_micros: u64,
    /// Whether the k-core cache was already warm when the query arrived.
    pub cache_hit: bool,
    /// The approximation ratio the dispatched plan guarantees, when any.
    pub guaranteed_ratio: Option<f64>,
    /// Connected-k-core feasibility probes the executed algorithm issued
    /// (radius-sweep prefix probes, arbitrary-circle probes and collected
    /// probes); 0 for cache-answered or rejected queries.
    pub probe_count: u64,
    /// Spatial candidates materialised by the algorithm's sweep begins — the
    /// amortisation denominator: from-scratch probing would pay a range query
    /// *per probe*, the sweep pays one candidate view per sweep.
    pub candidate_count: u64,
    /// Full span tree (`query → {plan, route, exec → {shard:N | global}}`),
    /// present when the request asked for one ([`SacRequest::trace`]) or the
    /// query was head-sampled ([`EngineConfig::trace_sample_every`]).  Built
    /// lazily from the stage timings above, after the query is already timed.
    pub tree: Option<TraceNode>,
}

/// The engine's answer to one [`SacRequest`].
#[derive(Debug, Clone)]
pub struct SacResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the query vertex.
    pub q: VertexId,
    /// Echo of the degree constraint.
    pub k: u32,
    /// The plan the engine dispatched.
    pub plan: Plan,
    /// The community (or `None` when infeasible), or the per-query error.
    pub outcome: Result<Option<Community>, SacError>,
    /// Wall-clock service time in microseconds (planning + execution).
    pub micros: u64,
    /// Trace metadata: epoch, phase timings, cache state, guarantee.
    pub trace: QueryTrace,
}

impl SacResponse {
    /// The community when the query succeeded and was feasible.
    pub fn community(&self) -> Option<&Community> {
        self.outcome.as_ref().ok().and_then(|c| c.as_ref())
    }
}

/// Serving counters of one spatial shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id.
    pub shard: u32,
    /// Epoch in which this shard's induced snapshot was last rebuilt (clean
    /// commits carry the snapshot, so this lags the engine epoch).
    pub epoch: u64,
    /// Single-shard fast-path queries executed on this shard.
    pub queries: u64,
    /// Epoch publishes that carried this shard's snapshot unchanged.
    pub carries: u64,
    /// Epoch publishes that rebuilt this shard's snapshot (including the
    /// initial build).
    pub rebuilds: u64,
    /// Edges of the shard's induced subgraph in the current epoch.
    pub edges: usize,
}

/// Aggregate serving counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Queries answered (including errors).
    pub queries: u64,
    /// Queries short-circuited by the cache feasibility check.
    pub infeasible_fast_path: u64,
    /// Queries that returned a per-query error.
    pub errors: u64,
    /// Cache counters, cumulative across all epochs (retired epochs' counters
    /// are folded in when a new snapshot is published).
    pub cache: CacheStats,
    /// Number of the currently served epoch (1 for a freshly built engine).
    pub epoch: u64,
    /// Leadership term this engine serves under (0 until failover stamps
    /// one; bumped on replica promotion, durably mirrored in the WAL).
    pub term: u64,
    /// Snapshots published over this engine's lifetime (epoch swaps).
    pub epochs_published: u64,
    /// Per-`k` component indexes carried over across epoch swaps (their `k`
    /// was untouched by the delta, so the index stayed valid).
    pub components_carried: u64,
    /// Per-`k` component indexes dropped at epoch swaps because the delta
    /// touched their `k`.
    pub components_invalidated: u64,
    /// Number of spatial shards this engine serves (`0` = unsharded).
    pub shard_count: u32,
    /// Queries answered on a single shard's induced snapshot.
    pub single_shard_queries: u64,
    /// Dispatched queries that fell back to the global snapshot (cover circle
    /// straddling shard interiors, explicit algorithm overrides, trivial
    /// `k < 2`).  Always 0 on an unsharded engine: the counter only ticks
    /// when shards exist.
    pub fallback_queries: u64,
    /// Per-shard counters, in shard order (empty for an unsharded engine).
    pub shards: Vec<ShardStats>,
    /// End-to-end latency percentile summaries per [`LatencyTier`], in
    /// [`LatencyTier::ALL`] order.  Empty when observation is disabled
    /// ([`EngineConfig::observe`]).
    pub tier_latency: Vec<LatencyStats>,
    /// End-to-end latency percentile summaries per dispatched algorithm, in
    /// registry order.  Empty when observation is disabled.
    pub algorithm_latency: Vec<LatencyStats>,
    /// Windowed ("last 10s") latency summaries per [`LatencyTier`], in
    /// [`LatencyTier::ALL`] order — the rotating-ring counterpart of
    /// `tier_latency`, so dashboards can tell "slow right now" from "slow
    /// since boot".  Empty when observation is disabled.
    pub windowed_tier_latency: Vec<LatencyStats>,
    /// Wall-clock span the windowed summaries cover, in microseconds (ramps
    /// up from 0 on a fresh engine until the ring is full; the offered rate
    /// over the window is `count / span`).  `0` when observation is disabled.
    pub window_span_micros: u64,
}

/// One labelled latency series of [`EngineStats`]: a tier or algorithm name
/// plus its percentile summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    /// Series label: the tier wire name or the registry algorithm name.
    pub label: &'static str,
    /// p50/p95/p99/max summary in microseconds.
    pub summary: LatencySummary,
}

/// The engine's answer to one snapshot publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// Number of the newly current epoch.
    pub epoch: u64,
    /// Per-`k` component indexes carried over from the previous epoch.
    pub components_carried: u64,
    /// Per-`k` component indexes invalidated by the delta.
    pub components_invalidated: u64,
    /// Shard snapshots rebuilt for the new epoch (0 on unsharded engines).
    pub shards_rebuilt: u32,
    /// Shard snapshots carried unchanged (their region saw no mutation).
    pub shards_carried: u32,
    /// Microseconds spent rebuilding dirty shard snapshots.
    pub rebuild_micros: u64,
    /// Microseconds spent swapping the epoch pointer (and folding the
    /// retired epoch's cache counters).
    pub swap_micros: u64,
}

/// One shard of a served epoch: the induced snapshot plus the epoch it was
/// last rebuilt in (carried slots keep their build epoch).
#[derive(Debug, Clone)]
struct ShardSlot {
    graph: Arc<SpatialGraph>,
    since_epoch: u64,
}

/// One served epoch: the global snapshot, the k-core cache built against it,
/// and — on sharded engines — the per-shard pointer array (the global
/// snapshot doubles as "shard ∞", the fallback every multi-shard query
/// executes on).
#[derive(Debug)]
struct EngineEpoch {
    number: u64,
    graph: Arc<SpatialGraph>,
    cache: KCoreCache,
    map: Option<Arc<ShardMap>>,
    shards: Vec<ShardSlot>,
}

/// One planned-and-routed request awaiting execution: the output of the
/// planning half of the query path, consumed by the execution half (the
/// shard-affine batch executor separates the two so planning happens exactly
/// once per request).
struct PreparedQuery {
    plan_result: Result<Plan, SacError>,
    /// `(shard, shard_count, shards_touched)`; `shard == None` is the global
    /// snapshot.
    route: (Option<u32>, u32, u32),
    /// Cache warmth sampled *before* planning (planning itself warms it).
    cache_hit: bool,
    plan_micros: u64,
    /// Shard-routing share of `plan_micros` (trace trees split it out).
    route_micros: u64,
}

/// The engine's observability surface: the metric registry shared with the
/// serving layers above, pre-bound instrument handles for the dispatch hot
/// path (no registry lock is ever taken per query), the slow-query ring and
/// the query-id source.
#[derive(Debug)]
struct EngineObs {
    /// Whether the hot path records at all ([`EngineConfig::observe`]).
    enabled: bool,
    registry: Arc<MetricsRegistry>,
    /// End-to-end latency per tier, indexed by [`LatencyTier::index`].
    tier_latency: [Arc<Histogram>; 3],
    /// Windowed ("last 10s") end-to-end latency per tier, same indexing.
    tier_window: [Arc<WindowedHistogram>; 3],
    /// End-to-end latency per registered algorithm, in registry order
    /// (linear scan — registries hold a handful of entries).
    algo_latency: Vec<(&'static str, Arc<Histogram>)>,
    /// Planning sub-span (budget validation + cache feasibility + profile
    /// selection).
    plan_stage: Arc<Histogram>,
    /// Shard-routing sub-span (cover-radius bound + interior test).
    route_stage: Arc<Histogram>,
    /// Execution sub-span (the dispatched algorithm itself).
    exec_stage: Arc<Histogram>,
    /// Publish-pipeline sub-spans: per-shard snapshot rebuilds and the epoch
    /// pointer swap (+ retired-counter fold).
    publish_rebuild: Arc<Histogram>,
    publish_swap: Arc<Histogram>,
    /// Why dispatched queries fell off the single-shard fast path.
    fallback_override: Arc<Counter>,
    fallback_trivial_k: Arc<Counter>,
    fallback_cover: Arc<Counter>,
    slow_log: SlowQueryLog,
    /// Sequence-numbered control-plane events (epoch swaps, fallbacks).
    events: Arc<EventLog>,
    /// Head-sampling rate for trace trees (0 = sampling off).
    trace_sample_every: u64,
    query_ids: AtomicU64,
}

impl EngineObs {
    fn new(config: &EngineConfig, algorithms: &[&'static str]) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        const TIER_HELP: &str = "End-to-end query latency per latency tier";
        const ALGO_HELP: &str = "End-to-end query latency per dispatched algorithm";
        const STAGE_HELP: &str = "Query dispatch stage latency";
        const PUBLISH_HELP: &str = "Epoch publish stage latency";
        const FALLBACK_HELP: &str =
            "Dispatched queries that fell back to the global snapshot, by reason";
        let tier_latency = std::array::from_fn(|i| {
            registry.histogram(
                "sac_query_latency_micros",
                TIER_HELP,
                &[("tier", LatencyTier::ALL[i].as_str())],
            )
        });
        let tier_window = std::array::from_fn(|i| {
            registry.windowed_histogram(
                "sac_query_latency_window_micros",
                "End-to-end query latency over the last 10s, per latency tier",
                &[("tier", LatencyTier::ALL[i].as_str())],
                TELEMETRY_WINDOWS,
                TELEMETRY_WINDOW_MICROS,
            )
        });
        let algo_latency = algorithms
            .iter()
            .map(|&name| {
                (
                    name,
                    registry.histogram(
                        "sac_algorithm_latency_micros",
                        ALGO_HELP,
                        &[("algorithm", name)],
                    ),
                )
            })
            .collect();
        let stage = |stage: &'static str| {
            registry.histogram("sac_stage_micros", STAGE_HELP, &[("stage", stage)])
        };
        let publish = |stage: &'static str| {
            registry.histogram(
                "sac_publish_stage_micros",
                PUBLISH_HELP,
                &[("stage", stage)],
            )
        };
        let fallback = |reason: &'static str| {
            registry.counter(
                "sac_fallback_queries_total",
                FALLBACK_HELP,
                &[("reason", reason)],
            )
        };
        EngineObs {
            enabled: config.observe,
            tier_latency,
            tier_window,
            algo_latency,
            plan_stage: stage("plan"),
            route_stage: stage("route"),
            exec_stage: stage("exec"),
            publish_rebuild: publish("shard_rebuild"),
            publish_swap: publish("epoch_swap"),
            fallback_override: fallback("override"),
            fallback_trivial_k: fallback("trivial_k"),
            fallback_cover: fallback("cover_spans_shards"),
            slow_log: SlowQueryLog::new(
                config.slowlog_capacity,
                if config.observe {
                    config.slow_query_micros
                } else {
                    0
                },
            ),
            events: Arc::new(EventLog::new(EVENT_LOG_CAPACITY)),
            trace_sample_every: config.trace_sample_every,
            query_ids: AtomicU64::new(0),
            registry,
        }
    }
}

/// A thread-safe SAC query engine over one immutable graph snapshot.
///
/// The engine owns an `Arc<SpatialGraph>` snapshot (shared, read-only — see
/// the `Send + Sync` assertions in `sac-graph`), a [`KCoreCache`] that
/// memoises the core decomposition and per-`k` connected-core indexes, and a
/// planner that turns each request's [`QueryBudget`] into one of the paper's
/// algorithms.  All methods take `&self`; one engine serves any number of
/// threads concurrently.
///
/// ```
/// use sac_engine::{QueryBudget, SacEngine, SacRequest};
///
/// let engine = SacEngine::new(sac_core::fixtures::figure3_graph());
/// let request = SacRequest::new(0, sac_core::fixtures::figure3::Q, 2)
///     .with_budget(QueryBudget::exact());
/// let response = engine.execute(&request);
/// let community = response.community().expect("Q has a 2-core community");
/// assert!(community.contains(sac_core::fixtures::figure3::Q));
/// ```
#[derive(Debug)]
pub struct SacEngine {
    epoch: EpochCell<EngineEpoch>,
    planner: Planner,
    queries: AtomicU64,
    infeasible_fast_path: AtomicU64,
    errors: AtomicU64,
    epochs_published: AtomicU64,
    components_carried: AtomicU64,
    components_invalidated: AtomicU64,
    /// Cache counters of retired epochs, folded in at publish time so
    /// [`EngineStats::cache`] stays cumulative across swaps.
    retired_cache: Mutex<CacheStats>,
    // Sharding counters, sized by the (fixed) shard count; empty when
    // unsharded.  Engine-lifetime, so clean-shard carries don't reset them.
    shard_queries: Vec<AtomicU64>,
    shard_carries: Vec<AtomicU64>,
    shard_rebuilds: Vec<AtomicU64>,
    single_shard_queries: AtomicU64,
    fallback_queries: AtomicU64,
    /// Leadership term (failover fencing): plain state the failover layer
    /// stamps, carried here so every WAL record and stats reply can read it
    /// off the engine handle.
    term: AtomicU64,
    obs: EngineObs,
}

impl SacEngine {
    /// An engine owning `graph` as its immutable snapshot.
    pub fn new(graph: SpatialGraph) -> Self {
        SacEngine::from_snapshot(Arc::new(graph))
    }

    /// An engine over an existing shared snapshot.
    pub fn from_snapshot(graph: Arc<SpatialGraph>) -> Self {
        SacEngine::with_config(graph, EngineConfig::default())
    }

    /// An engine with custom tunables over the built-in algorithm registry.
    pub fn with_config(graph: Arc<SpatialGraph>, config: EngineConfig) -> Self {
        SacEngine::with_registry(graph, config, Arc::new(AlgorithmRegistry::builtin()))
    }

    /// An engine serving the algorithms of a caller-supplied registry: the
    /// planner selects over the registered profiles and every query arm
    /// dispatches by name, so registering an algorithm is all it takes to
    /// serve it.
    pub fn with_registry(
        graph: Arc<SpatialGraph>,
        config: EngineConfig,
        registry: Arc<AlgorithmRegistry>,
    ) -> Self {
        // Partition once at construction; the map is stable across epochs
        // (only shard contents are rebuilt as the graph mutates).
        let map = if config.shards >= 2 {
            let frac = if config.shard_halo_frac.is_finite() {
                config.shard_halo_frac.max(0.0)
            } else {
                EngineConfig::default().shard_halo_frac
            };
            Some(Arc::new(
                ShardMap::build(graph.positions(), config.shards.min(256), frac)
                    .expect("non-empty snapshot always partitions"),
            ))
        } else {
            None
        };
        SacEngine::assemble(graph, config, registry, map, 1)
    }

    /// An engine rebuilt from recovered state: serves `graph` as epoch
    /// `epoch` under a caller-supplied (previously serialized) spatial
    /// partition instead of repartitioning from current positions.  Crash
    /// recovery uses this so the shard layout — and therefore every
    /// query-routing decision — is bit-identical to the pre-crash engine.
    pub fn restored(
        graph: Arc<SpatialGraph>,
        config: EngineConfig,
        map: Option<Arc<ShardMap>>,
        epoch: u64,
    ) -> Self {
        SacEngine::assemble(
            graph,
            config,
            Arc::new(AlgorithmRegistry::builtin()),
            map,
            epoch.max(1),
        )
    }

    fn assemble(
        graph: Arc<SpatialGraph>,
        config: EngineConfig,
        registry: Arc<AlgorithmRegistry>,
        map: Option<Arc<ShardMap>>,
        epoch: u64,
    ) -> Self {
        let shards: Vec<ShardSlot> = match &map {
            Some(map) => {
                let sharded = ShardedGraph::build(&graph, Arc::clone(map))
                    .expect("shard materialisation of a valid snapshot succeeds");
                sharded
                    .iter()
                    .map(|g| ShardSlot {
                        graph: Arc::clone(g),
                        since_epoch: epoch,
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        let shard_count = shards.len();
        let obs = EngineObs::new(&config, &registry.names());
        SacEngine {
            epoch: EpochCell::new(Arc::new(EngineEpoch {
                number: epoch,
                graph,
                cache: KCoreCache::new(),
                map,
                shards,
            })),
            planner: Planner::new(registry, config.small_exact_threshold, config.exact_eps_a),
            queries: AtomicU64::new(0),
            infeasible_fast_path: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            epochs_published: AtomicU64::new(0),
            components_carried: AtomicU64::new(0),
            components_invalidated: AtomicU64::new(0),
            retired_cache: Mutex::new(CacheStats::default()),
            shard_queries: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            shard_carries: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            shard_rebuilds: (0..shard_count).map(|_| AtomicU64::new(1)).collect(),
            single_shard_queries: AtomicU64::new(0),
            fallback_queries: AtomicU64::new(0),
            term: AtomicU64::new(0),
            obs,
        }
    }

    /// An engine over `graph` sharded into `shards` spatial regions (the
    /// default config otherwise).
    pub fn with_shards(graph: SpatialGraph, shards: usize) -> Self {
        SacEngine::with_config(
            Arc::new(graph),
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
        )
    }

    /// The spatial partitioner of a sharded engine (`None` when unsharded).
    pub fn shard_map(&self) -> Option<Arc<ShardMap>> {
        self.epoch.load().map.clone()
    }

    /// Number of spatial shards (`0` when unsharded).
    pub fn shard_count(&self) -> usize {
        self.shard_queries.len()
    }

    /// The algorithm registry this engine dispatches into.
    pub fn registry(&self) -> &Arc<AlgorithmRegistry> {
        self.planner.registry()
    }

    /// The shared snapshot of the current epoch.
    pub fn snapshot(&self) -> Arc<SpatialGraph> {
        Arc::clone(&self.epoch.load().graph)
    }

    /// Number of the currently served epoch (starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch.load().number
    }

    /// Leadership term this engine currently serves under (0 until the
    /// failover layer stamps one).
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Stamps the leadership term.  Called by the failover layer at boot
    /// (from the recovered WAL) and on replica promotion (bumped past the
    /// observed term); the commit path stamps the current value into every
    /// WAL record it appends.
    pub fn set_term(&self, term: u64) {
        self.term.store(term, Ordering::Release);
    }

    /// Publishes a new snapshot as the next epoch, selectively carrying the
    /// k-core index cache across.
    ///
    /// `decomposition` must be the core decomposition of `graph` (the
    /// live-update path maintains it incrementally).  `dirty_up_to` is the
    /// largest `k` whose k-core may differ from the previous snapshot (see
    /// [`sac_graph::EdgeChange::dirty_up_to`]): cached component indexes for
    /// `k > dirty_up_to` remain valid and carry over to the new epoch; the
    /// rest — and any `k = 0` index, since vertex additions change the 0-core
    /// — are dropped.  In-flight queries keep the epoch they loaded and finish
    /// on the old snapshot.
    ///
    /// Concurrent publishers are memory-safe but should be serialised by the
    /// caller (the live-update front does) so epoch numbers stay sequential.
    pub fn publish(
        &self,
        graph: Arc<SpatialGraph>,
        decomposition: CoreDecomposition,
        dirty_up_to: u32,
    ) -> PublishReport {
        self.publish_update(graph, decomposition, dirty_up_to, None)
    }

    /// Like [`SacEngine::publish`], with per-shard change information: when
    /// `dirty_shards` is given, only the flagged shards' induced snapshots
    /// are rebuilt — clean shards carry their epoch pointer (and the
    /// engine-lifetime per-shard counters) across unchanged.  `None` (or a
    /// vertex-count change, which invalidates every shard's id space) rebuilds
    /// all shards.  Unsharded engines ignore the parameter.
    pub fn publish_update(
        &self,
        graph: Arc<SpatialGraph>,
        decomposition: CoreDecomposition,
        dirty_up_to: u32,
        dirty_shards: Option<&[bool]>,
    ) -> PublishReport {
        self.publish_at(graph, decomposition, dirty_up_to, dirty_shards, None)
    }

    /// Publishes `graph` directly as epoch `epoch`, which must exceed the
    /// currently served epoch.  The replication path uses this when a
    /// replica re-bootstraps from a shipped snapshot whose epoch is ahead of
    /// the replica's applied epoch (the intervening delta records were
    /// truncated by a primary checkpoint, so the replica cannot step through
    /// them).  Every cache entry is dropped and every shard snapshot is
    /// rebuilt — nothing from the old epoch can be trusted across the jump.
    pub fn publish_restored(
        &self,
        graph: Arc<SpatialGraph>,
        decomposition: CoreDecomposition,
        epoch: u64,
    ) -> PublishReport {
        self.publish_at(graph, decomposition, u32::MAX, None, Some(epoch))
    }

    fn publish_at(
        &self,
        graph: Arc<SpatialGraph>,
        decomposition: CoreDecomposition,
        dirty_up_to: u32,
        dirty_shards: Option<&[bool]>,
        number: Option<u64>,
    ) -> PublishReport {
        assert_eq!(
            decomposition.core_numbers().len(),
            graph.num_vertices(),
            "decomposition does not match the published graph"
        );
        let previous = self.epoch.load();
        let mut carried = 0u64;
        let mut invalidated = 0u64;
        let surviving: Vec<Arc<KCoreComponents>> = previous
            .cache
            .component_entries()
            .into_iter()
            .filter(|entry| {
                let keep = entry.k() != 0 && entry.k() > dirty_up_to;
                if keep {
                    carried += 1;
                } else {
                    invalidated += 1;
                }
                keep
            })
            .collect();
        let next_number = number.unwrap_or(previous.number + 1);
        assert!(
            next_number > previous.number,
            "published epoch {next_number} must exceed the served epoch {}",
            previous.number
        );
        let mut shards_rebuilt = 0u32;
        let mut shards_carried = 0u32;
        let rebuild_span = if self.obs.enabled {
            Span::start(&self.obs.publish_rebuild)
        } else {
            Span::disabled()
        };
        let shards: Vec<ShardSlot> = match &previous.map {
            None => Vec::new(),
            Some(map) => {
                // A vertex-count change invalidates every shard snapshot (the
                // per-shard graphs live in the global id space).
                let resized = graph.num_vertices() != previous.graph.num_vertices();
                (0..previous.shards.len())
                    .map(|s| {
                        let dirty = resized
                            || dirty_shards.is_none_or(|d| d.get(s).copied().unwrap_or(true));
                        if dirty {
                            shards_rebuilt += 1;
                            self.shard_rebuilds[s].fetch_add(1, Ordering::Relaxed);
                            ShardSlot {
                                graph: Arc::new(
                                    ShardedGraph::build_shard(&graph, map, s as u32)
                                        .expect("shard rebuild of a valid snapshot succeeds"),
                                ),
                                since_epoch: next_number,
                            }
                        } else {
                            shards_carried += 1;
                            self.shard_carries[s].fetch_add(1, Ordering::Relaxed);
                            previous.shards[s].clone()
                        }
                    })
                    .collect()
            }
        };
        let rebuild_micros = rebuild_span.finish();
        let next = EngineEpoch {
            number: next_number,
            graph,
            cache: KCoreCache::seeded(Arc::new(decomposition), surviving),
            map: previous.map.clone(),
            shards,
        };
        let swap_span = if self.obs.enabled {
            Span::start(&self.obs.publish_swap)
        } else {
            Span::disabled()
        };
        // Swap and fold the retired epoch's cache counters under the same
        // lock `stats()` takes, so a concurrent reader never sees the retired
        // epoch both folded into the total and still live (double-counted).
        // A poisoned lock is recovered, not propagated: the accumulator is a
        // plain `Copy` value that is never left half-written, and wedging
        // every future publish (and the stats/metrics endpoints) on a dead
        // worker's panic would turn one bad query into a stuck server.
        {
            let mut acc = self.retired_cache.lock().unwrap_or_else(|e| e.into_inner());
            let retired = self.epoch.swap(Arc::new(next));
            *acc = add_cache_stats(*acc, retired.cache.stats());
        }
        let swap_micros = swap_span.finish();
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.components_carried
            .fetch_add(carried, Ordering::Relaxed);
        self.components_invalidated
            .fetch_add(invalidated, Ordering::Relaxed);
        if self.obs.enabled {
            self.obs.events.publish(
                "epoch_swap",
                format!(
                    "epoch={next_number} carried={carried} invalidated={invalidated} \
                     shards_rebuilt={shards_rebuilt} shards_carried={shards_carried}"
                ),
            );
        }
        PublishReport {
            epoch: next_number,
            components_carried: carried,
            components_invalidated: invalidated,
            shards_rebuilt,
            shards_carried,
            rebuild_micros,
            swap_micros,
        }
    }

    /// Pre-computes the decomposition and the component indexes for `ks`, so
    /// the first real queries don't pay the build cost.
    pub fn warm(&self, ks: &[u32]) {
        let epoch = self.epoch.load();
        let graph = epoch.graph.graph();
        epoch.cache.decomposition(graph);
        for &k in ks {
            epoch.cache.components(graph, k);
        }
    }

    /// The memoised core decomposition of the current snapshot.
    pub fn decomposition(&self) -> Arc<CoreDecomposition> {
        let epoch = self.epoch.load();
        epoch.cache.decomposition(epoch.graph.graph())
    }

    /// The memoised connected-component index of the k-core for `k`.
    pub fn core_components(&self, k: u32) -> Arc<KCoreComponents> {
        let epoch = self.epoch.load();
        epoch.cache.components(epoch.graph.graph(), k)
    }

    /// Cache-served structural query: the sorted members of the connected
    /// k-core containing `q` (no spatial optimisation), or `None` when `q` is
    /// in no k-core.
    pub fn connected_core(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        self.core_components(k).core_of(q).map(<[VertexId]>::to_vec)
    }

    /// The plan the engine would dispatch for `request` (exposed for tests,
    /// tooling and the equivalence suite).
    pub fn plan_for(&self, request: &SacRequest) -> Result<Plan, SacError> {
        self.plan_on(&self.epoch.load(), request).0
    }

    /// Plans a request, additionally handing back the per-`k` component
    /// index the feasibility check consulted (the shard router reuses it to
    /// bound the query's cover circle without a second cache lookup).
    fn plan_on(
        &self,
        epoch: &EngineEpoch,
        request: &SacRequest,
    ) -> (Result<Plan, SacError>, Option<Arc<KCoreComponents>>) {
        // Budget validation happens inside `Planner::plan` — the one choke
        // point every query path goes through.
        let n = epoch.graph.num_vertices();
        if request.q as usize >= n {
            return (Err(SacError::QueryVertexOutOfRange(request.q)), None);
        }
        // An explicit override skips the cache feasibility lookup entirely:
        // A/B comparisons should measure the named algorithm end to end, not
        // the cache's short-circuit.
        let (ctx, components) = if request.algorithm.is_some() {
            (
                PlanContext {
                    core_size: None,
                    infeasible: false,
                },
                None,
            )
        } else {
            Self::plan_context(epoch, request)
        };
        let plan = self.planner.plan(
            request.q,
            request.k,
            &request.budget,
            &ctx,
            request.algorithm.as_deref(),
        );
        (plan, components)
    }

    /// Structural facts for the planner.  The cache feasibility rule is only
    /// sound for `k >= 2`: for `k <= 1` the algorithms have trivial answers
    /// (single vertex / nearest neighbour) that exist even outside any k-core,
    /// so those queries always go to the algorithm.
    fn plan_context(
        epoch: &EngineEpoch,
        request: &SacRequest,
    ) -> (PlanContext, Option<Arc<KCoreComponents>>) {
        if request.k < 2 {
            return (
                PlanContext {
                    core_size: None,
                    infeasible: false,
                },
                None,
            );
        }
        // O(1) feasibility from the decomposition first: infeasible queries
        // (including arbitrary wire-supplied k) never build a per-k index.
        let graph = epoch.graph.graph();
        let decomposition = epoch.cache.decomposition(graph);
        if decomposition.core_number(request.q) < request.k {
            return (
                PlanContext {
                    core_size: None,
                    infeasible: true,
                },
                None,
            );
        }
        let components = epoch.cache.components(graph, request.k);
        (
            PlanContext {
                core_size: components.core_size_of(request.q),
                infeasible: false,
            },
            Some(components),
        )
    }

    /// The cover circle radius of a planned query: an upper bound on the
    /// distance from `q` of **every** vertex the planned algorithm can touch
    /// through the grid, a sweep or an absorption.  `None` when no safe bound
    /// exists (unknown/override algorithms, trivial `k`, baselines) — such
    /// queries execute on the global snapshot.
    ///
    /// For θ-plans the bound is `θ` itself.  For the five SAC algorithms it
    /// derives from `u`, the distance from `q` to the farthest member of its
    /// k-ĉore: every probe circle contains `q` and has radius at most the
    /// k-ĉore's enclosing radius `≤ u`, so by the triangle inequality probed
    /// vertices stay within `2u`; `AppAcc`'s anchor sweeps reach at most
    /// `(1 + 2√2)·γ ≤ 3.83·u`; `4u` covers all of them, and the `EPS` slack
    /// generously absorbs the sweep-cover and circle-inclusion tolerances.
    fn cover_radius(
        epoch: &EngineEpoch,
        planned: &PlannedQuery,
        components: Option<&Arc<KCoreComponents>>,
        max_routable: f64,
    ) -> Option<f64> {
        match planned.algorithm {
            "theta_sac" => planned.query.theta(),
            "exact" | "exact_plus" | "app_acc" | "app_fast" | "app_inc" => {
                let members = components?.core_of(planned.query.q)?;
                let q_pos = epoch.graph.position(planned.query.q);
                let mut u = 0.0f64;
                for &v in members {
                    u = u.max(epoch.graph.position(v).distance(q_pos));
                    // Early out on spatially wide k-ĉores (on power-law
                    // graphs most feasible queries share one giant core):
                    // once the cover radius exceeds what any interior can
                    // contain, the global fallback is already decided and
                    // the rest of the O(|k-ĉore|) scan is pointless.
                    if 4.0 * u + 64.0 * EPS * (1.0 + u) > max_routable {
                        return None;
                    }
                }
                Some(4.0 * u + 64.0 * EPS * (1.0 + u))
            }
            _ => None,
        }
    }

    /// Routes a planned query: the single shard whose interior contains the
    /// query's cover circle, or the global fallback.  Returns
    /// `(shard, shard_count, shards_touched)` with `shard == None` for the
    /// global snapshot.
    fn route_on(
        &self,
        epoch: &EngineEpoch,
        request: &SacRequest,
        plan: &Plan,
        components: Option<&Arc<KCoreComponents>>,
    ) -> (Option<u32>, u32, u32) {
        let Some(map) = &epoch.map else {
            return (None, 0, 0);
        };
        let shard_count = map.num_shards() as u32;
        let Plan::Execute(planned) = plan else {
            // Cache-answered or rejected: nothing dispatches.
            return (None, shard_count, 0);
        };
        // Overrides (A/B baselines, structure-only algorithms) and trivial
        // `k < 2` plans (whose answers involve graph-global neighbours) have
        // no spatial cover bound: global.
        if request.algorithm.is_some() {
            if self.obs.enabled {
                self.obs.fallback_override.inc();
                self.obs.events.publish(
                    "fallback",
                    format!("reason=override q={} k={}", request.q, request.k),
                );
            }
            return (None, shard_count, shard_count);
        }
        if request.k < 2 {
            if self.obs.enabled {
                self.obs.fallback_trivial_k.inc();
                self.obs.events.publish(
                    "fallback",
                    format!("reason=trivial_k q={} k={}", request.q, request.k),
                );
            }
            return (None, shard_count, shard_count);
        }
        let Some(cover) = Self::cover_radius(epoch, planned, components, map.max_routable_radius())
        else {
            if self.obs.enabled {
                self.obs.fallback_cover.inc();
                self.obs.events.publish(
                    "fallback",
                    format!("reason=cover_spans_shards q={} k={}", request.q, request.k),
                );
            }
            return (None, shard_count, shard_count);
        };
        let q_pos = epoch.graph.position(request.q);
        match map.single_shard_for(q_pos, cover) {
            Some(s) => (Some(s), shard_count, 1),
            None => {
                if self.obs.enabled {
                    self.obs.fallback_cover.inc();
                    self.obs.events.publish(
                        "fallback",
                        format!("reason=cover_spans_shards q={} k={}", request.q, request.k),
                    );
                }
                (None, shard_count, map.shards_intersecting(q_pos, cover))
            }
        }
    }

    /// Answers one request: plans, dispatches, and annotates the response with
    /// timing and cache metadata.
    ///
    /// The epoch is loaded once at entry; a snapshot published mid-query does
    /// not affect this request.
    pub fn execute(&self, request: &SacRequest) -> SacResponse {
        self.execute_on(&self.epoch.load(), request)
    }

    fn execute_on(&self, epoch: &EngineEpoch, request: &SacRequest) -> SacResponse {
        let prepared = self.prepare(epoch, request);
        self.execute_prepared(epoch, request, &prepared)
    }

    /// Plans and routes one request without executing it.  The shard-affine
    /// batch executor runs this once per request up front (the routing keys
    /// the shard grouping) and executes later on a worker — planning is never
    /// paid twice.
    fn prepare(&self, epoch: &EngineEpoch, request: &SacRequest) -> PreparedQuery {
        let start = Instant::now();
        let cache_hit = epoch.cache.is_warm();
        let (plan_result, components) = self.plan_on(epoch, request);
        let planned_micros = start.elapsed().as_micros() as u64;
        let (route, route_micros) = match &plan_result {
            Ok(plan) => {
                let span = if self.obs.enabled {
                    Span::start(&self.obs.route_stage)
                } else {
                    Span::disabled()
                };
                let route = self.route_on(epoch, request, plan, components.as_ref());
                (route, span.finish())
            }
            Err(_) => (
                (
                    None,
                    epoch.map.as_ref().map_or(0, |m| m.num_shards() as u32),
                    0,
                ),
                0,
            ),
        };
        if self.obs.enabled {
            self.obs.plan_stage.record(planned_micros);
        }
        PreparedQuery {
            plan_result,
            route,
            cache_hit,
            // The trace's planning time keeps its meaning from before the
            // stage split: everything up to execution, routing included.
            plan_micros: start.elapsed().as_micros() as u64,
            route_micros,
        }
    }

    /// Executes an already-planned, already-routed request.
    fn execute_prepared(
        &self,
        epoch: &EngineEpoch,
        request: &SacRequest,
        prepared: &PreparedQuery,
    ) -> SacResponse {
        let start = Instant::now();
        let (shard, shard_count, shards_touched) = prepared.route;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (plan, outcome, sweep) = match prepared.plan_result.clone() {
            Err(e) => (Plan::Rejected, Err(e), SweepStats::default()),
            Ok(plan) => {
                if matches!(plan, Plan::Execute(_)) {
                    match shard {
                        Some(s) => {
                            self.single_shard_queries.fetch_add(1, Ordering::Relaxed);
                            self.shard_queries[s as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        None if shard_count > 0 => {
                            self.fallback_queries.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {}
                    }
                }
                let (outcome, sweep) = self.dispatch(epoch, &plan, shard);
                (plan, outcome, sweep)
            }
        };
        match &outcome {
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) if plan == Plan::Infeasible => {
                self.infeasible_fast_path.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
        }
        let exec_micros = start.elapsed().as_micros() as u64;
        let query_id = self.obs.query_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let total_micros = prepared.plan_micros + exec_micros;
        // The span tree is assembled from stage timings measured above, so
        // building one is a pure off-path allocation: requested traces are
        // always honoured, head-sampling adds a tree to every Nth query, and
        // the slow log attaches one to every captured record.
        let build_tree = || {
            let plan_only = prepared.plan_micros.saturating_sub(prepared.route_micros);
            let mut exec_node = TraceNode::new("exec", prepared.plan_micros, exec_micros);
            if matches!(plan, Plan::Execute(_)) {
                let site = match shard {
                    Some(s) => format!("shard:{s}"),
                    None if shard_count > 0 => "global".to_string(),
                    None => "snapshot".to_string(),
                };
                exec_node.push_child(TraceNode::new(site, prepared.plan_micros, exec_micros));
            }
            TraceNode::new("query", 0, total_micros)
                .with_child(TraceNode::new("plan", 0, plan_only))
                .with_child(TraceNode::new("route", plan_only, prepared.route_micros))
                .with_child(exec_node)
        };
        let sample_every = self.obs.trace_sample_every;
        let sampled = self.obs.enabled && sample_every > 0 && query_id.is_multiple_of(sample_every);
        let tree = if request.trace || sampled {
            Some(build_tree())
        } else {
            None
        };
        if self.obs.enabled {
            self.obs.exec_stage.record(exec_micros);
            self.obs.tier_latency[request.budget.tier.index()].record(total_micros);
            self.obs.tier_window[request.budget.tier.index()].record(total_micros);
            if let Plan::Execute(planned) = &plan {
                if let Some((_, hist)) = self
                    .obs
                    .algo_latency
                    .iter()
                    .find(|(name, _)| *name == planned.algorithm)
                {
                    hist.record(total_micros);
                }
            }
            self.obs.slow_log.observe(total_micros, || SlowQueryRecord {
                query_id,
                total_micros,
                plan: plan.label(),
                tier: request.budget.tier.as_str().to_string(),
                epoch: epoch.number,
                shard,
                shard_count,
                shards_touched,
                plan_micros: prepared.plan_micros,
                exec_micros,
                cache_hit: prepared.cache_hit,
                probe_count: sweep.probes,
                candidate_count: sweep.candidates,
                trace: Some(tree.clone().unwrap_or_else(&build_tree)),
            });
        }
        SacResponse {
            id: request.id,
            q: request.q,
            k: request.k,
            outcome,
            micros: total_micros,
            trace: QueryTrace {
                query_id,
                epoch: epoch.number,
                shard_count,
                shards_touched,
                plan_micros: prepared.plan_micros,
                exec_micros,
                cache_hit: prepared.cache_hit,
                guaranteed_ratio: plan.guaranteed_ratio(),
                probe_count: sweep.probes,
                candidate_count: sweep.candidates,
                tree,
            },
            plan,
        }
    }

    /// Runs the planned algorithm by looking it up in the registry — the
    /// engine has no per-algorithm dispatch arms.  Every registered
    /// implementation runs the same `sac_core` entry point a direct caller
    /// would use, so engine answers are bit-identical to library answers (the
    /// equivalence suite asserts this); the [`SearchContext`] carries the
    /// epoch's memoised decomposition, so k-ĉore-extracting algorithms skip
    /// the `O(m)` peel.
    fn dispatch(
        &self,
        epoch: &EngineEpoch,
        plan: &Plan,
        shard: Option<u32>,
    ) -> (Result<Option<Community>, SacError>, SweepStats) {
        let planned: &PlannedQuery = match plan {
            Plan::Infeasible => return (Ok(None), SweepStats::default()),
            Plan::Rejected => unreachable!("rejected plans never reach dispatch"),
            Plan::Execute(planned) => planned,
        };
        let Some(algorithm) = self.planner.registry().get(planned.algorithm) else {
            return (
                Err(SacError::UnknownAlgorithm(planned.algorithm.to_string())),
                SweepStats::default(),
            );
        };
        // Single-shard queries execute on the shard's induced snapshot (same
        // vertex-id space, adjacency restricted to shard members): every
        // vertex inside the cover circle carries its full circle-local
        // neighbourhood there, so the answer is bit-identical to the global
        // snapshot's — the router guarantees it, the property suite pins it.
        let graph: &SpatialGraph = match shard {
            Some(s) => &epoch.shards[s as usize].graph,
            None => &epoch.graph,
        };
        // Only k-ĉore-extracting algorithms consume the shared decomposition;
        // the rest (theta_sac, app_inc, ...) must not force the `O(m)` peel
        // on a cold cache for nothing.  Note the decomposition is always the
        // *global* one (the shard router only sends a query to a shard when
        // the global k-ĉore of `q` is fully materialised there).
        let ctx = if algorithm.profile().shares_decomposition {
            SearchContext::with_decomposition(
                graph,
                planned.query.q,
                planned.query.k,
                epoch.cache.decomposition(epoch.graph.graph()),
            )
        } else {
            SearchContext::new(graph, planned.query.q, planned.query.k)
        };
        let mut ctx = match ctx {
            Ok(ctx) => ctx,
            Err(e) => return (Err(e), SweepStats::default()),
        };
        let outcome = algorithm
            .run(&mut ctx, &planned.query)
            .map(|outcome| outcome.community);
        // The context's sweep counters are the per-query observability hook:
        // they land in `QueryTrace::probe_count`/`candidate_count`.
        (outcome, ctx.sweep_stats())
    }

    /// Fans `requests` across `threads` workers sharing this engine and
    /// returns the responses in request order.
    ///
    /// The epoch is loaded once for the whole batch, so every request of a
    /// batch is answered against the same snapshot even when a publish lands
    /// mid-batch.  On an unsharded engine, work is distributed by an atomic
    /// cursor (cheap dynamic load balancing: slow exact queries don't stall a
    /// whole stripe of the batch).  On a sharded engine the batch is
    /// pre-routed and executed **shard-affine**: all queries of one shard run
    /// on the same worker (cache-warm shard snapshot, no cross-shard
    /// contention), with the global-fallback remainder drained by every
    /// worker through a shared cursor once its shards are done.
    pub fn execute_batch(&self, requests: &[SacRequest], threads: usize) -> Vec<SacResponse> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let epoch = self.epoch.load();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            return requests
                .iter()
                .map(|r| self.execute_on(&epoch, r))
                .collect();
        }
        // Warm the decomposition once up front so concurrent first-queries
        // don't all compute it.
        epoch.cache.decomposition(epoch.graph.graph());
        let slots: Vec<OnceLock<SacResponse>> = (0..n).map(|_| OnceLock::new()).collect();
        if epoch.map.is_none() {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let response = self.execute_on(&epoch, &requests[i]);
                        slots[i].set(response).expect("each slot is written once");
                    });
                }
            });
            return slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("all slots filled"))
                .collect();
        }

        // Plan + route every request exactly once, in parallel (the same
        // cursor pattern as the unsharded execution path — cover-radius
        // bounding can be costly on wide k-ĉores, so planning must scale
        // with threads too); only the cheap shard grouping stays serial.
        let shard_count = epoch.shards.len();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        let mut global: Vec<usize> = Vec::new();
        let prepared: Vec<PreparedQuery> = {
            let prepared_slots: Vec<OnceLock<PreparedQuery>> =
                (0..n).map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            let epoch_ref = &epoch;
            let slots = &prepared_slots;
            let cursor_ref = &cursor;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(move || loop {
                        let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let prep = self.prepare(epoch_ref, &requests[i]);
                        if slots[i].set(prep).is_err() {
                            unreachable!("each prepare slot is written once");
                        }
                    });
                }
            });
            prepared_slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("all prepare slots filled"))
                .collect()
        };
        for (i, prep) in prepared.iter().enumerate() {
            match prep.route.0 {
                Some(s) => per_shard[s as usize].push(i),
                None => global.push(i),
            }
        }
        // Assign whole shard groups to workers, largest first onto the least
        // loaded worker, so shard affinity holds while load stays balanced.
        let mut bins: Vec<(usize, Vec<usize>)> = (0..threads).map(|_| (0, Vec::new())).collect();
        let mut groups: Vec<Vec<usize>> = per_shard.into_iter().filter(|g| !g.is_empty()).collect();
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        for group in groups {
            let bin = bins
                .iter_mut()
                .min_by_key(|(load, _)| *load)
                .expect("threads >= 1");
            bin.0 += group.len();
            bin.1.extend(group);
        }
        let global_cursor = AtomicUsize::new(0);
        let global = &global;
        let global_cursor = &global_cursor;
        let slots_ref = &slots;
        let epoch_ref = &epoch;
        let prepared_ref = &prepared;
        std::thread::scope(|scope| {
            for (_, mine) in &bins {
                let slots = slots_ref;
                let epoch = epoch_ref;
                let prepared = prepared_ref;
                scope.spawn(move || {
                    for &i in mine {
                        let response = self.execute_prepared(epoch, &requests[i], &prepared[i]);
                        slots[i].set(response).expect("each slot is written once");
                    }
                    loop {
                        let g = global_cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = global.get(g) else { break };
                        let response = self.execute_prepared(epoch, &requests[i], &prepared[i]);
                        slots[i].set(response).expect("each slot is written once");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all slots filled"))
            .collect()
    }

    /// Current serving counters (cache counters cumulative across epochs).
    pub fn stats(&self) -> EngineStats {
        // Read the accumulator and the live epoch under the accumulator's
        // lock (publish folds + swaps under the same lock), so an epoch's
        // counters are never counted both as retired and as live.  Recover a
        // poisoned lock (see `publish_update`): stats and metrics endpoints
        // must keep answering after a worker panic.
        let (retired, epoch) = {
            let acc = self.retired_cache.lock().unwrap_or_else(|e| e.into_inner());
            (*acc, self.epoch.load())
        };
        let shards = epoch
            .shards
            .iter()
            .enumerate()
            .map(|(s, slot)| ShardStats {
                shard: s as u32,
                epoch: slot.since_epoch,
                queries: self.shard_queries[s].load(Ordering::Relaxed),
                carries: self.shard_carries[s].load(Ordering::Relaxed),
                rebuilds: self.shard_rebuilds[s].load(Ordering::Relaxed),
                edges: slot.graph.num_edges(),
            })
            .collect();
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            infeasible_fast_path: self.infeasible_fast_path.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: add_cache_stats(retired, epoch.cache.stats()),
            epoch: epoch.number,
            term: self.term.load(Ordering::Acquire),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            components_carried: self.components_carried.load(Ordering::Relaxed),
            components_invalidated: self.components_invalidated.load(Ordering::Relaxed),
            shard_count: epoch.shards.len() as u32,
            single_shard_queries: self.single_shard_queries.load(Ordering::Relaxed),
            fallback_queries: self.fallback_queries.load(Ordering::Relaxed),
            shards,
            tier_latency: if self.obs.enabled {
                LatencyTier::ALL
                    .iter()
                    .map(|tier| LatencyStats {
                        label: tier.as_str(),
                        summary: LatencySummary::from_snapshot(
                            &self.obs.tier_latency[tier.index()].snapshot(),
                        ),
                    })
                    .collect()
            } else {
                Vec::new()
            },
            algorithm_latency: if self.obs.enabled {
                self.obs
                    .algo_latency
                    .iter()
                    .map(|(name, hist)| LatencyStats {
                        label: name,
                        summary: LatencySummary::from_snapshot(&hist.snapshot()),
                    })
                    .collect()
            } else {
                Vec::new()
            },
            windowed_tier_latency: if self.obs.enabled {
                LatencyTier::ALL
                    .iter()
                    .map(|tier| LatencyStats {
                        label: tier.as_str(),
                        summary: self.obs.tier_window[tier.index()].snapshot().summary(),
                    })
                    .collect()
            } else {
                Vec::new()
            },
            window_span_micros: if self.obs.enabled {
                // All three rings share a geometry; report the widest span so
                // `count / span` never overstates the rate.
                self.obs
                    .tier_window
                    .iter()
                    .map(|w| w.snapshot().span_micros)
                    .max()
                    .unwrap_or(0)
            } else {
                0
            },
        }
    }

    /// The metric registry the engine (and, by shared registration, the
    /// serving layers above) records into: per-tier and per-algorithm
    /// latency histograms, dispatch stage spans, publish-pipeline spans and
    /// fallback-reason counters.  Present — but silent — when observation is
    /// disabled.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.obs.registry
    }

    /// Whether the engine records into its metric registry
    /// ([`EngineConfig::observe`]); layers registering their own series
    /// should honour this too.
    pub fn observing(&self) -> bool {
        self.obs.enabled
    }

    /// The slow-query ring buffer (threshold
    /// [`EngineConfig::slow_query_micros`], capacity
    /// [`EngineConfig::slowlog_capacity`]; empty when capture is disabled).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.obs.slow_log
    }

    /// The engine's control-plane event log: epoch swaps and routing
    /// fallbacks, tailed with a cursor ([`EventLog::since`]).  Layers above
    /// (the live-update front, the serving transports) publish their own
    /// events — commits, batch strategy choices — into the same ring.
    /// Present — but silent — when observation is disabled.
    pub fn events(&self) -> &Arc<EventLog> {
        &self.obs.events
    }

    /// Prometheus text exposition of everything the engine knows: the
    /// `EngineStats` counters/gauges plus every series of [`SacEngine::metrics`]
    /// — the payload of the HTTP `GET /metrics` endpoint.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let stats = self.stats();
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "sac_queries_total",
            "Queries answered (including errors)",
            stats.queries,
        );
        counter(
            "sac_query_errors_total",
            "Queries that returned a per-query error",
            stats.errors,
        );
        counter(
            "sac_infeasible_fast_path_total",
            "Queries short-circuited by the cache feasibility check",
            stats.infeasible_fast_path,
        );
        counter(
            "sac_epochs_published_total",
            "Snapshots published over the engine lifetime",
            stats.epochs_published,
        );
        counter(
            "sac_cache_decomposition_hits_total",
            "Core-decomposition cache hits",
            stats.cache.decomposition.hits,
        );
        counter(
            "sac_cache_decomposition_misses_total",
            "Core-decomposition cache misses",
            stats.cache.decomposition.misses,
        );
        counter(
            "sac_cache_components_hits_total",
            "Per-k component index cache hits",
            stats.cache.components.hits,
        );
        counter(
            "sac_cache_components_misses_total",
            "Per-k component index cache misses",
            stats.cache.components.misses,
        );
        counter(
            "sac_single_shard_queries_total",
            "Queries answered on a single shard's induced snapshot",
            stats.single_shard_queries,
        );
        counter(
            "sac_components_carried_total",
            "Per-k component indexes carried across epoch swaps",
            stats.components_carried,
        );
        counter(
            "sac_components_invalidated_total",
            "Per-k component indexes dropped at epoch swaps",
            stats.components_invalidated,
        );
        counter(
            "sac_slow_queries_dropped_total",
            "Slow-query records evicted from the ring buffer",
            self.obs.slow_log.dropped(),
        );
        counter(
            "sac_events_total",
            "Control-plane events published over the engine lifetime",
            self.obs.events.next_seq(),
        );
        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge("sac_epoch", "Currently served epoch number", stats.epoch);
        gauge(
            "sac_shard_count",
            "Spatial shards served (0 = unsharded)",
            stats.shard_count as u64,
        );
        gauge(
            "sac_slow_queries",
            "Slow-query records currently in the ring buffer",
            self.obs.slow_log.len() as u64,
        );
        gauge(
            "sac_events_retained",
            "Control-plane events currently in the event ring",
            self.obs.events.len() as u64,
        );
        out.push_str(&self.obs.registry.render_prometheus());
        out
    }
}

fn add_cache_stats(a: CacheStats, b: CacheStats) -> CacheStats {
    fn add_layer(a: CacheLayerStats, b: CacheLayerStats) -> CacheLayerStats {
        CacheLayerStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
        }
    }
    CacheStats {
        decomposition: add_layer(a.decomposition, b.decomposition),
        components: add_layer(a.components, b.components),
    }
}

// One engine is shared by reference across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SacEngine>();
    assert_send_sync::<SacRequest>();
    assert_send_sync::<SacResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::LatencyTier;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_core::{exact_plus, theta_sac};

    fn engine() -> SacEngine {
        SacEngine::new(figure3_graph())
    }

    #[test]
    fn exact_budget_returns_paper_answer() {
        let engine = engine();
        let response =
            engine.execute(&SacRequest::new(1, figure3::Q, 2).with_budget(QueryBudget::exact()));
        assert_eq!(response.id, 1);
        assert!(response.plan.dispatches("exact_plus"));
        let community = response.community().expect("feasible");
        let direct = exact_plus(&figure3_graph(), figure3::Q, 2, EXACT_PLUS_EPS_A)
            .unwrap()
            .unwrap();
        assert_eq!(community.members(), direct.members());
        assert!(!response.trace.cache_hit, "first query sees a cold cache");
        assert_eq!(response.trace.epoch, 1);
        assert_eq!(response.trace.guaranteed_ratio, Some(1.0));
        assert!(response.micros >= response.trace.plan_micros);
    }

    #[test]
    fn infeasible_queries_short_circuit_through_cache() {
        let engine = engine();
        // Vertex I (pendant) has core number 1: no 2-core community.
        let response = engine.execute(&SacRequest::new(2, figure3::I, 2));
        assert_eq!(response.plan, Plan::Infeasible);
        assert_eq!(response.outcome, Ok(None));
        let stats = engine.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.infeasible_fast_path, 1);
    }

    #[test]
    fn absurd_k_values_never_build_or_cache_indexes() {
        let engine = engine();
        for k in [100u32, 1_000_000, u32::MAX] {
            let response = engine.execute(&SacRequest::new(9, figure3::Q, k));
            assert_eq!(response.plan, Plan::Infeasible);
            assert_eq!(response.outcome, Ok(None));
        }
        // Feasibility came from the O(1) decomposition lookup: no per-k
        // component index was built for any of the absurd k values.
        let stats = engine.stats();
        assert_eq!(stats.cache.components.misses, 0);
        assert_eq!(stats.infeasible_fast_path, 3);
        // The public structural query is also safe against huge k.
        assert!(engine.connected_core(figure3::Q, 10_000).is_none());
        assert_eq!(engine.stats().cache.components.misses, 0);
    }

    #[test]
    fn trivial_k_queries_bypass_the_feasibility_fast_path() {
        let engine = engine();
        // k = 0 has a trivial single-vertex answer even for the pendant vertex.
        let response = engine.execute(&SacRequest::new(3, figure3::I, 0));
        let community = response.community().expect("k=0 is always feasible");
        assert_eq!(community.members(), &[figure3::I]);
    }

    #[test]
    fn second_query_hits_the_cache() {
        let engine = engine();
        let req = SacRequest::new(4, figure3::Q, 2);
        let first = engine.execute(&req);
        let second = engine.execute(&req);
        assert!(!first.trace.cache_hit);
        assert!(second.trace.cache_hit);
        assert_eq!(
            first.community().unwrap().members(),
            second.community().unwrap().members()
        );
    }

    #[test]
    fn errors_are_reported_per_query() {
        let engine = engine();
        let out_of_range = engine.execute(&SacRequest::new(5, 999, 2));
        assert_eq!(out_of_range.plan, Plan::Rejected);
        assert_eq!(
            out_of_range.outcome,
            Err(SacError::QueryVertexOutOfRange(999))
        );
        let bad_budget = engine.execute(
            &SacRequest::new(6, figure3::Q, 2).with_budget(QueryBudget::within_ratio(0.2)),
        );
        assert_eq!(bad_budget.plan, Plan::Rejected);
        assert!(bad_budget.outcome.is_err());
        assert_eq!(engine.stats().errors, 2);
    }

    #[test]
    fn batch_execution_preserves_order_and_results() {
        let engine = engine();
        let requests: Vec<SacRequest> = (0..40)
            .map(|i| {
                let q = [figure3::Q, figure3::A, figure3::F, figure3::I][i % 4];
                SacRequest::new(i as u64, q, 2)
            })
            .collect();
        let batch = engine.execute_batch(&requests, 4);
        assert_eq!(batch.len(), 40);
        for (i, response) in batch.iter().enumerate() {
            assert_eq!(response.id, i as u64);
            let single = engine.execute(&requests[i]);
            match (response.community(), single.community()) {
                (Some(a), Some(b)) => assert_eq!(a.members(), b.members()),
                (None, None) => {}
                _ => panic!("batch/single feasibility mismatch at {i}"),
            }
        }
    }

    #[test]
    fn structural_core_queries_come_from_the_cache() {
        let engine = engine();
        let core = engine
            .connected_core(figure3::Q, 2)
            .expect("Q is in the 2-core");
        assert!(core.contains(&figure3::Q));
        assert!(engine.connected_core(figure3::I, 2).is_none());
        // Small fixture: the planner upgrades every feasible plan to Exact+.
        let plan = engine
            .plan_for(&SacRequest::new(7, figure3::Q, 2).with_budget(QueryBudget::interactive()))
            .unwrap();
        assert!(plan.dispatches("exact_plus"));
    }

    #[test]
    fn publish_swaps_epochs_and_carries_untouched_indexes() {
        use sac_graph::DynamicGraph;

        let engine = engine();
        assert_eq!(engine.epoch(), 1);
        engine.warm(&[1, 2]);

        // Delta: drop the pendant edge H–I (vertices 8 and 9 in the fixture).
        // I has core 1, so only k <= 1 cores can change: the k = 2 index must
        // carry over, the k = 1 index must be dropped.
        let old_snapshot = engine.snapshot();
        let mut dynamic = DynamicGraph::from_graph(old_snapshot.graph());
        let change = dynamic.remove_edge(figure3::H, figure3::I).unwrap();
        assert_eq!(change.dirty_up_to, 1);
        let new_graph =
            sac_graph::SpatialGraph::new(dynamic.to_graph(), old_snapshot.positions().to_vec())
                .unwrap();
        let report = engine.publish(Arc::new(new_graph), dynamic.decomposition(), 1);
        assert_eq!(report.epoch, 2);
        assert_eq!(report.components_carried, 1);
        assert_eq!(report.components_invalidated, 1);
        assert_eq!(engine.epoch(), 2);

        // The carried k = 2 index answers without a rebuild (a component hit,
        // no new miss beyond the two warming builds).
        let before = engine.stats().cache.components;
        let core = engine.connected_core(figure3::Q, 2).unwrap();
        assert!(core.contains(&figure3::Q));
        let after = engine.stats().cache.components;
        assert_eq!(after.misses, before.misses, "carried index must be a hit");
        assert_eq!(after.hits, before.hits + 1);

        // The new snapshot is live: I is now isolated, so even k = 1 is
        // infeasible structurally.
        assert!(engine.connected_core(figure3::I, 1).is_none());
        // In-flight holders of the old snapshot still see the edge.
        assert!(old_snapshot.graph().has_edge(figure3::H, figure3::I));
        let stats = engine.stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.epochs_published, 1);
        assert_eq!(stats.components_carried, 1);
        assert_eq!(stats.components_invalidated, 1);
    }

    #[test]
    fn stats_accumulate_across_epochs() {
        let engine = engine();
        let req = SacRequest::new(1, figure3::Q, 2);
        engine.execute(&req);
        let before = engine.stats();
        assert!(before.cache.decomposition.misses >= 1);

        // Republish the same graph with a full invalidation: the old epoch's
        // counters must not vanish from the cumulative stats.
        let snapshot = engine.snapshot();
        let decomposition = sac_graph::core_decomposition(snapshot.graph());
        engine.publish(snapshot, decomposition, u32::MAX);
        let after = engine.stats();
        assert!(after.cache.decomposition.misses >= before.cache.decomposition.misses);
        assert!(after.cache.components.misses >= before.cache.components.misses);
        assert_eq!(after.queries, before.queries);
        assert_eq!(after.epoch, 2);
    }

    #[test]
    fn non_core_extracting_algorithms_skip_the_decomposition() {
        let engine = engine();
        // θ query with k = 0: the planner's feasibility check skips the
        // decomposition (k < 2) and theta_sac declares it does not consume
        // one — so a cold engine must not pay the O(m) peel for it.
        let response = engine.execute(
            &SacRequest::new(1, figure3::Q, 0).with_budget(QueryBudget::balanced().with_theta(5.0)),
        );
        assert!(response.plan.dispatches("theta_sac"));
        assert!(response.community().is_some());
        assert_eq!(
            engine.stats().cache.decomposition.misses,
            0,
            "theta_sac must not force the decomposition"
        );
    }

    #[test]
    fn trace_exposes_probe_and_candidate_counts() {
        let engine = engine();
        // A planned algorithm that probes (exact_plus on the small fixture)
        // must report its sweep counters in the trace.
        let response =
            engine.execute(&SacRequest::new(1, figure3::Q, 2).with_budget(QueryBudget::exact()));
        assert!(response.trace.probe_count > 0, "exact_plus probes circles");
        assert!(response.trace.candidate_count > 0);
        // Algorithms that build their context internally in the free-function
        // form still surface counters through the engine's context (app_inc
        // collects into a sweep, exact probes triple circles).
        for name in ["app_inc", "exact", "app_fast", "app_acc"] {
            let response = engine.execute(&SacRequest::new(3, figure3::Q, 2).with_algorithm(name));
            assert!(
                response.trace.probe_count > 0,
                "{name} must report its probes"
            );
            assert!(
                response.trace.candidate_count > 0,
                "{name} must report its candidates"
            );
        }
        // Cache-answered infeasibility never probes.
        let infeasible = engine.execute(&SacRequest::new(2, figure3::I, 2));
        assert_eq!(infeasible.plan, Plan::Infeasible);
        assert_eq!(infeasible.trace.probe_count, 0);
        assert_eq!(infeasible.trace.candidate_count, 0);
    }

    #[test]
    fn algorithm_override_reaches_registered_baselines() {
        let engine = engine();
        // `global` is registered but unreachable through budgets; the
        // override dispatches it and returns the whole k-ĉore (the
        // structure-only baseline ignores locations).
        let request = SacRequest::builder(figure3::Q, 2)
            .id(11)
            .algorithm("global")
            .build()
            .unwrap();
        let response = engine.execute(&request);
        assert!(response.plan.dispatches("global"));
        let community = response.community().expect("feasible");
        let direct = sac_core::baselines::global_search(&figure3_graph(), figure3::Q, 2)
            .unwrap()
            .unwrap();
        assert_eq!(community.members(), direct.members());
        assert_eq!(response.trace.guaranteed_ratio, None);

        // The override runs the real algorithm even where the cache would
        // short-circuit (A/B timing honesty): vertex I has no 2-core, and the
        // algorithm itself — not the cache — reports infeasibility.
        let request = SacRequest::new(12, figure3::I, 2).with_algorithm("app_inc");
        let response = engine.execute(&request);
        assert!(response.plan.dispatches("app_inc"));
        assert_eq!(response.outcome, Ok(None));
        assert_eq!(engine.stats().infeasible_fast_path, 0);

        // Unknown overrides are typed per-query errors.
        let response = engine.execute(&SacRequest::new(13, figure3::Q, 2).with_algorithm("nope"));
        assert_eq!(response.plan, Plan::Rejected);
        assert_eq!(
            response.outcome,
            Err(SacError::UnknownAlgorithm("nope".to_string()))
        );
    }

    #[test]
    fn sharded_engine_answers_match_unsharded() {
        let unsharded = engine();
        let sharded = SacEngine::with_shards(figure3_graph(), 2);
        assert_eq!(sharded.shard_count(), 2);
        assert!(sharded.shard_map().is_some());
        let budgets = [
            QueryBudget::exact(),
            QueryBudget::balanced(),
            QueryBudget::interactive(),
            QueryBudget::within_ratio(2.0),
            QueryBudget::balanced().with_theta(2.0),
        ];
        for q in 0..10u32 {
            for k in [0u32, 1, 2, 3] {
                for budget in &budgets {
                    let req = SacRequest::new(1, q, k).with_budget(*budget);
                    let a = unsharded.execute(&req);
                    let b = sharded.execute(&req);
                    assert_eq!(a.plan.label(), b.plan.label(), "q={q} k={k}");
                    assert_eq!(
                        a.community().map(Community::members),
                        b.community().map(Community::members),
                        "q={q} k={k} budget={budget:?}"
                    );
                    assert_eq!(b.trace.shard_count, 2);
                    // Unsharded traces carry no shard info.
                    assert_eq!(a.trace.shard_count, 0);
                    assert_eq!(a.trace.shards_touched, 0);
                }
            }
        }
        let stats = sharded.stats();
        assert_eq!(stats.shard_count, 2);
        assert_eq!(stats.shards.len(), 2);
        assert_eq!(
            stats.single_shard_queries,
            stats.shards.iter().map(|s| s.queries).sum::<u64>()
        );
        // Each shard snapshot was built exactly once so far.
        assert!(stats.shards.iter().all(|s| s.rebuilds == 1 && s.epoch == 1));
    }

    #[test]
    fn sharded_batches_are_shard_affine_and_order_preserving() {
        let sharded = SacEngine::with_shards(figure3_graph(), 2);
        let requests: Vec<SacRequest> = (0..60)
            .map(|i| {
                let q = [figure3::Q, figure3::A, figure3::F, figure3::G, figure3::I][i % 5];
                SacRequest::new(i as u64, q, 2)
            })
            .collect();
        let batch = sharded.execute_batch(&requests, 4);
        assert_eq!(batch.len(), 60);
        let reference = SacEngine::new(figure3_graph());
        for (i, response) in batch.iter().enumerate() {
            assert_eq!(response.id, i as u64);
            let single = reference.execute(&requests[i]);
            assert_eq!(
                response.community().map(Community::members),
                single.community().map(Community::members),
                "index {i}"
            );
        }
    }

    #[test]
    fn overrides_and_trivial_k_fall_back_to_the_global_snapshot() {
        let sharded = SacEngine::with_shards(figure3_graph(), 4);
        // Baseline override: global execution (baselines span the graph).
        let response = sharded.execute(&SacRequest::new(1, figure3::Q, 2).with_algorithm("global"));
        assert!(response.plan.dispatches("global"));
        assert!(response.community().is_some());
        // k < 2: trivial answers involve graph-global neighbours.
        let response = sharded.execute(&SacRequest::new(2, figure3::Q, 1));
        assert!(response.community().is_some());
        let stats = sharded.stats();
        assert_eq!(stats.single_shard_queries, 0);
        assert_eq!(stats.fallback_queries, 2);
        // Cache-answered infeasibility touches no shard.
        let infeasible = sharded.execute(&SacRequest::new(3, figure3::I, 2));
        assert_eq!(infeasible.plan, Plan::Infeasible);
        assert_eq!(infeasible.trace.shards_touched, 0);
        assert_eq!(sharded.stats().fallback_queries, 2);
    }

    #[test]
    fn publish_update_rebuilds_only_dirty_shards() {
        use sac_graph::DynamicGraph;

        let sharded = SacEngine::with_shards(figure3_graph(), 2);
        let old = sharded.snapshot();
        let mut dynamic = DynamicGraph::from_graph(old.graph());
        dynamic.remove_edge(figure3::H, figure3::I).unwrap();
        let new_graph =
            sac_graph::SpatialGraph::new(dynamic.to_graph(), old.positions().to_vec()).unwrap();
        // Claim only shard 1 is dirty.
        let report = sharded.publish_update(
            Arc::new(new_graph),
            dynamic.decomposition(),
            1,
            Some(&[false, true]),
        );
        assert_eq!(report.epoch, 2);
        assert_eq!(report.shards_rebuilt, 1);
        assert_eq!(report.shards_carried, 1);
        let stats = sharded.stats();
        assert_eq!(stats.shards[0].epoch, 1, "clean shard keeps its snapshot");
        assert_eq!(stats.shards[1].epoch, 2);

        // A vertex-count change forces a full shard rebuild regardless.
        let mut grown = DynamicGraph::from_graph(sharded.snapshot().graph());
        grown.add_vertex();
        let mut positions = sharded.snapshot().positions().to_vec();
        positions.push(sac_geom::Point::new(0.3, 0.4));
        let grown_graph = sac_graph::SpatialGraph::new(grown.to_graph(), positions).unwrap();
        let report = sharded.publish_update(
            Arc::new(grown_graph),
            grown.decomposition(),
            0,
            Some(&[false, false]),
        );
        assert_eq!(report.shards_rebuilt, 2);
        assert_eq!(report.shards_carried, 0);
    }

    #[test]
    fn query_ids_are_monotonic_and_dense() {
        let engine = engine();
        for expected in 1..=5u64 {
            let response = engine.execute(&SacRequest::new(0, figure3::Q, 2));
            assert_eq!(response.trace.query_id, expected);
        }
        // Batch execution draws from the same per-engine sequence: ids stay
        // unique and cover the next contiguous range (order is unspecified).
        let requests: Vec<SacRequest> = (0..8).map(|i| SacRequest::new(i, figure3::Q, 2)).collect();
        let mut ids: Vec<u64> = engine
            .execute_batch(&requests, 4)
            .iter()
            .map(|r| r.trace.query_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (6..=13).collect::<Vec<u64>>());
    }

    #[test]
    fn tier_and_algorithm_latency_land_in_stats_and_metrics() {
        let engine = engine();
        for _ in 0..4 {
            engine.execute(
                &SacRequest::new(1, figure3::Q, 2)
                    .with_budget(QueryBudget::exact().with_tier(LatencyTier::Interactive)),
            );
        }
        engine.execute(&SacRequest::new(2, figure3::Q, 2));
        let stats = engine.stats();
        assert_eq!(stats.tier_latency.len(), 3, "one summary per tier");
        let tier = |label: &str| {
            stats
                .tier_latency
                .iter()
                .find(|t| t.label == label)
                .unwrap()
                .summary
        };
        assert_eq!(tier("interactive").count, 4);
        assert_eq!(tier("standard").count, 1);
        assert_eq!(tier("batch").count, 0);
        let interactive = tier("interactive");
        assert!(interactive.p50_micros <= interactive.p95_micros);
        assert!(interactive.p95_micros <= interactive.p99_micros);
        assert!(interactive.p99_micros >= interactive.max_micros / 2);
        // All five dispatches were exact_plus (small-core upgrade).
        let exact_plus = stats
            .algorithm_latency
            .iter()
            .find(|a| a.label == "exact_plus")
            .expect("registered algorithms get a series");
        assert_eq!(exact_plus.summary.count, 5);

        // The Prometheus exposition agrees with EngineStats: same counts,
        // and the histogram quantiles reported there are the same snapshot.
        let text = engine.metrics_text();
        assert!(text.contains("sac_queries_total 5"));
        assert!(text.contains("sac_query_latency_micros_count{tier=\"interactive\"} 4"));
        assert!(text.contains(&format!(
            "sac_query_latency_micros_max{{tier=\"interactive\"}} {}",
            interactive.max_micros
        )));
        assert!(text.contains("sac_algorithm_latency_micros_count{algorithm=\"exact_plus\"} 5"));
        assert!(text.contains("# TYPE sac_query_latency_micros histogram"));
        // Stage spans recorded once per query.
        assert!(text.contains("sac_stage_micros_count{stage=\"plan\"} 5"));
        assert!(text.contains("sac_stage_micros_count{stage=\"exec\"} 5"));
    }

    #[test]
    fn percentiles_in_metrics_text_match_engine_stats() {
        // The /metrics acceptance check, engine-side: reconstruct p50/p99
        // from the exposition's cumulative buckets and compare with the
        // EngineStats summaries.
        let engine = engine();
        for i in 0..20 {
            engine.execute(&SacRequest::new(i, figure3::Q, 2));
        }
        let stats = engine.stats();
        let standard = stats
            .tier_latency
            .iter()
            .find(|t| t.label == "standard")
            .unwrap()
            .summary;
        assert_eq!(standard.count, 20);

        // Parse the standard-tier cumulative buckets out of the exposition.
        let text = engine.metrics_text();
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        for line in text.lines() {
            if let Some(rest) =
                line.strip_prefix("sac_query_latency_micros_bucket{tier=\"standard\",le=\"")
            {
                let (le, count) = rest.split_once("\"} ").unwrap();
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                buckets.push((le, count.parse().unwrap()));
            }
        }
        assert!(!buckets.is_empty());
        let total = buckets.last().unwrap().1;
        assert_eq!(total, standard.count);
        let quantile = |p: f64| {
            let rank = (p * total as f64).ceil().max(1.0) as u64;
            if rank >= total {
                return standard.max_micros as f64;
            }
            buckets
                .iter()
                .find(|(_, c)| *c >= rank)
                .map(|(le, _)| le.min(standard.max_micros as f64))
                .unwrap()
        };
        assert_eq!(quantile(0.50) as u64, standard.p50_micros);
        assert_eq!(quantile(0.99) as u64, standard.p99_micros);
    }

    #[test]
    fn slow_log_captures_over_threshold_queries() {
        let config = EngineConfig {
            slow_query_micros: 1, // everything is "slow"
            ..EngineConfig::default()
        };
        let noisy = SacEngine::with_config(Arc::new(figure3_graph()), config);
        assert_eq!(noisy.slow_log().threshold_micros(), 1);
        let response =
            noisy.execute(&SacRequest::new(7, figure3::Q, 2).with_budget(QueryBudget::exact()));
        let entries = noisy.slow_log().snapshot();
        assert_eq!(entries.len(), 1);
        let entry = &entries[0];
        assert_eq!(entry.query_id, response.trace.query_id);
        assert_eq!(entry.total_micros, response.micros);
        assert_eq!(entry.plan, response.plan.label());
        assert_eq!(
            entry.tier, "batch",
            "exact budgets run under the batch tier"
        );
        assert_eq!(entry.epoch, 1);
        assert_eq!(entry.plan_micros, response.trace.plan_micros);
        assert_eq!(entry.exec_micros, response.trace.exec_micros);
        assert_eq!(entry.probe_count, response.trace.probe_count);

        // Default threshold (10ms) never trips on the tiny fixture.
        let calm = engine();
        calm.execute(&SacRequest::new(8, figure3::Q, 2));
        assert!(calm.slow_log().is_empty());

        // observe = false disables capture entirely.
        let dark = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                observe: false,
                slow_query_micros: 1,
                ..EngineConfig::default()
            },
        );
        dark.execute(&SacRequest::new(9, figure3::Q, 2));
        assert!(dark.slow_log().is_empty());
        assert!(dark.stats().tier_latency.is_empty());
        assert!(dark.stats().algorithm_latency.is_empty());
    }

    #[test]
    fn fallback_reason_counters_distinguish_causes() {
        let sharded = SacEngine::with_shards(figure3_graph(), 4);
        sharded.execute(&SacRequest::new(1, figure3::Q, 2).with_algorithm("global"));
        sharded.execute(&SacRequest::new(2, figure3::Q, 1));
        sharded.execute(&SacRequest::new(3, figure3::Q, 1));
        let text = sharded.metrics_text();
        assert!(text.contains("sac_fallback_queries_total{reason=\"override\"} 1"));
        assert!(text.contains("sac_fallback_queries_total{reason=\"trivial_k\"} 2"));
        // Publish-pipeline spans tick on every publish.
        let snapshot = sharded.snapshot();
        let decomposition = sac_graph::core_decomposition(snapshot.graph());
        sharded.publish(snapshot, decomposition, u32::MAX);
        let text = sharded.metrics_text();
        assert!(text.contains("sac_publish_stage_micros_count{stage=\"shard_rebuild\"} 1"));
        assert!(text.contains("sac_publish_stage_micros_count{stage=\"epoch_swap\"} 1"));
    }

    #[test]
    fn windowed_latency_lands_in_stats_and_metrics() {
        let engine = engine();
        for i in 0..5 {
            engine.execute(&SacRequest::new(i, figure3::Q, 2));
        }
        let stats = engine.stats();
        assert_eq!(stats.windowed_tier_latency.len(), 3, "one series per tier");
        let windowed = stats
            .windowed_tier_latency
            .iter()
            .find(|t| t.label == "standard")
            .unwrap()
            .summary;
        // All five queries landed inside the 10s ring, so the windowed view
        // agrees with the cumulative one on a fresh engine.
        let cumulative = stats
            .tier_latency
            .iter()
            .find(|t| t.label == "standard")
            .unwrap()
            .summary;
        assert_eq!(windowed, cumulative);
        assert!(stats.window_span_micros > 0);
        assert!(stats.window_span_micros <= 10 * TELEMETRY_WINDOW_MICROS);
        // The registry renders the ring as a Prometheus summary with a qps
        // series derived from the covered span.
        let text = engine.metrics_text();
        assert!(text.contains("# TYPE sac_query_latency_window_micros summary"));
        assert!(text.contains("sac_query_latency_window_micros_count{tier=\"standard\"} 5"));
        assert!(
            text.contains("sac_query_latency_window_micros{tier=\"standard\",quantile=\"0.99\"}")
        );
        assert!(text.contains("sac_query_latency_window_micros_qps{tier=\"standard\"}"));
        // Dark engines have no windowed series.
        let dark = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                observe: false,
                ..EngineConfig::default()
            },
        );
        dark.execute(&SacRequest::new(1, figure3::Q, 2));
        assert!(dark.stats().windowed_tier_latency.is_empty());
        assert_eq!(dark.stats().window_span_micros, 0);
    }

    #[test]
    fn trace_trees_are_sampled_and_requested() {
        let engine = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                trace_sample_every: 2,
                ..EngineConfig::default()
            },
        );
        // Query id 1: unsampled, no tree unless asked for.
        let plain = engine.execute(&SacRequest::new(1, figure3::Q, 2));
        assert!(plain.trace.tree.is_none());
        // Query id 2: head-sampled.
        let sampled = engine.execute(&SacRequest::new(2, figure3::Q, 2));
        let tree = sampled.trace.tree.expect("every 2nd query is sampled");
        assert_eq!(tree.name, "query");
        assert_eq!(tree.micros, sampled.micros);
        let stages: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(stages, ["plan", "route", "exec"]);
        let exec = tree.children.last().unwrap();
        assert_eq!(exec.micros, sampled.trace.exec_micros);
        assert_eq!(exec.start_micros, sampled.trace.plan_micros);
        assert_eq!(
            exec.children[0].name, "snapshot",
            "unsharded dispatches run on the global snapshot"
        );
        // Query id 3: unsampled but explicitly requested.
        let asked = engine.execute(&SacRequest::new(3, figure3::Q, 2).with_trace());
        assert!(asked.trace.tree.is_some());
        // Sampling off (0) still honours explicit requests.
        let never = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                trace_sample_every: 0,
                ..EngineConfig::default()
            },
        );
        for i in 1..=4u64 {
            assert!(never
                .execute(&SacRequest::new(i, figure3::Q, 2))
                .trace
                .tree
                .is_none());
        }
        let asked = never.execute(&SacRequest::new(9, figure3::Q, 2).with_trace());
        assert!(asked.trace.tree.is_some());
        // On a sharded engine the exec child names the routed shard.
        let sharded = SacEngine::with_shards(figure3_graph(), 2);
        let response = sharded.execute(&SacRequest::new(1, figure3::Q, 2).with_trace());
        let tree = response.trace.tree.expect("requested");
        let exec = tree.children.last().unwrap();
        let site = exec.children[0].name.as_str();
        assert!(
            site == "global" || site.starts_with("shard:"),
            "sharded exec site was {site}"
        );
    }

    #[test]
    fn slow_log_entries_carry_a_trace_tree() {
        let noisy = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                slow_query_micros: 1,
                trace_sample_every: 0,
                ..EngineConfig::default()
            },
        );
        let response = noisy.execute(&SacRequest::new(1, figure3::Q, 2));
        assert!(response.trace.tree.is_none(), "not sampled, not requested");
        let entries = noisy.slow_log().snapshot();
        let tree = entries[0].trace.as_ref().expect("slow queries get a tree");
        assert_eq!(tree.name, "query");
        assert_eq!(tree.micros, response.micros);
        assert_eq!(tree.children.len(), 3);
        assert!(tree.render().starts_with("query:"));
    }

    #[test]
    fn slowlog_capacity_is_configurable() {
        let tiny = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                slow_query_micros: 1,
                slowlog_capacity: 2,
                ..EngineConfig::default()
            },
        );
        for i in 0..5 {
            tiny.execute(&SacRequest::new(i, figure3::Q, 2));
        }
        assert_eq!(tiny.slow_log().len(), 2);
        assert_eq!(tiny.slow_log().dropped(), 3);
        let ids: Vec<u64> = tiny
            .slow_log()
            .snapshot()
            .iter()
            .map(|r| r.query_id)
            .collect();
        assert_eq!(ids, vec![4, 5], "the ring keeps the most recent entries");
    }

    #[test]
    fn events_record_epoch_swaps_and_fallbacks() {
        let sharded = SacEngine::with_shards(figure3_graph(), 2);
        assert!(sharded.events().is_empty());
        sharded.execute(&SacRequest::new(1, figure3::Q, 2).with_algorithm("global"));
        let snapshot = sharded.snapshot();
        let decomposition = sac_graph::core_decomposition(snapshot.graph());
        sharded.publish(snapshot, decomposition, u32::MAX);
        let batch = sharded.events().since(0);
        assert_eq!(batch.missed, 0);
        let kinds: Vec<&str> = batch.events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["fallback", "epoch_swap"]);
        assert_eq!(
            batch.events[0].detail,
            format!("reason=override q={} k=2", figure3::Q)
        );
        assert!(batch.events[1].detail.starts_with("epoch=2 "));
        // The cursor tails: nothing new since the last batch.
        assert!(sharded.events().since(batch.next_seq).events.is_empty());
        // Dark engines publish nothing.
        let dark = SacEngine::with_config(
            Arc::new(figure3_graph()),
            EngineConfig {
                shards: 2,
                observe: false,
                ..EngineConfig::default()
            },
        );
        dark.execute(&SacRequest::new(1, figure3::Q, 2).with_algorithm("global"));
        assert!(dark.events().is_empty());
    }

    #[test]
    fn theta_budgets_dispatch_theta_sac() {
        let engine = engine();
        let request = SacRequest::new(8, figure3::Q, 2).with_budget(
            QueryBudget::balanced()
                .with_theta(10.0)
                .with_tier(LatencyTier::Batch),
        );
        let response = engine.execute(&request);
        assert!(response.plan.dispatches("theta_sac"));
        assert_eq!(response.plan.label(), "theta_sac(theta=10)");
        assert_eq!(response.trace.guaranteed_ratio, None);
        let direct = theta_sac(&figure3_graph(), figure3::Q, 2, 10.0)
            .unwrap()
            .unwrap();
        assert_eq!(response.community().unwrap().members(), direct.members());
    }
}
