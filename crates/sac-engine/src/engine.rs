//! The serving engine: epoch-published immutable graph snapshots, the shared
//! k-core cache, the planner, and a concurrent batch executor.

use crate::cache::{CacheLayerStats, CacheStats, KCoreCache, KCoreComponents};
use crate::epoch::EpochCell;
use crate::planner::{LatencyTier, Plan, PlanContext, PlannedQuery, Planner, QueryBudget};
use sac_core::{AlgorithmRegistry, Community, SacError, SearchContext, EXACT_PLUS_EPS_A};
use sac_graph::{CoreDecomposition, SpatialGraph, SweepStats, VertexId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Tunables of a [`SacEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Connected-k-core size at or below which the planner upgrades any
    /// unconstrained budget to `Exact+` (the candidate set is so small that an
    /// exact answer costs no more than an approximate one).
    pub small_exact_threshold: usize,
    /// `εA` used inside `Exact+` plans (the paper's exact-experiment value).
    pub exact_eps_a: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            small_exact_threshold: 48,
            exact_eps_a: EXACT_PLUS_EPS_A,
        }
    }
}

/// One SAC query against the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SacRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Query vertex.
    pub q: VertexId,
    /// Minimum degree constraint.
    pub k: u32,
    /// Accuracy/latency budget driving plan selection.
    pub budget: QueryBudget,
    /// Explicit algorithm override: when set, the planner dispatches this
    /// registry name directly (default parameters, no small-core upgrade, no
    /// cache-infeasibility short-circuit), which makes otherwise unreachable
    /// registrations — e.g. the `global`/`local` baselines — A/B-testable
    /// against the planned path.
    pub algorithm: Option<String>,
}

impl SacRequest {
    /// A request with the default (balanced) budget.
    pub fn new(id: u64, q: VertexId, k: u32) -> Self {
        SacRequest {
            id,
            q,
            k,
            budget: QueryBudget::default(),
            algorithm: None,
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Forces the named registry algorithm instead of planner selection.
    pub fn with_algorithm(mut self, algorithm: impl Into<String>) -> Self {
        self.algorithm = Some(algorithm.into());
        self
    }

    /// A validating builder for a request against vertex `q` with degree
    /// bound `k` (see [`SacRequestBuilder`]).
    pub fn builder(q: VertexId, k: u32) -> SacRequestBuilder {
        SacRequestBuilder {
            id: 0,
            q,
            k,
            budget: QueryBudget::default(),
            algorithm: None,
        }
    }
}

/// A validating builder for [`SacRequest`]: budget nonsense (`max_ratio < 1`,
/// non-finite or non-positive `theta`) is rejected with typed errors at
/// construction time, before the request ever reaches an engine.
///
/// ```
/// use sac_engine::{LatencyTier, SacRequest};
/// use sac_core::SacError;
///
/// let request = SacRequest::builder(17, 4)
///     .id(1)
///     .ratio(1.5)
///     .tier(LatencyTier::Interactive)
///     .build()
///     .unwrap();
/// assert_eq!(request.budget.max_ratio, 1.5);
///
/// // Invalid budgets never become requests.
/// assert_eq!(
///     SacRequest::builder(17, 4).ratio(0.5).build(),
///     Err(SacError::InvalidRatio(0.5))
/// );
/// assert_eq!(
///     SacRequest::builder(17, 4).theta(0.0).build(),
///     Err(SacError::InvalidTheta(0.0))
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SacRequestBuilder {
    id: u64,
    q: VertexId,
    k: u32,
    budget: QueryBudget,
    algorithm: Option<String>,
}

impl SacRequestBuilder {
    /// Sets the caller-chosen request id (echoed in the response).
    pub fn id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Forces the named registry algorithm instead of planner selection (see
    /// [`SacRequest::algorithm`]); an unknown name is reported by the engine
    /// as [`SacError::UnknownAlgorithm`].
    pub fn algorithm(mut self, algorithm: impl Into<String>) -> Self {
        self.algorithm = Some(algorithm.into());
        self
    }

    /// Sets the largest acceptable approximation ratio (`>= 1`).
    pub fn ratio(mut self, max_ratio: f64) -> Self {
        self.budget.max_ratio = max_ratio;
        self
    }

    /// Sets the latency tier.
    pub fn tier(mut self, tier: LatencyTier) -> Self {
        self.budget.tier = tier;
        self
    }

    /// Requests the θ-SAC variant with radius constraint `theta` (`> 0`).
    pub fn theta(mut self, theta: f64) -> Self {
        self.budget.theta = Some(theta);
        self
    }

    /// Replaces the whole budget.
    pub fn budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Validates the budget and builds the request.
    ///
    /// Typed errors: [`SacError::InvalidRatio`] for `max_ratio < 1` (or
    /// non-finite), [`SacError::InvalidTheta`] for `theta <= 0` (or
    /// non-finite).  An unknown query vertex is reported by the engine — the
    /// builder has no graph to check against — as the equally typed
    /// [`SacError::QueryVertexOutOfRange`].
    pub fn build(self) -> Result<SacRequest, SacError> {
        self.budget.validate()?;
        Ok(SacRequest {
            id: self.id,
            q: self.q,
            k: self.k,
            budget: self.budget,
            algorithm: self.algorithm,
        })
    }
}

/// Per-request trace metadata: where and how a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryTrace {
    /// Epoch (snapshot generation) the query was answered against.
    pub epoch: u64,
    /// Microseconds spent planning (budget validation, cache feasibility
    /// lookup, profile selection).
    pub plan_micros: u64,
    /// Microseconds spent executing the selected algorithm.
    pub exec_micros: u64,
    /// Whether the k-core cache was already warm when the query arrived.
    pub cache_hit: bool,
    /// The approximation ratio the dispatched plan guarantees, when any.
    pub guaranteed_ratio: Option<f64>,
    /// Connected-k-core feasibility probes the executed algorithm issued
    /// (radius-sweep prefix probes, arbitrary-circle probes and collected
    /// probes); 0 for cache-answered or rejected queries.
    pub probe_count: u64,
    /// Spatial candidates materialised by the algorithm's sweep begins — the
    /// amortisation denominator: from-scratch probing would pay a range query
    /// *per probe*, the sweep pays one candidate view per sweep.
    pub candidate_count: u64,
}

/// The engine's answer to one [`SacRequest`].
#[derive(Debug, Clone)]
pub struct SacResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the query vertex.
    pub q: VertexId,
    /// Echo of the degree constraint.
    pub k: u32,
    /// The plan the engine dispatched.
    pub plan: Plan,
    /// The community (or `None` when infeasible), or the per-query error.
    pub outcome: Result<Option<Community>, SacError>,
    /// Wall-clock service time in microseconds (planning + execution).
    pub micros: u64,
    /// Trace metadata: epoch, phase timings, cache state, guarantee.
    pub trace: QueryTrace,
}

impl SacResponse {
    /// The community when the query succeeded and was feasible.
    pub fn community(&self) -> Option<&Community> {
        self.outcome.as_ref().ok().and_then(|c| c.as_ref())
    }
}

/// Aggregate serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Queries answered (including errors).
    pub queries: u64,
    /// Queries short-circuited by the cache feasibility check.
    pub infeasible_fast_path: u64,
    /// Queries that returned a per-query error.
    pub errors: u64,
    /// Cache counters, cumulative across all epochs (retired epochs' counters
    /// are folded in when a new snapshot is published).
    pub cache: CacheStats,
    /// Number of the currently served epoch (1 for a freshly built engine).
    pub epoch: u64,
    /// Snapshots published over this engine's lifetime (epoch swaps).
    pub epochs_published: u64,
    /// Per-`k` component indexes carried over across epoch swaps (their `k`
    /// was untouched by the delta, so the index stayed valid).
    pub components_carried: u64,
    /// Per-`k` component indexes dropped at epoch swaps because the delta
    /// touched their `k`.
    pub components_invalidated: u64,
}

/// The engine's answer to one snapshot publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishReport {
    /// Number of the newly current epoch.
    pub epoch: u64,
    /// Per-`k` component indexes carried over from the previous epoch.
    pub components_carried: u64,
    /// Per-`k` component indexes invalidated by the delta.
    pub components_invalidated: u64,
}

/// One served epoch: a snapshot and the k-core cache built against it.
#[derive(Debug)]
struct EngineEpoch {
    number: u64,
    graph: Arc<SpatialGraph>,
    cache: KCoreCache,
}

/// A thread-safe SAC query engine over one immutable graph snapshot.
///
/// The engine owns an `Arc<SpatialGraph>` snapshot (shared, read-only — see
/// the `Send + Sync` assertions in `sac-graph`), a [`KCoreCache`] that
/// memoises the core decomposition and per-`k` connected-core indexes, and a
/// planner that turns each request's [`QueryBudget`] into one of the paper's
/// algorithms.  All methods take `&self`; one engine serves any number of
/// threads concurrently.
///
/// ```
/// use sac_engine::{QueryBudget, SacEngine, SacRequest};
///
/// let engine = SacEngine::new(sac_core::fixtures::figure3_graph());
/// let request = SacRequest::new(0, sac_core::fixtures::figure3::Q, 2)
///     .with_budget(QueryBudget::exact());
/// let response = engine.execute(&request);
/// let community = response.community().expect("Q has a 2-core community");
/// assert!(community.contains(sac_core::fixtures::figure3::Q));
/// ```
#[derive(Debug)]
pub struct SacEngine {
    epoch: EpochCell<EngineEpoch>,
    planner: Planner,
    queries: AtomicU64,
    infeasible_fast_path: AtomicU64,
    errors: AtomicU64,
    epochs_published: AtomicU64,
    components_carried: AtomicU64,
    components_invalidated: AtomicU64,
    /// Cache counters of retired epochs, folded in at publish time so
    /// [`EngineStats::cache`] stays cumulative across swaps.
    retired_cache: Mutex<CacheStats>,
}

impl SacEngine {
    /// An engine owning `graph` as its immutable snapshot.
    pub fn new(graph: SpatialGraph) -> Self {
        SacEngine::from_snapshot(Arc::new(graph))
    }

    /// An engine over an existing shared snapshot.
    pub fn from_snapshot(graph: Arc<SpatialGraph>) -> Self {
        SacEngine::with_config(graph, EngineConfig::default())
    }

    /// An engine with custom tunables over the built-in algorithm registry.
    pub fn with_config(graph: Arc<SpatialGraph>, config: EngineConfig) -> Self {
        SacEngine::with_registry(graph, config, Arc::new(AlgorithmRegistry::builtin()))
    }

    /// An engine serving the algorithms of a caller-supplied registry: the
    /// planner selects over the registered profiles and every query arm
    /// dispatches by name, so registering an algorithm is all it takes to
    /// serve it.
    pub fn with_registry(
        graph: Arc<SpatialGraph>,
        config: EngineConfig,
        registry: Arc<AlgorithmRegistry>,
    ) -> Self {
        SacEngine {
            epoch: EpochCell::new(Arc::new(EngineEpoch {
                number: 1,
                graph,
                cache: KCoreCache::new(),
            })),
            planner: Planner::new(registry, config.small_exact_threshold, config.exact_eps_a),
            queries: AtomicU64::new(0),
            infeasible_fast_path: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            epochs_published: AtomicU64::new(0),
            components_carried: AtomicU64::new(0),
            components_invalidated: AtomicU64::new(0),
            retired_cache: Mutex::new(CacheStats::default()),
        }
    }

    /// The algorithm registry this engine dispatches into.
    pub fn registry(&self) -> &Arc<AlgorithmRegistry> {
        self.planner.registry()
    }

    /// The shared snapshot of the current epoch.
    pub fn snapshot(&self) -> Arc<SpatialGraph> {
        Arc::clone(&self.epoch.load().graph)
    }

    /// Number of the currently served epoch (starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch.load().number
    }

    /// Publishes a new snapshot as the next epoch, selectively carrying the
    /// k-core index cache across.
    ///
    /// `decomposition` must be the core decomposition of `graph` (the
    /// live-update path maintains it incrementally).  `dirty_up_to` is the
    /// largest `k` whose k-core may differ from the previous snapshot (see
    /// [`sac_graph::EdgeChange::dirty_up_to`]): cached component indexes for
    /// `k > dirty_up_to` remain valid and carry over to the new epoch; the
    /// rest — and any `k = 0` index, since vertex additions change the 0-core
    /// — are dropped.  In-flight queries keep the epoch they loaded and finish
    /// on the old snapshot.
    ///
    /// Concurrent publishers are memory-safe but should be serialised by the
    /// caller (the live-update front does) so epoch numbers stay sequential.
    pub fn publish(
        &self,
        graph: Arc<SpatialGraph>,
        decomposition: CoreDecomposition,
        dirty_up_to: u32,
    ) -> PublishReport {
        assert_eq!(
            decomposition.core_numbers().len(),
            graph.num_vertices(),
            "decomposition does not match the published graph"
        );
        let previous = self.epoch.load();
        let mut carried = 0u64;
        let mut invalidated = 0u64;
        let surviving: Vec<Arc<KCoreComponents>> = previous
            .cache
            .component_entries()
            .into_iter()
            .filter(|entry| {
                let keep = entry.k() != 0 && entry.k() > dirty_up_to;
                if keep {
                    carried += 1;
                } else {
                    invalidated += 1;
                }
                keep
            })
            .collect();
        let next = EngineEpoch {
            number: previous.number + 1,
            graph,
            cache: KCoreCache::seeded(Arc::new(decomposition), surviving),
        };
        // Swap and fold the retired epoch's cache counters under the same
        // lock `stats()` takes, so a concurrent reader never sees the retired
        // epoch both folded into the total and still live (double-counted).
        let retired = {
            let mut acc = self.retired_cache.lock().expect("stats lock poisoned");
            let retired = self.epoch.swap(Arc::new(next));
            *acc = add_cache_stats(*acc, retired.cache.stats());
            retired
        };
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.components_carried
            .fetch_add(carried, Ordering::Relaxed);
        self.components_invalidated
            .fetch_add(invalidated, Ordering::Relaxed);
        PublishReport {
            epoch: retired.number + 1,
            components_carried: carried,
            components_invalidated: invalidated,
        }
    }

    /// Pre-computes the decomposition and the component indexes for `ks`, so
    /// the first real queries don't pay the build cost.
    pub fn warm(&self, ks: &[u32]) {
        let epoch = self.epoch.load();
        let graph = epoch.graph.graph();
        epoch.cache.decomposition(graph);
        for &k in ks {
            epoch.cache.components(graph, k);
        }
    }

    /// The memoised core decomposition of the current snapshot.
    pub fn decomposition(&self) -> Arc<CoreDecomposition> {
        let epoch = self.epoch.load();
        epoch.cache.decomposition(epoch.graph.graph())
    }

    /// The memoised connected-component index of the k-core for `k`.
    pub fn core_components(&self, k: u32) -> Arc<KCoreComponents> {
        let epoch = self.epoch.load();
        epoch.cache.components(epoch.graph.graph(), k)
    }

    /// Cache-served structural query: the sorted members of the connected
    /// k-core containing `q` (no spatial optimisation), or `None` when `q` is
    /// in no k-core.
    pub fn connected_core(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        self.core_components(k).core_of(q).map(<[VertexId]>::to_vec)
    }

    /// The plan the engine would dispatch for `request` (exposed for tests,
    /// tooling and the equivalence suite).
    pub fn plan_for(&self, request: &SacRequest) -> Result<Plan, SacError> {
        self.plan_on(&self.epoch.load(), request)
    }

    fn plan_on(&self, epoch: &EngineEpoch, request: &SacRequest) -> Result<Plan, SacError> {
        // Budget validation happens inside `Planner::plan` — the one choke
        // point every query path goes through.
        let n = epoch.graph.num_vertices();
        if request.q as usize >= n {
            return Err(SacError::QueryVertexOutOfRange(request.q));
        }
        // An explicit override skips the cache feasibility lookup entirely:
        // A/B comparisons should measure the named algorithm end to end, not
        // the cache's short-circuit.
        let ctx = if request.algorithm.is_some() {
            PlanContext {
                core_size: None,
                infeasible: false,
            }
        } else {
            Self::plan_context(epoch, request)
        };
        self.planner.plan(
            request.q,
            request.k,
            &request.budget,
            &ctx,
            request.algorithm.as_deref(),
        )
    }

    /// Structural facts for the planner.  The cache feasibility rule is only
    /// sound for `k >= 2`: for `k <= 1` the algorithms have trivial answers
    /// (single vertex / nearest neighbour) that exist even outside any k-core,
    /// so those queries always go to the algorithm.
    fn plan_context(epoch: &EngineEpoch, request: &SacRequest) -> PlanContext {
        if request.k < 2 {
            return PlanContext {
                core_size: None,
                infeasible: false,
            };
        }
        // O(1) feasibility from the decomposition first: infeasible queries
        // (including arbitrary wire-supplied k) never build a per-k index.
        let graph = epoch.graph.graph();
        let decomposition = epoch.cache.decomposition(graph);
        if decomposition.core_number(request.q) < request.k {
            return PlanContext {
                core_size: None,
                infeasible: true,
            };
        }
        let components = epoch.cache.components(graph, request.k);
        PlanContext {
            core_size: components.core_size_of(request.q),
            infeasible: false,
        }
    }

    /// Answers one request: plans, dispatches, and annotates the response with
    /// timing and cache metadata.
    ///
    /// The epoch is loaded once at entry; a snapshot published mid-query does
    /// not affect this request.
    pub fn execute(&self, request: &SacRequest) -> SacResponse {
        self.execute_on(&self.epoch.load(), request)
    }

    fn execute_on(&self, epoch: &EngineEpoch, request: &SacRequest) -> SacResponse {
        let start = Instant::now();
        let cache_hit = epoch.cache.is_warm();
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (plan, plan_micros, outcome, sweep) = match self.plan_on(epoch, request) {
            Err(e) => (
                Plan::Rejected,
                start.elapsed().as_micros() as u64,
                Err(e),
                SweepStats::default(),
            ),
            Ok(plan) => {
                let plan_micros = start.elapsed().as_micros() as u64;
                let (outcome, sweep) = self.dispatch(epoch, &plan);
                (plan, plan_micros, outcome, sweep)
            }
        };
        match &outcome {
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) if plan == Plan::Infeasible => {
                self.infeasible_fast_path.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
        }
        let micros = start.elapsed().as_micros() as u64;
        SacResponse {
            id: request.id,
            q: request.q,
            k: request.k,
            outcome,
            micros,
            trace: QueryTrace {
                epoch: epoch.number,
                plan_micros,
                exec_micros: micros.saturating_sub(plan_micros),
                cache_hit,
                guaranteed_ratio: plan.guaranteed_ratio(),
                probe_count: sweep.probes,
                candidate_count: sweep.candidates,
            },
            plan,
        }
    }

    /// Runs the planned algorithm by looking it up in the registry — the
    /// engine has no per-algorithm dispatch arms.  Every registered
    /// implementation runs the same `sac_core` entry point a direct caller
    /// would use, so engine answers are bit-identical to library answers (the
    /// equivalence suite asserts this); the [`SearchContext`] carries the
    /// epoch's memoised decomposition, so k-ĉore-extracting algorithms skip
    /// the `O(m)` peel.
    fn dispatch(
        &self,
        epoch: &EngineEpoch,
        plan: &Plan,
    ) -> (Result<Option<Community>, SacError>, SweepStats) {
        let planned: &PlannedQuery = match plan {
            Plan::Infeasible => return (Ok(None), SweepStats::default()),
            Plan::Rejected => unreachable!("rejected plans never reach dispatch"),
            Plan::Execute(planned) => planned,
        };
        let Some(algorithm) = self.planner.registry().get(planned.algorithm) else {
            return (
                Err(SacError::UnknownAlgorithm(planned.algorithm.to_string())),
                SweepStats::default(),
            );
        };
        let graph = &*epoch.graph;
        // Only k-ĉore-extracting algorithms consume the shared decomposition;
        // the rest (theta_sac, app_inc, ...) must not force the `O(m)` peel
        // on a cold cache for nothing.
        let ctx = if algorithm.profile().shares_decomposition {
            SearchContext::with_decomposition(
                graph,
                planned.query.q,
                planned.query.k,
                epoch.cache.decomposition(graph.graph()),
            )
        } else {
            SearchContext::new(graph, planned.query.q, planned.query.k)
        };
        let mut ctx = match ctx {
            Ok(ctx) => ctx,
            Err(e) => return (Err(e), SweepStats::default()),
        };
        let outcome = algorithm
            .run(&mut ctx, &planned.query)
            .map(|outcome| outcome.community);
        // The context's sweep counters are the per-query observability hook:
        // they land in `QueryTrace::probe_count`/`candidate_count`.
        (outcome, ctx.sweep_stats())
    }

    /// Fans `requests` across `threads` workers sharing this engine and
    /// returns the responses in request order.
    ///
    /// The epoch is loaded once for the whole batch, so every request of a
    /// batch is answered against the same snapshot even when a publish lands
    /// mid-batch.  Work is distributed by an atomic cursor (cheap dynamic load
    /// balancing: slow exact queries don't stall a whole stripe of the batch).
    pub fn execute_batch(&self, requests: &[SacRequest], threads: usize) -> Vec<SacResponse> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let epoch = self.epoch.load();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            return requests
                .iter()
                .map(|r| self.execute_on(&epoch, r))
                .collect();
        }
        // Warm the decomposition once up front so concurrent first-queries
        // don't all compute it.
        epoch.cache.decomposition(epoch.graph.graph());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<SacResponse>> = (0..n).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let response = self.execute_on(&epoch, &requests[i]);
                    slots[i].set(response).expect("each slot is written once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all slots filled"))
            .collect()
    }

    /// Current serving counters (cache counters cumulative across epochs).
    pub fn stats(&self) -> EngineStats {
        // Read the accumulator and the live epoch under the accumulator's
        // lock (publish folds + swaps under the same lock), so an epoch's
        // counters are never counted both as retired and as live.
        let (retired, epoch) = {
            let acc = self.retired_cache.lock().expect("stats lock poisoned");
            (*acc, self.epoch.load())
        };
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            infeasible_fast_path: self.infeasible_fast_path.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: add_cache_stats(retired, epoch.cache.stats()),
            epoch: epoch.number,
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            components_carried: self.components_carried.load(Ordering::Relaxed),
            components_invalidated: self.components_invalidated.load(Ordering::Relaxed),
        }
    }
}

fn add_cache_stats(a: CacheStats, b: CacheStats) -> CacheStats {
    fn add_layer(a: CacheLayerStats, b: CacheLayerStats) -> CacheLayerStats {
        CacheLayerStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
        }
    }
    CacheStats {
        decomposition: add_layer(a.decomposition, b.decomposition),
        components: add_layer(a.components, b.components),
    }
}

// One engine is shared by reference across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SacEngine>();
    assert_send_sync::<SacRequest>();
    assert_send_sync::<SacResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::LatencyTier;
    use sac_core::fixtures::{figure3, figure3_graph};
    use sac_core::{exact_plus, theta_sac};

    fn engine() -> SacEngine {
        SacEngine::new(figure3_graph())
    }

    #[test]
    fn exact_budget_returns_paper_answer() {
        let engine = engine();
        let response =
            engine.execute(&SacRequest::new(1, figure3::Q, 2).with_budget(QueryBudget::exact()));
        assert_eq!(response.id, 1);
        assert!(response.plan.dispatches("exact_plus"));
        let community = response.community().expect("feasible");
        let direct = exact_plus(&figure3_graph(), figure3::Q, 2, EXACT_PLUS_EPS_A)
            .unwrap()
            .unwrap();
        assert_eq!(community.members(), direct.members());
        assert!(!response.trace.cache_hit, "first query sees a cold cache");
        assert_eq!(response.trace.epoch, 1);
        assert_eq!(response.trace.guaranteed_ratio, Some(1.0));
        assert!(response.micros >= response.trace.plan_micros);
    }

    #[test]
    fn infeasible_queries_short_circuit_through_cache() {
        let engine = engine();
        // Vertex I (pendant) has core number 1: no 2-core community.
        let response = engine.execute(&SacRequest::new(2, figure3::I, 2));
        assert_eq!(response.plan, Plan::Infeasible);
        assert_eq!(response.outcome, Ok(None));
        let stats = engine.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.infeasible_fast_path, 1);
    }

    #[test]
    fn absurd_k_values_never_build_or_cache_indexes() {
        let engine = engine();
        for k in [100u32, 1_000_000, u32::MAX] {
            let response = engine.execute(&SacRequest::new(9, figure3::Q, k));
            assert_eq!(response.plan, Plan::Infeasible);
            assert_eq!(response.outcome, Ok(None));
        }
        // Feasibility came from the O(1) decomposition lookup: no per-k
        // component index was built for any of the absurd k values.
        let stats = engine.stats();
        assert_eq!(stats.cache.components.misses, 0);
        assert_eq!(stats.infeasible_fast_path, 3);
        // The public structural query is also safe against huge k.
        assert!(engine.connected_core(figure3::Q, 10_000).is_none());
        assert_eq!(engine.stats().cache.components.misses, 0);
    }

    #[test]
    fn trivial_k_queries_bypass_the_feasibility_fast_path() {
        let engine = engine();
        // k = 0 has a trivial single-vertex answer even for the pendant vertex.
        let response = engine.execute(&SacRequest::new(3, figure3::I, 0));
        let community = response.community().expect("k=0 is always feasible");
        assert_eq!(community.members(), &[figure3::I]);
    }

    #[test]
    fn second_query_hits_the_cache() {
        let engine = engine();
        let req = SacRequest::new(4, figure3::Q, 2);
        let first = engine.execute(&req);
        let second = engine.execute(&req);
        assert!(!first.trace.cache_hit);
        assert!(second.trace.cache_hit);
        assert_eq!(
            first.community().unwrap().members(),
            second.community().unwrap().members()
        );
    }

    #[test]
    fn errors_are_reported_per_query() {
        let engine = engine();
        let out_of_range = engine.execute(&SacRequest::new(5, 999, 2));
        assert_eq!(out_of_range.plan, Plan::Rejected);
        assert_eq!(
            out_of_range.outcome,
            Err(SacError::QueryVertexOutOfRange(999))
        );
        let bad_budget = engine.execute(
            &SacRequest::new(6, figure3::Q, 2).with_budget(QueryBudget::within_ratio(0.2)),
        );
        assert_eq!(bad_budget.plan, Plan::Rejected);
        assert!(bad_budget.outcome.is_err());
        assert_eq!(engine.stats().errors, 2);
    }

    #[test]
    fn batch_execution_preserves_order_and_results() {
        let engine = engine();
        let requests: Vec<SacRequest> = (0..40)
            .map(|i| {
                let q = [figure3::Q, figure3::A, figure3::F, figure3::I][i % 4];
                SacRequest::new(i as u64, q, 2)
            })
            .collect();
        let batch = engine.execute_batch(&requests, 4);
        assert_eq!(batch.len(), 40);
        for (i, response) in batch.iter().enumerate() {
            assert_eq!(response.id, i as u64);
            let single = engine.execute(&requests[i]);
            match (response.community(), single.community()) {
                (Some(a), Some(b)) => assert_eq!(a.members(), b.members()),
                (None, None) => {}
                _ => panic!("batch/single feasibility mismatch at {i}"),
            }
        }
    }

    #[test]
    fn structural_core_queries_come_from_the_cache() {
        let engine = engine();
        let core = engine
            .connected_core(figure3::Q, 2)
            .expect("Q is in the 2-core");
        assert!(core.contains(&figure3::Q));
        assert!(engine.connected_core(figure3::I, 2).is_none());
        // Small fixture: the planner upgrades every feasible plan to Exact+.
        let plan = engine
            .plan_for(&SacRequest::new(7, figure3::Q, 2).with_budget(QueryBudget::interactive()))
            .unwrap();
        assert!(plan.dispatches("exact_plus"));
    }

    #[test]
    fn publish_swaps_epochs_and_carries_untouched_indexes() {
        use sac_graph::DynamicGraph;

        let engine = engine();
        assert_eq!(engine.epoch(), 1);
        engine.warm(&[1, 2]);

        // Delta: drop the pendant edge H–I (vertices 8 and 9 in the fixture).
        // I has core 1, so only k <= 1 cores can change: the k = 2 index must
        // carry over, the k = 1 index must be dropped.
        let old_snapshot = engine.snapshot();
        let mut dynamic = DynamicGraph::from_graph(old_snapshot.graph());
        let change = dynamic.remove_edge(figure3::H, figure3::I).unwrap();
        assert_eq!(change.dirty_up_to, 1);
        let new_graph =
            sac_graph::SpatialGraph::new(dynamic.to_graph(), old_snapshot.positions().to_vec())
                .unwrap();
        let report = engine.publish(Arc::new(new_graph), dynamic.decomposition(), 1);
        assert_eq!(report.epoch, 2);
        assert_eq!(report.components_carried, 1);
        assert_eq!(report.components_invalidated, 1);
        assert_eq!(engine.epoch(), 2);

        // The carried k = 2 index answers without a rebuild (a component hit,
        // no new miss beyond the two warming builds).
        let before = engine.stats().cache.components;
        let core = engine.connected_core(figure3::Q, 2).unwrap();
        assert!(core.contains(&figure3::Q));
        let after = engine.stats().cache.components;
        assert_eq!(after.misses, before.misses, "carried index must be a hit");
        assert_eq!(after.hits, before.hits + 1);

        // The new snapshot is live: I is now isolated, so even k = 1 is
        // infeasible structurally.
        assert!(engine.connected_core(figure3::I, 1).is_none());
        // In-flight holders of the old snapshot still see the edge.
        assert!(old_snapshot.graph().has_edge(figure3::H, figure3::I));
        let stats = engine.stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.epochs_published, 1);
        assert_eq!(stats.components_carried, 1);
        assert_eq!(stats.components_invalidated, 1);
    }

    #[test]
    fn stats_accumulate_across_epochs() {
        let engine = engine();
        let req = SacRequest::new(1, figure3::Q, 2);
        engine.execute(&req);
        let before = engine.stats();
        assert!(before.cache.decomposition.misses >= 1);

        // Republish the same graph with a full invalidation: the old epoch's
        // counters must not vanish from the cumulative stats.
        let snapshot = engine.snapshot();
        let decomposition = sac_graph::core_decomposition(snapshot.graph());
        engine.publish(snapshot, decomposition, u32::MAX);
        let after = engine.stats();
        assert!(after.cache.decomposition.misses >= before.cache.decomposition.misses);
        assert!(after.cache.components.misses >= before.cache.components.misses);
        assert_eq!(after.queries, before.queries);
        assert_eq!(after.epoch, 2);
    }

    #[test]
    fn non_core_extracting_algorithms_skip_the_decomposition() {
        let engine = engine();
        // θ query with k = 0: the planner's feasibility check skips the
        // decomposition (k < 2) and theta_sac declares it does not consume
        // one — so a cold engine must not pay the O(m) peel for it.
        let response = engine.execute(
            &SacRequest::new(1, figure3::Q, 0).with_budget(QueryBudget::balanced().with_theta(5.0)),
        );
        assert!(response.plan.dispatches("theta_sac"));
        assert!(response.community().is_some());
        assert_eq!(
            engine.stats().cache.decomposition.misses,
            0,
            "theta_sac must not force the decomposition"
        );
    }

    #[test]
    fn trace_exposes_probe_and_candidate_counts() {
        let engine = engine();
        // A planned algorithm that probes (exact_plus on the small fixture)
        // must report its sweep counters in the trace.
        let response =
            engine.execute(&SacRequest::new(1, figure3::Q, 2).with_budget(QueryBudget::exact()));
        assert!(response.trace.probe_count > 0, "exact_plus probes circles");
        assert!(response.trace.candidate_count > 0);
        // Algorithms that build their context internally in the free-function
        // form still surface counters through the engine's context (app_inc
        // collects into a sweep, exact probes triple circles).
        for name in ["app_inc", "exact", "app_fast", "app_acc"] {
            let response = engine.execute(&SacRequest::new(3, figure3::Q, 2).with_algorithm(name));
            assert!(
                response.trace.probe_count > 0,
                "{name} must report its probes"
            );
            assert!(
                response.trace.candidate_count > 0,
                "{name} must report its candidates"
            );
        }
        // Cache-answered infeasibility never probes.
        let infeasible = engine.execute(&SacRequest::new(2, figure3::I, 2));
        assert_eq!(infeasible.plan, Plan::Infeasible);
        assert_eq!(infeasible.trace.probe_count, 0);
        assert_eq!(infeasible.trace.candidate_count, 0);
    }

    #[test]
    fn algorithm_override_reaches_registered_baselines() {
        let engine = engine();
        // `global` is registered but unreachable through budgets; the
        // override dispatches it and returns the whole k-ĉore (the
        // structure-only baseline ignores locations).
        let request = SacRequest::builder(figure3::Q, 2)
            .id(11)
            .algorithm("global")
            .build()
            .unwrap();
        let response = engine.execute(&request);
        assert!(response.plan.dispatches("global"));
        let community = response.community().expect("feasible");
        let direct = sac_core::baselines::global_search(&figure3_graph(), figure3::Q, 2)
            .unwrap()
            .unwrap();
        assert_eq!(community.members(), direct.members());
        assert_eq!(response.trace.guaranteed_ratio, None);

        // The override runs the real algorithm even where the cache would
        // short-circuit (A/B timing honesty): vertex I has no 2-core, and the
        // algorithm itself — not the cache — reports infeasibility.
        let request = SacRequest::new(12, figure3::I, 2).with_algorithm("app_inc");
        let response = engine.execute(&request);
        assert!(response.plan.dispatches("app_inc"));
        assert_eq!(response.outcome, Ok(None));
        assert_eq!(engine.stats().infeasible_fast_path, 0);

        // Unknown overrides are typed per-query errors.
        let response = engine.execute(&SacRequest::new(13, figure3::Q, 2).with_algorithm("nope"));
        assert_eq!(response.plan, Plan::Rejected);
        assert_eq!(
            response.outcome,
            Err(SacError::UnknownAlgorithm("nope".to_string()))
        );
    }

    #[test]
    fn theta_budgets_dispatch_theta_sac() {
        let engine = engine();
        let request = SacRequest::new(8, figure3::Q, 2).with_budget(
            QueryBudget::balanced()
                .with_theta(10.0)
                .with_tier(LatencyTier::Batch),
        );
        let response = engine.execute(&request);
        assert!(response.plan.dispatches("theta_sac"));
        assert_eq!(response.plan.label(), "theta_sac(theta=10)");
        assert_eq!(response.trace.guaranteed_ratio, None);
        let direct = theta_sac(&figure3_graph(), figure3::Q, 2, 10.0)
            .unwrap()
            .unwrap();
        assert_eq!(response.community().unwrap().members(), direct.members());
    }
}
