//! The serving engine: an immutable graph snapshot, the shared k-core cache,
//! the planner, and a concurrent batch executor.

use crate::cache::{CacheStats, KCoreCache, KCoreComponents};
use crate::planner::{plan_query, Plan, PlanContext, QueryBudget};
use sac_core::{
    app_acc, app_inc, exact_plus, theta_sac, BatchSacSearch, Community, SacError, EXACT_PLUS_EPS_A,
};
use sac_graph::{CoreDecomposition, SpatialGraph, VertexId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Tunables of a [`SacEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Connected-k-core size at or below which the planner upgrades any
    /// unconstrained budget to `Exact+` (the candidate set is so small that an
    /// exact answer costs no more than an approximate one).
    pub small_exact_threshold: usize,
    /// `εA` used inside `Exact+` plans (the paper's exact-experiment value).
    pub exact_eps_a: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            small_exact_threshold: 48,
            exact_eps_a: EXACT_PLUS_EPS_A,
        }
    }
}

/// One SAC query against the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SacRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Query vertex.
    pub q: VertexId,
    /// Minimum degree constraint.
    pub k: u32,
    /// Accuracy/latency budget driving plan selection.
    pub budget: QueryBudget,
}

impl SacRequest {
    /// A request with the default (balanced) budget.
    pub fn new(id: u64, q: VertexId, k: u32) -> Self {
        SacRequest {
            id,
            q,
            k,
            budget: QueryBudget::default(),
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// The engine's answer to one [`SacRequest`].
#[derive(Debug, Clone)]
pub struct SacResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the query vertex.
    pub q: VertexId,
    /// Echo of the degree constraint.
    pub k: u32,
    /// The plan the engine dispatched.
    pub plan: Plan,
    /// The community (or `None` when infeasible), or the per-query error.
    pub outcome: Result<Option<Community>, SacError>,
    /// Wall-clock service time in microseconds (planning + execution).
    pub micros: u64,
    /// Whether the k-core cache was already warm when the query arrived.
    pub cache_hit: bool,
}

impl SacResponse {
    /// The community when the query succeeded and was feasible.
    pub fn community(&self) -> Option<&Community> {
        self.outcome.as_ref().ok().and_then(|c| c.as_ref())
    }
}

/// Aggregate serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Queries answered (including errors).
    pub queries: u64,
    /// Queries short-circuited by the cache feasibility check.
    pub infeasible_fast_path: u64,
    /// Queries that returned a per-query error.
    pub errors: u64,
    /// Cache counters.
    pub cache: CacheStats,
}

/// A thread-safe SAC query engine over one immutable graph snapshot.
///
/// The engine owns an `Arc<SpatialGraph>` snapshot (shared, read-only — see
/// the `Send + Sync` assertions in `sac-graph`), a [`KCoreCache`] that
/// memoises the core decomposition and per-`k` connected-core indexes, and a
/// planner that turns each request's [`QueryBudget`] into one of the paper's
/// algorithms.  All methods take `&self`; one engine serves any number of
/// threads concurrently.
///
/// ```
/// use sac_engine::{QueryBudget, SacEngine, SacRequest};
///
/// let engine = SacEngine::new(sac_core::fixtures::figure3_graph());
/// let request = SacRequest::new(0, sac_core::fixtures::figure3::Q, 2)
///     .with_budget(QueryBudget::exact());
/// let response = engine.execute(&request);
/// let community = response.community().expect("Q has a 2-core community");
/// assert!(community.contains(sac_core::fixtures::figure3::Q));
/// ```
#[derive(Debug)]
pub struct SacEngine {
    graph: Arc<SpatialGraph>,
    cache: KCoreCache,
    config: EngineConfig,
    queries: AtomicU64,
    infeasible_fast_path: AtomicU64,
    errors: AtomicU64,
}

impl SacEngine {
    /// An engine owning `graph` as its immutable snapshot.
    pub fn new(graph: SpatialGraph) -> Self {
        SacEngine::from_snapshot(Arc::new(graph))
    }

    /// An engine over an existing shared snapshot.
    pub fn from_snapshot(graph: Arc<SpatialGraph>) -> Self {
        SacEngine::with_config(graph, EngineConfig::default())
    }

    /// An engine with custom tunables.
    pub fn with_config(graph: Arc<SpatialGraph>, config: EngineConfig) -> Self {
        SacEngine {
            graph,
            cache: KCoreCache::new(),
            config,
            queries: AtomicU64::new(0),
            infeasible_fast_path: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// The shared snapshot this engine serves.
    pub fn snapshot(&self) -> Arc<SpatialGraph> {
        Arc::clone(&self.graph)
    }

    /// Pre-computes the decomposition and the component indexes for `ks`, so
    /// the first real queries don't pay the build cost.
    pub fn warm(&self, ks: &[u32]) {
        let graph = self.graph.graph();
        self.cache.decomposition(graph);
        for &k in ks {
            self.cache.components(graph, k);
        }
    }

    /// The memoised core decomposition of the snapshot.
    pub fn decomposition(&self) -> Arc<CoreDecomposition> {
        self.cache.decomposition(self.graph.graph())
    }

    /// The memoised connected-component index of the k-core for `k`.
    pub fn core_components(&self, k: u32) -> Arc<KCoreComponents> {
        self.cache.components(self.graph.graph(), k)
    }

    /// Cache-served structural query: the sorted members of the connected
    /// k-core containing `q` (no spatial optimisation), or `None` when `q` is
    /// in no k-core.
    pub fn connected_core(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        self.core_components(k).core_of(q).map(<[VertexId]>::to_vec)
    }

    /// The plan the engine would dispatch for `request` (exposed for tests,
    /// tooling and the equivalence suite).
    pub fn plan_for(&self, request: &SacRequest) -> Result<Plan, SacError> {
        request.budget.validate()?;
        let n = self.graph.num_vertices();
        if request.q as usize >= n {
            return Err(SacError::QueryVertexOutOfRange(request.q));
        }
        let ctx = self.plan_context(request);
        Ok(plan_query(
            &request.budget,
            &ctx,
            self.config.small_exact_threshold,
            self.config.exact_eps_a,
        ))
    }

    /// Structural facts for the planner.  The cache feasibility rule is only
    /// sound for `k >= 2`: for `k <= 1` the algorithms have trivial answers
    /// (single vertex / nearest neighbour) that exist even outside any k-core,
    /// so those queries always go to the algorithm.
    fn plan_context(&self, request: &SacRequest) -> PlanContext {
        if request.k < 2 {
            return PlanContext {
                core_size: None,
                infeasible: false,
            };
        }
        // O(1) feasibility from the decomposition first: infeasible queries
        // (including arbitrary wire-supplied k) never build a per-k index.
        let decomposition = self.decomposition();
        if decomposition.core_number(request.q) < request.k {
            return PlanContext {
                core_size: None,
                infeasible: true,
            };
        }
        let components = self.core_components(request.k);
        PlanContext {
            core_size: components.core_size_of(request.q),
            infeasible: false,
        }
    }

    /// Answers one request: plans, dispatches, and annotates the response with
    /// timing and cache metadata.
    pub fn execute(&self, request: &SacRequest) -> SacResponse {
        let start = Instant::now();
        let cache_hit = self.cache.is_warm();
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (plan, outcome) = match self.plan_for(request) {
            Err(e) => (Plan::Rejected, Err(e)),
            Ok(plan) => {
                let outcome = self.dispatch(request, plan);
                (plan, outcome)
            }
        };
        match &outcome {
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) if plan == Plan::Infeasible => {
                self.infeasible_fast_path.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
        }
        SacResponse {
            id: request.id,
            q: request.q,
            k: request.k,
            plan,
            outcome,
            micros: start.elapsed().as_micros() as u64,
            cache_hit,
        }
    }

    /// Runs the planned algorithm.  Every arm calls the same `sac_core` entry
    /// point a direct caller would use, so engine answers are bit-identical to
    /// library answers (the equivalence suite asserts this).
    fn dispatch(&self, request: &SacRequest, plan: Plan) -> Result<Option<Community>, SacError> {
        let (g, q, k) = (&*self.graph, request.q, request.k);
        match plan {
            Plan::Infeasible => Ok(None),
            Plan::Rejected => unreachable!("rejected plans never reach dispatch"),
            Plan::ExactPlus { eps_a } => exact_plus(g, q, k, eps_a),
            Plan::AppAcc { eps_a } => app_acc(g, q, k, eps_a),
            Plan::AppInc => Ok(app_inc(g, q, k)?.map(|outcome| outcome.community)),
            Plan::ThetaSac { theta } => theta_sac(g, q, k, theta),
            Plan::AppFast { eps_f } => {
                // The one cache-accelerated arm: share the memoised
                // decomposition instead of re-deriving the k-ĉore per query.
                let session = BatchSacSearch::with_shared_decomposition(g, self.decomposition());
                Ok(session
                    .app_fast(q, k, eps_f)?
                    .map(|outcome| outcome.community))
            }
        }
    }

    /// Fans `requests` across `threads` workers sharing this engine and
    /// returns the responses in request order.
    ///
    /// Work is distributed by an atomic cursor (cheap dynamic load balancing:
    /// slow exact queries don't stall a whole stripe of the batch).
    pub fn execute_batch(&self, requests: &[SacRequest], threads: usize) -> Vec<SacResponse> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = threads.clamp(1, n);
        if threads == 1 {
            return requests.iter().map(|r| self.execute(r)).collect();
        }
        // Warm the decomposition once up front so concurrent first-queries
        // don't all compute it.
        self.cache.decomposition(self.graph.graph());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<SacResponse>> = (0..n).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let response = self.execute(&requests[i]);
                    slots[i].set(response).expect("each slot is written once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all slots filled"))
            .collect()
    }

    /// Current serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            infeasible_fast_path: self.infeasible_fast_path.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }
}

// One engine is shared by reference across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SacEngine>();
    assert_send_sync::<SacRequest>();
    assert_send_sync::<SacResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::LatencyTier;
    use sac_core::fixtures::{figure3, figure3_graph};

    fn engine() -> SacEngine {
        SacEngine::new(figure3_graph())
    }

    #[test]
    fn exact_budget_returns_paper_answer() {
        let engine = engine();
        let response =
            engine.execute(&SacRequest::new(1, figure3::Q, 2).with_budget(QueryBudget::exact()));
        assert_eq!(response.id, 1);
        assert!(matches!(response.plan, Plan::ExactPlus { .. }));
        let community = response.community().expect("feasible");
        let direct = exact_plus(&figure3_graph(), figure3::Q, 2, EXACT_PLUS_EPS_A)
            .unwrap()
            .unwrap();
        assert_eq!(community.members(), direct.members());
        assert!(!response.cache_hit, "first query sees a cold cache");
    }

    #[test]
    fn infeasible_queries_short_circuit_through_cache() {
        let engine = engine();
        // Vertex I (pendant) has core number 1: no 2-core community.
        let response = engine.execute(&SacRequest::new(2, figure3::I, 2));
        assert_eq!(response.plan, Plan::Infeasible);
        assert_eq!(response.outcome, Ok(None));
        let stats = engine.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.infeasible_fast_path, 1);
    }

    #[test]
    fn absurd_k_values_never_build_or_cache_indexes() {
        let engine = engine();
        for k in [100u32, 1_000_000, u32::MAX] {
            let response = engine.execute(&SacRequest::new(9, figure3::Q, k));
            assert_eq!(response.plan, Plan::Infeasible);
            assert_eq!(response.outcome, Ok(None));
        }
        // Feasibility came from the O(1) decomposition lookup: no per-k
        // component index was built for any of the absurd k values.
        let stats = engine.stats();
        assert_eq!(stats.cache.components.misses, 0);
        assert_eq!(stats.infeasible_fast_path, 3);
        // The public structural query is also safe against huge k.
        assert!(engine.connected_core(figure3::Q, 10_000).is_none());
        assert_eq!(engine.stats().cache.components.misses, 0);
    }

    #[test]
    fn trivial_k_queries_bypass_the_feasibility_fast_path() {
        let engine = engine();
        // k = 0 has a trivial single-vertex answer even for the pendant vertex.
        let response = engine.execute(&SacRequest::new(3, figure3::I, 0));
        let community = response.community().expect("k=0 is always feasible");
        assert_eq!(community.members(), &[figure3::I]);
    }

    #[test]
    fn second_query_hits_the_cache() {
        let engine = engine();
        let req = SacRequest::new(4, figure3::Q, 2);
        let first = engine.execute(&req);
        let second = engine.execute(&req);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(
            first.community().unwrap().members(),
            second.community().unwrap().members()
        );
    }

    #[test]
    fn errors_are_reported_per_query() {
        let engine = engine();
        let out_of_range = engine.execute(&SacRequest::new(5, 999, 2));
        assert_eq!(out_of_range.plan, Plan::Rejected);
        assert_eq!(
            out_of_range.outcome,
            Err(SacError::QueryVertexOutOfRange(999))
        );
        let bad_budget = engine.execute(
            &SacRequest::new(6, figure3::Q, 2).with_budget(QueryBudget::within_ratio(0.2)),
        );
        assert_eq!(bad_budget.plan, Plan::Rejected);
        assert!(bad_budget.outcome.is_err());
        assert_eq!(engine.stats().errors, 2);
    }

    #[test]
    fn batch_execution_preserves_order_and_results() {
        let engine = engine();
        let requests: Vec<SacRequest> = (0..40)
            .map(|i| {
                let q = [figure3::Q, figure3::A, figure3::F, figure3::I][i % 4];
                SacRequest::new(i as u64, q, 2)
            })
            .collect();
        let batch = engine.execute_batch(&requests, 4);
        assert_eq!(batch.len(), 40);
        for (i, response) in batch.iter().enumerate() {
            assert_eq!(response.id, i as u64);
            let single = engine.execute(&requests[i]);
            match (response.community(), single.community()) {
                (Some(a), Some(b)) => assert_eq!(a.members(), b.members()),
                (None, None) => {}
                _ => panic!("batch/single feasibility mismatch at {i}"),
            }
        }
    }

    #[test]
    fn structural_core_queries_come_from_the_cache() {
        let engine = engine();
        let core = engine
            .connected_core(figure3::Q, 2)
            .expect("Q is in the 2-core");
        assert!(core.contains(&figure3::Q));
        assert!(engine.connected_core(figure3::I, 2).is_none());
        // Small fixture: the planner upgrades every feasible plan to Exact+.
        let plan = engine
            .plan_for(&SacRequest::new(7, figure3::Q, 2).with_budget(QueryBudget::interactive()))
            .unwrap();
        assert!(matches!(plan, Plan::ExactPlus { .. }));
    }

    #[test]
    fn theta_budgets_dispatch_theta_sac() {
        let engine = engine();
        let request = SacRequest::new(8, figure3::Q, 2).with_budget(
            QueryBudget::balanced()
                .with_theta(10.0)
                .with_tier(LatencyTier::Batch),
        );
        let response = engine.execute(&request);
        assert_eq!(response.plan, Plan::ThetaSac { theta: 10.0 });
        let direct = theta_sac(&figure3_graph(), figure3::Q, 2, 10.0)
            .unwrap()
            .unwrap();
        assert_eq!(response.community().unwrap().members(), direct.members());
    }
}
