//! # sac-engine
//!
//! A concurrent, cache-aware query-serving engine for spatial-aware community
//! (SAC) search — the serving layer on top of the `sac-core` algorithms of
//!
//! > Fang, Cheng, Li, Luo, Hu. *Effective Community Search over Large Spatial
//! > Graphs.* PVLDB 10(6), 2017.
//!
//! The library crates answer one query at a time from scratch; a production
//! deployment answers millions over one slowly-changing graph.  This crate
//! adds the engine-level machinery that gap requires:
//!
//! * **Epoch-published immutable snapshots** — the engine serves an
//!   `Arc<SpatialGraph>` behind a hand-rolled atomic epoch pointer
//!   ([`EpochCell`], an `RwLock<Arc>` pointer swap — no `arc-swap` dependency); all
//!   query state is read-only and every entry point takes `&self`, so one
//!   engine serves any number of threads (see [`SacEngine`]).  The live-update
//!   layer (`sac-live`) publishes new epochs via [`SacEngine::publish`] while
//!   in-flight queries finish on the snapshot they started with, and the
//!   per-`k` index cache is *selectively* invalidated: only the `k` entries a
//!   delta actually touched are dropped, the rest carry over.
//! * **A k-core index cache** — the `O(m)` core decomposition and the per-`k`
//!   connected-core labellings are memoised per snapshot ([`KCoreCache`]),
//!   turning the structural phase of repeated queries into cache hits.
//! * **A budget-driven planner** — each request carries a [`QueryBudget`]
//!   (worst acceptable approximation ratio + latency tier); the planner picks
//!   the cheapest of `exact_plus` / `app_acc` / `app_fast` / `app_inc` /
//!   `theta_sac` whose proven ratio fits, with a workload-aware upgrade to
//!   exact search when the cached candidate set is tiny ([`Plan`]).
//! * **A concurrent executor** — [`SacEngine::execute_batch`] fans a batch of
//!   [`SacRequest`]s across a thread pool with dynamic load balancing and
//!   returns structured [`SacResponse`]s carrying plan, timing and cache
//!   metadata.
//! * **A serving binary** — `sac-serve` speaks line-delimited JSON over
//!   stdin/stdout (see the crate README section in the repository root).
//!
//! ## Example
//!
//! ```
//! use sac_engine::{QueryBudget, SacEngine, SacRequest};
//!
//! let engine = SacEngine::new(sac_core::fixtures::figure3_graph());
//! let requests: Vec<SacRequest> = (0..8)
//!     .map(|i| SacRequest::new(i, sac_core::fixtures::figure3::Q, 2)
//!         .with_budget(QueryBudget::balanced()))
//!     .collect();
//! let responses = engine.execute_batch(&requests, 4);
//! assert!(responses.iter().all(|r| r.community().is_some()));
//! // After the first query the k-core indexes are served from cache.
//! assert!(engine.stats().cache.components.hits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod epoch;
pub mod json;
mod planner;

pub use cache::{CacheLayerStats, CacheStats, KCoreCache, KCoreComponents};
pub use engine::{EngineConfig, EngineStats, PublishReport, SacEngine, SacRequest, SacResponse};
pub use epoch::EpochCell;
pub use planner::{plan_query, LatencyTier, Plan, PlanContext, QueryBudget};
