//! # sac-engine
//!
//! A concurrent, cache-aware query-serving engine for spatial-aware community
//! (SAC) search — the serving layer on top of the `sac-core` algorithms of
//!
//! > Fang, Cheng, Li, Luo, Hu. *Effective Community Search over Large Spatial
//! > Graphs.* PVLDB 10(6), 2017.
//!
//! The library crates answer one query at a time from scratch; a production
//! deployment answers millions over one slowly-changing graph.  This crate
//! adds the engine-level machinery that gap requires:
//!
//! * **Epoch-published immutable snapshots** — the engine serves an
//!   `Arc<SpatialGraph>` behind a hand-rolled atomic epoch pointer
//!   ([`EpochCell`], an `RwLock<Arc>` pointer swap — no `arc-swap` dependency); all
//!   query state is read-only and every entry point takes `&self`, so one
//!   engine serves any number of threads (see [`SacEngine`]).  The live-update
//!   layer (`sac-live`) publishes new epochs via [`SacEngine::publish`] while
//!   in-flight queries finish on the snapshot they started with, and the
//!   per-`k` index cache is *selectively* invalidated: only the `k` entries a
//!   delta actually touched are dropped, the rest carry over.
//! * **A k-core index cache** — the `O(m)` core decomposition and the per-`k`
//!   connected-core labellings are memoised per snapshot ([`KCoreCache`]),
//!   turning the structural phase of repeated queries into cache hits.
//! * **A profile-driven planner** — each request carries a [`QueryBudget`]
//!   (worst acceptable approximation ratio + latency tier); the [`Planner`]
//!   selects over the declared [`AlgorithmProfile`](sac_core::AlgorithmProfile)s
//!   of an [`AlgorithmRegistry`](sac_core::AlgorithmRegistry) — proven ratio
//!   band, cost class, θ-support — with a workload-aware upgrade to exact
//!   search when the cached candidate set is tiny ([`Plan`]).  Registering an
//!   algorithm is all it takes to serve it; the engine has no per-algorithm
//!   dispatch arms.
//! * **A validating request API** — [`SacRequest::builder`] rejects invalid
//!   budgets with typed errors at construction time, and every
//!   [`SacResponse`] carries per-request trace metadata ([`QueryTrace`]:
//!   epoch, phase timings, cache state, guaranteed ratio).
//! * **A concurrent executor** — [`SacEngine::execute_batch`] fans a batch of
//!   [`SacRequest`]s across a thread pool with dynamic load balancing.
//! * **Transports** — the `sac-proto` crate defines the typed wire protocol;
//!   the `sac-serve` (LDJSON) and `sac-http` (HTTP/1.1) binaries in
//!   `sac-live` are thin shells over it (see the repository README).
//!
//! ## Example
//!
//! ```
//! use sac_engine::{QueryBudget, SacEngine, SacRequest};
//!
//! let engine = SacEngine::new(sac_core::fixtures::figure3_graph());
//! let requests: Vec<SacRequest> = (0..8)
//!     .map(|i| SacRequest::new(i, sac_core::fixtures::figure3::Q, 2)
//!         .with_budget(QueryBudget::balanced()))
//!     .collect();
//! let responses = engine.execute_batch(&requests, 4);
//! assert!(responses.iter().all(|r| r.community().is_some()));
//! // After the first query the k-core indexes are served from cache.
//! assert!(engine.stats().cache.components.hits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod epoch;
mod planner;

pub use cache::{CacheLayerStats, CacheStats, KCoreCache, KCoreComponents};
pub use engine::{
    EngineConfig, EngineStats, LatencyStats, PublishReport, QueryTrace, SacEngine, SacRequest,
    SacRequestBuilder, SacResponse, ShardStats,
};
pub use epoch::EpochCell;
pub use planner::{LatencyTier, Plan, PlanContext, PlannedQuery, Planner, QueryBudget};
// Observability primitives, re-exported so the serving layers above see one
// coherent API (the engine owns the registry the whole stack records into).
pub use sac_obs::{
    EventBatch, EventLog, EventRecord, LatencySummary, MetricsRegistry, SlowQueryLog,
    SlowQueryRecord, Span as ObsSpan, TraceNode, WindowedHistogram, WindowedSnapshot,
};
