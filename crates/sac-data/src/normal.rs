//! Normal-distribution sampling via the Box–Muller transform.
//!
//! The `rand` crate's default feature set only ships uniform distributions; the
//! location model of the paper needs Gaussian offsets, so we implement the
//! polar-rejection Box–Muller method here (two uniforms per pair of normals).

use rand::Rng;

/// A sampler for the normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone)]
pub struct NormalSampler {
    mean: f64,
    std_dev: f64,
    /// Cached second variate of the most recent Box–Muller pair.
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics when `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite(),
            "invalid normal parameters: mean={mean}, std_dev={std_dev}"
        );
        NormalSampler {
            mean,
            std_dev,
            spare: None,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        // Marsaglia polar method.
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return self.mean + self.std_dev * (u * factor);
            }
        }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_statistics_match_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = NormalSampler::new(0.09, 0.16);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.09).abs() < 0.005, "sample mean {mean}");
        assert!(
            (var.sqrt() - 0.16).abs() < 0.005,
            "sample std dev {}",
            var.sqrt()
        );
    }

    #[test]
    fn zero_std_dev_returns_the_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = NormalSampler::new(2.5, 0.0);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&mut rng), 2.5);
        }
        assert_eq!(sampler.mean(), 2.5);
        assert_eq!(sampler.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid normal parameters")]
    fn negative_std_dev_panics() {
        let _ = NormalSampler::new(0.0, -1.0);
    }
}
