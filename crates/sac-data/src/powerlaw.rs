//! Power-law (preferential-attachment) graph generation.
//!
//! The paper generates its synthetic graphs with GTGraph using default parameters,
//! which produce power-law degree distributions typical of social networks.  This
//! module provides an equivalent generator: a Barabási–Albert-style preferential
//! attachment process with a configurable number of edges per new vertex, so that
//! the resulting average degree matches the target (e.g. `d̂ = 20` for Syn1/Syn2,
//! or the Table 4 averages for the real-dataset surrogates).

use rand::Rng;
use sac_graph::{Graph, GraphBuilder, VertexId};

/// Configurable preferential-attachment generator.
#[derive(Debug, Clone)]
pub struct PowerLawGenerator {
    vertices: usize,
    edges_per_vertex: usize,
}

impl PowerLawGenerator {
    /// A generator for `vertices` vertices where each newly arriving vertex attaches
    /// to `edges_per_vertex` existing vertices chosen preferentially by degree.
    ///
    /// The resulting average degree is roughly `2 · edges_per_vertex`.
    ///
    /// # Panics
    ///
    /// Panics when `vertices` is zero or `edges_per_vertex` is zero.
    pub fn new(vertices: usize, edges_per_vertex: usize) -> Self {
        assert!(vertices > 0, "need at least one vertex");
        assert!(edges_per_vertex > 0, "need at least one edge per vertex");
        PowerLawGenerator {
            vertices,
            edges_per_vertex,
        }
    }

    /// A generator sized to hit a target **average degree** (`d̂ = 2m/n`), which is
    /// how Table 4 describes the datasets.
    pub fn with_average_degree(vertices: usize, average_degree: f64) -> Self {
        let per_vertex = ((average_degree / 2.0).round() as usize).max(1);
        PowerLawGenerator::new(vertices, per_vertex)
    }

    /// Number of vertices this generator will produce.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Number of attachment edges per arriving vertex.
    pub fn edges_per_vertex(&self) -> usize {
        self.edges_per_vertex
    }

    /// Generates the graph.
    ///
    /// Preferential attachment is implemented with the standard "repeated endpoints"
    /// trick: a vertex is chosen with probability proportional to its degree by
    /// sampling uniformly from the list of all edge endpoints seen so far.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let n = self.vertices;
        let m0 = (self.edges_per_vertex + 1).min(n);
        let mut builder = GraphBuilder::with_capacity(n * self.edges_per_vertex);
        builder.ensure_vertex(n as VertexId - 1);

        // Endpoint multiset for degree-proportional sampling.
        let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * self.edges_per_vertex);

        // Seed clique over the first m0 vertices so early vertices have degree > 0.
        for u in 0..m0 as VertexId {
            for v in (u + 1)..m0 as VertexId {
                builder.add_edge(u, v);
                endpoints.push(u);
                endpoints.push(v);
            }
        }

        for v in m0 as VertexId..n as VertexId {
            let mut targets: Vec<VertexId> = Vec::with_capacity(self.edges_per_vertex);
            let mut guard = 0usize;
            while targets.len() < self.edges_per_vertex && guard < 50 * self.edges_per_vertex {
                guard += 1;
                let candidate = if endpoints.is_empty() {
                    rng.gen_range(0..v)
                } else {
                    endpoints[rng.gen_range(0..endpoints.len())]
                };
                if candidate != v && !targets.contains(&candidate) {
                    targets.push(candidate);
                }
            }
            for &t in &targets {
                builder.add_edge(v, t);
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sac_graph::degree_histogram;

    #[test]
    fn produces_the_requested_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let gen = PowerLawGenerator::new(500, 4);
        let g = gen.generate(&mut rng);
        assert_eq!(g.num_vertices(), 500);
        // m ≈ n · edges_per_vertex (minus the seed-clique adjustment).
        assert!(g.num_edges() > 450 * 4 / 2);
        assert!((g.average_degree() - 8.0).abs() < 2.0);
    }

    #[test]
    fn average_degree_targeting() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = PowerLawGenerator::with_average_degree(800, 20.0);
        assert_eq!(gen.edges_per_vertex(), 10);
        assert_eq!(gen.vertices(), 800);
        let g = gen.generate(&mut rng);
        assert!(
            (g.average_degree() - 20.0).abs() < 3.0,
            "average degree {}",
            g.average_degree()
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = PowerLawGenerator::new(2000, 3).generate(&mut rng);
        let hist = degree_histogram(&g);
        let max_degree = hist.len() - 1;
        // A power-law graph has hubs far above the average degree...
        assert!(max_degree > 30, "max degree {max_degree}");
        // ... while most vertices stay near the minimum degree.
        let low_degree_vertices: usize = hist.iter().take(8).sum();
        assert!(low_degree_vertices > g.num_vertices() / 2);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let gen = PowerLawGenerator::new(300, 5);
        let g1 = gen.generate(&mut StdRng::seed_from_u64(9));
        let g2 = gen.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.neighbors(17), g2.neighbors(17));
    }

    #[test]
    fn tiny_graphs_are_handled() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = PowerLawGenerator::new(3, 5).generate(&mut rng);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // the seed clique is capped at n
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn zero_vertices_panics() {
        let _ = PowerLawGenerator::new(0, 2);
    }
}
