//! Workload sampling: the n%-scalability subgraphs and query-vertex selection.

use rand::Rng;
use sac_geom::Point;
use sac_graph::{core_decomposition, Graph, GraphBuilder, SpatialGraph, VertexId};

/// Samples `fraction` of the vertices uniformly at random (without replacement).
///
/// Used by the scalability experiment (Figure 12(k)–(o)), which evaluates the
/// algorithms on induced subgraphs of 20%–100% of each dataset's vertices.
pub fn sample_vertices<R: Rng + ?Sized>(
    g: &SpatialGraph,
    fraction: f64,
    rng: &mut R,
) -> Vec<VertexId> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let n = g.num_vertices();
    let target = ((n as f64) * fraction).round() as usize;
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    // Partial Fisher–Yates: shuffle only the prefix we keep.
    for i in 0..target.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    let mut kept: Vec<VertexId> = ids.into_iter().take(target).collect();
    kept.sort_unstable();
    kept
}

/// Builds the spatial subgraph induced by `vertices`, relabelling vertex ids to
/// `0..vertices.len()` (in the sorted order of the original ids).
///
/// Returns the subgraph together with the mapping from new ids back to the original
/// ids.
pub fn induced_subgraph_by_vertices(
    g: &SpatialGraph,
    vertices: &[VertexId],
) -> (SpatialGraph, Vec<VertexId>) {
    let mut sorted: Vec<VertexId> = vertices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert!(
        !sorted.is_empty(),
        "induced subgraph needs at least one vertex"
    );

    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (idx, &v) in sorted.iter().enumerate() {
        new_id[v as usize] = idx as u32;
    }
    let mut builder = GraphBuilder::new();
    builder.ensure_vertex(sorted.len() as u32 - 1);
    for &v in &sorted {
        for &u in g.neighbors(v) {
            if u > v && new_id[u as usize] != u32::MAX {
                builder.add_edge(new_id[v as usize], new_id[u as usize]);
            }
        }
    }
    let positions: Vec<Point> = sorted.iter().map(|&v| g.position(v)).collect();
    let sub = SpatialGraph::new(builder.build(), positions).expect("induced subgraph is valid");
    (sub, sorted)
}

/// Selects up to `count` query vertices whose core number is at least `min_core`
/// (the paper uses 200 queries with core number ≥ 4).
///
/// Returns fewer vertices when the graph does not contain enough eligible ones.
pub fn select_query_vertices<R: Rng + ?Sized>(
    graph: &Graph,
    count: usize,
    min_core: u32,
    rng: &mut R,
) -> Vec<VertexId> {
    let decomposition = core_decomposition(graph);
    let mut eligible: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| decomposition.core_number(v) >= min_core)
        .collect();
    // Fisher–Yates shuffle, then take the prefix.
    for i in (1..eligible.len()).rev() {
        let j = rng.gen_range(0..=i);
        eligible.swap(i, j);
    }
    eligible.truncate(count);
    eligible.sort_unstable();
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_surrogate() -> SpatialGraph {
        DatasetSpec::scaled(DatasetKind::Syn1, 0.02).generate()
    }

    #[test]
    fn sampling_fraction_is_respected() {
        let g = small_surrogate();
        let mut rng = StdRng::seed_from_u64(4);
        for fraction in [0.2, 0.5, 1.0] {
            let sample = sample_vertices(&g, fraction, &mut rng);
            let expected = (g.num_vertices() as f64 * fraction).round() as usize;
            assert_eq!(sample.len(), expected);
            // No duplicates.
            let mut dedup = sample.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), sample.len());
        }
        assert!(sample_vertices(&g, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn induced_subgraph_preserves_edges_and_positions() {
        let g = small_surrogate();
        let mut rng = StdRng::seed_from_u64(5);
        let sample = sample_vertices(&g, 0.5, &mut rng);
        let (sub, mapping) = induced_subgraph_by_vertices(&g, &sample);
        assert_eq!(sub.num_vertices(), sample.len());
        assert_eq!(mapping.len(), sample.len());
        // Every subgraph edge exists in the original graph between the mapped ids.
        for (u, v) in sub.graph().edges().take(500) {
            assert!(g.graph().has_edge(mapping[u as usize], mapping[v as usize]));
        }
        // Positions carried over.
        for (new, &orig) in mapping.iter().enumerate().take(100) {
            assert_eq!(sub.position(new as VertexId), g.position(orig));
        }
    }

    #[test]
    fn query_vertices_have_high_core_numbers() {
        let g = small_surrogate();
        let mut rng = StdRng::seed_from_u64(6);
        let queries = select_query_vertices(g.graph(), 50, 4, &mut rng);
        assert!(!queries.is_empty());
        assert!(queries.len() <= 50);
        let decomp = core_decomposition(g.graph());
        assert!(queries.iter().all(|&q| decomp.core_number(q) >= 4));
        // Requesting an impossible core number returns an empty list.
        assert!(select_query_vertices(g.graph(), 10, 10_000, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn invalid_fraction_panics() {
        let g = small_surrogate();
        let _ = sample_vertices(&g, 1.5, &mut StdRng::seed_from_u64(1));
    }
}
