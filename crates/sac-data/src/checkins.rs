//! Synthetic check-in streams for the dynamic-location experiment (Section 5.2.3).
//!
//! Brightkite-style geo-social services record timestamped *check-ins*: the user's
//! position at a moment in time.  The paper replays such a stream, updating each
//! user's location to her latest check-in, and re-runs SAC search for a set of
//! highly mobile query users to measure how their communities drift (Figure 13).
//!
//! This module synthesises an equivalent stream: every user has a *home region*
//! and performs a bounded random walk around it, with occasional long-distance
//! relocations (travel), which is what produces the community churn the experiment
//! measures.

use crate::NormalSampler;
use rand::Rng;
use sac_geom::Point;
use sac_graph::{SpatialGraph, VertexId};

/// One check-in record: a user reporting a position at a timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkin {
    /// The user (vertex) checking in.
    pub user: VertexId,
    /// Timestamp in days since the start of the stream.
    pub time_days: f64,
    /// The reported position.
    pub position: Point,
}

/// A chronologically sorted check-in stream.
#[derive(Debug, Clone, Default)]
pub struct CheckinStream {
    records: Vec<Checkin>,
}

impl CheckinStream {
    /// The records, ordered by ascending timestamp.
    pub fn records(&self) -> &[Checkin] {
        &self.records
    }

    /// Number of check-ins in the stream.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total time span covered by the stream, in days.
    pub fn span_days(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.time_days - first.time_days,
            _ => 0.0,
        }
    }

    /// Check-ins of a single user, in chronological order.
    pub fn of_user(&self, user: VertexId) -> Vec<Checkin> {
        self.records
            .iter()
            .copied()
            .filter(|c| c.user == user)
            .collect()
    }

    /// Total travel distance of a user: the sum of distances between her
    /// consecutive check-ins.  The paper uses this to select its 100 most mobile
    /// query users.
    pub fn travel_distance(&self, user: VertexId) -> f64 {
        let mine = self.of_user(user);
        mine.windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }

    /// The users with the largest total travel distance, most mobile first.
    pub fn most_mobile_users(&self, count: usize) -> Vec<VertexId> {
        use std::collections::HashMap;
        let mut travelled: HashMap<VertexId, (Point, f64)> = HashMap::new();
        for c in &self.records {
            travelled
                .entry(c.user)
                .and_modify(|(last, total)| {
                    *total += last.distance(c.position);
                    *last = c.position;
                })
                .or_insert((c.position, 0.0));
        }
        let mut ranked: Vec<(VertexId, f64)> =
            travelled.into_iter().map(|(u, (_, d))| (u, d)).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.into_iter().take(count).map(|(u, _)| u).collect()
    }
}

/// Generator of synthetic check-in streams.
#[derive(Debug, Clone)]
pub struct CheckinGenerator {
    /// Number of check-ins per user (on average).
    pub checkins_per_user: usize,
    /// Length of the simulated period in days.
    pub duration_days: f64,
    /// Standard deviation of the local random walk around the home position.
    pub local_mobility: f64,
    /// Probability that a check-in is a long-distance relocation rather than a
    /// local move.
    pub travel_probability: f64,
}

impl Default for CheckinGenerator {
    fn default() -> Self {
        CheckinGenerator {
            checkins_per_user: 20,
            duration_days: 30.0,
            local_mobility: 0.02,
            travel_probability: 0.08,
        }
    }
}

impl CheckinGenerator {
    /// A generator with the default mobility model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a stream for every user of `graph`, starting from the graph's
    /// static positions (which play the role of the users' home locations).
    pub fn generate<R: Rng + ?Sized>(&self, graph: &SpatialGraph, rng: &mut R) -> CheckinStream {
        let mut records = Vec::with_capacity(graph.num_vertices() * self.checkins_per_user);
        let mut local = NormalSampler::new(0.0, self.local_mobility);
        for user in 0..graph.num_vertices() as VertexId {
            let home = graph.position(user);
            let mut current = home;
            // Jitter the per-user check-in count ±50% so activity levels differ.
            let count = ((self.checkins_per_user as f64) * rng.gen_range(0.5..1.5))
                .round()
                .max(1.0) as usize;
            for _ in 0..count {
                let time_days = rng.gen_range(0.0..self.duration_days);
                if rng.gen_bool(self.travel_probability) {
                    // Travel: relocate to a fresh uniformly random position.
                    current = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
                } else {
                    // Local move around the current position.
                    current =
                        Point::new(current.x + local.sample(rng), current.y + local.sample(rng))
                            .clamp(0.0, 1.0);
                }
                records.push(Checkin {
                    user,
                    time_days,
                    position: current,
                });
            }
        }
        records.sort_by(|a, b| {
            a.time_days
                .partial_cmp(&b.time_days)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        CheckinStream { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream() -> (SpatialGraph, CheckinStream) {
        let g = DatasetSpec::scaled(DatasetKind::Brightkite, 0.01).generate();
        let s = CheckinGenerator::new().generate(&g, &mut StdRng::seed_from_u64(13));
        (g, s)
    }

    #[test]
    fn stream_is_sorted_and_covers_all_users() {
        let (g, s) = stream();
        assert!(!s.is_empty());
        assert!(s
            .records()
            .windows(2)
            .all(|w| w[0].time_days <= w[1].time_days));
        assert!(s.span_days() <= 30.0);
        // Every user appears at least once.
        let mut seen = vec![false; g.num_vertices()];
        for c in s.records() {
            seen[c.user as usize] = true;
            assert!((0.0..=1.0).contains(&c.position.x));
            assert!((0.0..=1.0).contains(&c.position.y));
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn per_user_queries() {
        let (_, s) = stream();
        let user = s.records()[0].user;
        let mine = s.of_user(user);
        assert!(!mine.is_empty());
        assert!(mine.windows(2).all(|w| w[0].time_days <= w[1].time_days));
        assert!(s.travel_distance(user) >= 0.0);
    }

    #[test]
    fn most_mobile_users_are_ranked_by_travel() {
        let (_, s) = stream();
        let top = s.most_mobile_users(10);
        assert_eq!(top.len(), 10);
        let d0 = s.travel_distance(top[0]);
        let d9 = s.travel_distance(top[9]);
        assert!(d0 >= d9);
        // The most mobile user travels a non-trivial distance thanks to the travel
        // probability in the mobility model.
        assert!(d0 > 0.1);
    }

    #[test]
    fn empty_stream_behaviour() {
        let s = CheckinStream::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.span_days(), 0.0);
        assert!(s.most_mobile_users(5).is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = DatasetSpec::scaled(DatasetKind::Brightkite, 0.01).generate();
        let a = CheckinGenerator::new().generate(&g, &mut StdRng::seed_from_u64(2));
        let b = CheckinGenerator::new().generate(&g, &mut StdRng::seed_from_u64(2));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[10], b.records()[10]);
    }
}
