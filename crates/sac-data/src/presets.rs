//! Dataset presets mirroring Table 4 of the paper.
//!
//! | Name | Vertices | Edges | d̂ |
//! |------|----------|-------|-----|
//! | Brightkite | 51,406 | 197,167 | 7.67 |
//! | Gowalla | 107,092 | 456,830 | 8.53 |
//! | Flickr | 214,698 | 2,096,306 | 19.5 |
//! | Foursquare | 2,127,093 | 8,640,352 | 8.12 |
//! | Syn1 | 30,000 | 300,000 | 20 |
//! | Syn2 | 400,000 | 4,000,000 | 20 |
//!
//! The real datasets are replaced by synthetic surrogates with the same size and
//! degree characteristics (see DESIGN.md §4 for the substitution rationale); a
//! `scale` factor shrinks every preset proportionally so the full experiment suite
//! can run quickly on a laptop while preserving the relative ordering between
//! datasets.

use crate::{PowerLawGenerator, SpatialPlacer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sac_graph::SpatialGraph;

/// The datasets of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Brightkite-like surrogate (51k vertices, d̂ ≈ 7.7).
    Brightkite,
    /// Gowalla-like surrogate (107k vertices, d̂ ≈ 8.5).
    Gowalla,
    /// Flickr-like surrogate (215k vertices, d̂ ≈ 19.5).
    Flickr,
    /// Foursquare-like surrogate (2.1M vertices, d̂ ≈ 8.1).
    Foursquare,
    /// Synthetic graph Syn1 (30k vertices, d̂ = 20).
    Syn1,
    /// Synthetic graph Syn2 (400k vertices, d̂ = 20).
    Syn2,
}

impl DatasetKind {
    /// Human-readable dataset name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Brightkite => "Brightkite",
            DatasetKind::Gowalla => "Gowalla",
            DatasetKind::Flickr => "Flickr",
            DatasetKind::Foursquare => "Foursquare",
            DatasetKind::Syn1 => "Syn1",
            DatasetKind::Syn2 => "Syn2",
        }
    }
}

/// A generable dataset specification: target vertex count and average degree.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which Table 4 dataset this spec mirrors.
    pub kind: DatasetKind,
    /// Number of vertices to generate.
    pub vertices: usize,
    /// Target average degree `d̂`.
    pub average_degree: f64,
    /// Seed for reproducible generation.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper-sized specification of a dataset (Table 4 sizes).
    pub fn full(kind: DatasetKind) -> Self {
        let (vertices, average_degree) = match kind {
            DatasetKind::Brightkite => (51_406, 7.67),
            DatasetKind::Gowalla => (107_092, 8.53),
            DatasetKind::Flickr => (214_698, 19.5),
            DatasetKind::Foursquare => (2_127_093, 8.12),
            DatasetKind::Syn1 => (30_000, 20.0),
            DatasetKind::Syn2 => (400_000, 20.0),
        };
        DatasetSpec {
            kind,
            vertices,
            average_degree,
            seed: default_seed(kind),
        }
    }

    /// A proportionally scaled-down specification (`scale` in `(0, 1]`).
    ///
    /// The vertex count is multiplied by `scale` (with a floor of 500 vertices so
    /// that k-core structure survives); the average degree is preserved, which is
    /// what the SAC algorithms' behaviour depends on.
    pub fn scaled(kind: DatasetKind, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let full = Self::full(kind);
        DatasetSpec {
            vertices: ((full.vertices as f64 * scale) as usize).max(500),
            ..full
        }
    }

    /// Overrides the generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expected number of edges (`n · d̂ / 2`).
    pub fn expected_edges(&self) -> usize {
        (self.vertices as f64 * self.average_degree / 2.0) as usize
    }

    /// Generates the surrogate spatial graph for this specification.
    pub fn generate(&self) -> SpatialGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let graph = PowerLawGenerator::with_average_degree(self.vertices, self.average_degree)
            .generate(&mut rng);
        let positions = SpatialPlacer::new().place(&graph, &mut rng);
        SpatialGraph::new(graph, positions).expect("generated graph is well formed")
    }
}

fn default_seed(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Brightkite => 0xB219,
        DatasetKind::Gowalla => 0x60A1,
        DatasetKind::Flickr => 0xF11C,
        DatasetKind::Foursquare => 0x4547,
        DatasetKind::Syn1 => 0x5171,
        DatasetKind::Syn2 => 0x5172,
    }
}

/// All Table 4 datasets in the order the paper lists them.
pub fn presets() -> Vec<DatasetKind> {
    vec![
        DatasetKind::Brightkite,
        DatasetKind::Gowalla,
        DatasetKind::Flickr,
        DatasetKind::Foursquare,
        DatasetKind::Syn1,
        DatasetKind::Syn2,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_graph::GraphStats;

    #[test]
    fn full_specs_match_table4() {
        let bk = DatasetSpec::full(DatasetKind::Brightkite);
        assert_eq!(bk.vertices, 51_406);
        assert!((bk.average_degree - 7.67).abs() < 1e-9);
        assert_eq!(bk.kind.name(), "Brightkite");

        let syn2 = DatasetSpec::full(DatasetKind::Syn2);
        assert_eq!(syn2.vertices, 400_000);
        assert_eq!(syn2.expected_edges(), 4_000_000);
        assert_eq!(presets().len(), 6);
    }

    #[test]
    fn scaled_specs_shrink_proportionally() {
        let spec = DatasetSpec::scaled(DatasetKind::Gowalla, 0.05);
        assert_eq!(spec.vertices, (107_092.0f64 * 0.05) as usize);
        assert!((spec.average_degree - 8.53).abs() < 1e-9);
        // The floor protects tiny scales.
        let tiny = DatasetSpec::scaled(DatasetKind::Syn1, 0.001);
        assert_eq!(tiny.vertices, 500);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn invalid_scale_panics() {
        let _ = DatasetSpec::scaled(DatasetKind::Syn1, 0.0);
    }

    #[test]
    fn generated_surrogate_has_the_requested_shape() {
        let spec = DatasetSpec::scaled(DatasetKind::Brightkite, 0.02).with_seed(99);
        let g = spec.generate();
        let stats = GraphStats::compute(g.graph());
        assert_eq!(stats.vertices, spec.vertices);
        assert!(
            (stats.average_degree - spec.average_degree).abs() < 3.0,
            "average degree {} vs target {}",
            stats.average_degree,
            spec.average_degree
        );
        // Core structure rich enough for k = 4 queries.
        assert!(stats.core4_vertices > 0);
        // Locations are inside the unit square.
        assert!(g.positions().iter().all(|p| (0.0..=1.0).contains(&p.x)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DatasetSpec::scaled(DatasetKind::Syn1, 0.02).generate();
        let b = DatasetSpec::scaled(DatasetKind::Syn1, 0.02).generate();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.position(100), b.position(100));
    }
}
