//! # sac-data
//!
//! Synthetic spatial-graph datasets and workload generators for the SAC search
//! experiments.
//!
//! The paper evaluates on four real geo-social networks (Brightkite, Gowalla,
//! Flickr, Foursquare) and two synthetic graphs produced by GTGraph (Syn1, Syn2).
//! The real datasets are not redistributable with this repository, so this crate
//! builds **surrogates** that preserve the properties the SAC algorithms are
//! sensitive to — power-law degree distributions, the average degrees of Table 4
//! and spatially correlated vertex locations — using exactly the location model the
//! paper itself uses for its synthetic data (neighbour offsets drawn from a normal
//! distribution with µ = 0.09 and σ = 0.16, locations normalised to the unit
//! square).  Real SNAP dumps can still be loaded through [`sac_graph::io`] and fed
//! to the same experiment harness.
//!
//! Components:
//!
//! * [`PowerLawGenerator`] — preferential-attachment graph generator with a target
//!   average degree (GTGraph-like degree distributions);
//! * [`SpatialPlacer`] — the paper's location model: a BFS-ordered placement where
//!   each vertex is dropped near its already-placed neighbours;
//! * [`DatasetSpec`] / [`presets`] — Table 4 dataset presets with a scale knob;
//! * [`CheckinGenerator`] — timestamped check-in streams with user mobility for the
//!   dynamic experiment of Section 5.2.3 (Figure 13);
//! * [`sample_vertices`] / [`select_query_vertices`] — the n%-scalability sampler
//!   and the core-number-≥ 4 query-vertex selection used throughout Section 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkins;
mod normal;
mod powerlaw;
mod presets;
mod sampler;
mod spatial_place;

pub use checkins::{Checkin, CheckinGenerator, CheckinStream};
pub use normal::NormalSampler;
pub use powerlaw::PowerLawGenerator;
pub use presets::{presets, DatasetKind, DatasetSpec};
pub use sampler::{induced_subgraph_by_vertices, sample_vertices, select_query_vertices};
pub use spatial_place::SpatialPlacer;

/// Mean of the neighbour-offset distance distribution (derived from the Brightkite
/// dataset, per Section 5.1 of the paper).
pub const DEFAULT_PLACEMENT_MU: f64 = 0.09;

/// Standard deviation of the neighbour-offset distance distribution (Section 5.1).
pub const DEFAULT_PLACEMENT_SIGMA: f64 = 0.16;
