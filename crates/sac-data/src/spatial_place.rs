//! The paper's synthetic location model (Section 5.1).
//!
//! > "To generate the location of each graph vertex, we first randomly select a
//! > vertex v and give it a random position in the [0,1]×[0,1] space.  Then we
//! > place v's neighbors at random positions, whose distances follow a normal
//! > distribution with mean µ and standard deviation σ.  We repeat this step for
//! > other vertices, starting from v's neighbors, until every vertex is associated
//! > with a location."
//!
//! This produces the spatial homophily real geo-social networks exhibit: graph
//! neighbours tend to be geographically close, which is exactly what makes SAC
//! search meaningful.

use crate::{NormalSampler, DEFAULT_PLACEMENT_MU, DEFAULT_PLACEMENT_SIGMA};
use rand::Rng;
use sac_geom::Point;
use sac_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Assigns spatial locations to the vertices of a graph following the paper's
/// BFS-ordered neighbour-offset model.
#[derive(Debug, Clone)]
pub struct SpatialPlacer {
    mu: f64,
    sigma: f64,
}

impl Default for SpatialPlacer {
    fn default() -> Self {
        SpatialPlacer {
            mu: DEFAULT_PLACEMENT_MU,
            sigma: DEFAULT_PLACEMENT_SIGMA,
        }
    }
}

impl SpatialPlacer {
    /// A placer with the paper's default offset distribution `N(0.09, 0.16²)`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A placer with a custom offset distribution.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or either parameter is not finite.
    pub fn with_offsets(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid placement parameters: mu={mu}, sigma={sigma}"
        );
        SpatialPlacer { mu, sigma }
    }

    /// The configured mean offset distance.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The configured offset standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Assigns a location in the unit square to every vertex of `graph`.
    ///
    /// Vertices are visited in BFS order from random seeds (one per connected
    /// component); each unplaced vertex is dropped at a normally distributed
    /// distance, in a uniformly random direction, from the already-placed neighbour
    /// that discovered it.  Coordinates are clamped to `[0, 1]²`, matching the
    /// paper's normalisation.
    pub fn place<R: Rng + ?Sized>(&self, graph: &Graph, rng: &mut R) -> Vec<Point> {
        let n = graph.num_vertices();
        let mut positions = vec![Point::ORIGIN; n];
        if n == 0 {
            return positions;
        }
        let mut placed = vec![false; n];
        let mut offset = NormalSampler::new(self.mu, self.sigma);

        // Random visiting order for the component seeds.
        let mut seeds: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..seeds.len()).rev() {
            let j = rng.gen_range(0..=i);
            seeds.swap(i, j);
        }

        let mut queue = VecDeque::new();
        for &seed in &seeds {
            if placed[seed as usize] {
                continue;
            }
            positions[seed as usize] = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            placed[seed as usize] = true;
            queue.push_back(seed);
            while let Some(v) = queue.pop_front() {
                let anchor = positions[v as usize];
                for &u in graph.neighbors(v) {
                    if placed[u as usize] {
                        continue;
                    }
                    let distance = offset.sample(rng).abs();
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    let p = Point::new(
                        anchor.x + distance * angle.cos(),
                        anchor.y + distance * angle.sin(),
                    )
                    .clamp(0.0, 1.0);
                    positions[u as usize] = p;
                    placed[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sac_graph::GraphBuilder;

    fn ring_graph(n: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for v in 0..n {
            b.add_edge(v, (v + 1) % n);
        }
        b.build()
    }

    #[test]
    fn every_vertex_gets_a_location_in_the_unit_square() {
        let g = ring_graph(200);
        let placer = SpatialPlacer::new();
        let positions = placer.place(&g, &mut StdRng::seed_from_u64(5));
        assert_eq!(positions.len(), 200);
        assert!(positions
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        assert!((placer.mu() - 0.09).abs() < 1e-12);
        assert!((placer.sigma() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn neighbours_are_spatially_correlated() {
        // Average neighbour distance should be far below the expected distance of
        // two uniformly random points in the unit square (~0.52).
        let mut rng = StdRng::seed_from_u64(77);
        let g = crate::PowerLawGenerator::new(1500, 4).generate(&mut rng);
        let positions = SpatialPlacer::new().place(&g, &mut rng);
        let mut sum = 0.0;
        let mut count = 0usize;
        for (u, v) in g.edges() {
            sum += positions[u as usize].distance(positions[v as usize]);
            count += 1;
        }
        let avg = sum / count as f64;
        assert!(
            avg < 0.4,
            "average neighbour distance {avg} is not spatially correlated"
        );
    }

    #[test]
    fn disconnected_components_are_all_placed() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.ensure_vertex(5); // isolated vertices 4, 5
        let g = b.build();
        let positions =
            SpatialPlacer::with_offsets(0.05, 0.01).place(&g, &mut StdRng::seed_from_u64(3));
        assert_eq!(positions.len(), 6);
        // Edge endpoints are close, per the tight offset distribution.
        assert!(positions[0].distance(positions[1]) < 0.2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(SpatialPlacer::new()
            .place(&g, &mut StdRng::seed_from_u64(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid placement parameters")]
    fn invalid_parameters_panic() {
        let _ = SpatialPlacer::with_offsets(0.1, -0.2);
    }
}
