//! Shared fixtures for the Criterion benchmark suite.
//!
//! Every benchmark regenerating a paper figure uses the same small surrogate
//! datasets so that runs are quick and comparable across benches.  The absolute
//! numbers are not meant to match the paper's testbed; the *relative* ordering of
//! algorithms and the trends across parameters are (see EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sac_data::{select_query_vertices, DatasetKind, DatasetSpec};
use sac_graph::{SpatialGraph, VertexId};

/// Scale factor applied to the paper's dataset sizes for the benchmark suite.
pub const BENCH_SCALE: f64 = 0.01;

/// Number of query vertices benchmarked per dataset.
pub const BENCH_QUERIES: usize = 5;

/// A benchmark-ready dataset: the surrogate graph plus sampled query vertices.
pub struct BenchDataset {
    /// Which Table 4 dataset this mirrors.
    pub kind: DatasetKind,
    /// The surrogate spatial graph.
    pub graph: SpatialGraph,
    /// Query vertices with core number ≥ 4.
    pub queries: Vec<VertexId>,
}

impl BenchDataset {
    /// Short dataset name for bench ids.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Loads a scaled surrogate of `kind` with deterministic query vertices.
pub fn bench_dataset(kind: DatasetKind) -> BenchDataset {
    bench_dataset_scaled(kind, BENCH_SCALE)
}

/// Loads a surrogate of `kind` at a custom scale.
pub fn bench_dataset_scaled(kind: DatasetKind, scale: f64) -> BenchDataset {
    let spec = DatasetSpec::scaled(kind, scale);
    let graph = spec.generate();
    let mut rng = StdRng::seed_from_u64(0xBE7C ^ spec.seed);
    let queries = select_query_vertices(graph.graph(), BENCH_QUERIES, 4, &mut rng);
    BenchDataset {
        kind,
        graph,
        queries,
    }
}

/// The datasets benchmarked by the per-figure benches (a representative subset of
/// Table 4 keeps `cargo bench` runtimes reasonable; add more kinds here to sweep
/// the full Table 4 list).
pub fn bench_kinds() -> Vec<DatasetKind> {
    vec![DatasetKind::Brightkite]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_datasets_are_usable() {
        for kind in bench_kinds() {
            let d = bench_dataset(kind);
            assert!(d.graph.num_vertices() >= 500);
            assert!(!d.queries.is_empty());
            assert!(!d.name().is_empty());
        }
    }
}
