//! Shared fixtures for the Criterion benchmark suite.
//!
//! Every benchmark regenerating a paper figure uses the same small surrogate
//! datasets so that runs are quick and comparable across benches.  The absolute
//! numbers are not meant to match the paper's testbed; the *relative* ordering of
//! algorithms and the trends across parameters are (see EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sac_data::{select_query_vertices, DatasetKind, DatasetSpec};
use sac_graph::{SpatialGraph, VertexId};

/// Scale factor applied to the paper's dataset sizes for the benchmark suite.
pub const BENCH_SCALE: f64 = 0.01;

/// Number of query vertices benchmarked per dataset.
pub const BENCH_QUERIES: usize = 5;

/// A benchmark-ready dataset: the surrogate graph plus sampled query vertices.
pub struct BenchDataset {
    /// Which Table 4 dataset this mirrors.
    pub kind: DatasetKind,
    /// The surrogate spatial graph.
    pub graph: SpatialGraph,
    /// Query vertices with core number ≥ 4.
    pub queries: Vec<VertexId>,
}

impl BenchDataset {
    /// Short dataset name for bench ids.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Loads a scaled surrogate of `kind` with deterministic query vertices.
pub fn bench_dataset(kind: DatasetKind) -> BenchDataset {
    bench_dataset_scaled(kind, BENCH_SCALE)
}

/// Loads a surrogate of `kind` at a custom scale.
pub fn bench_dataset_scaled(kind: DatasetKind, scale: f64) -> BenchDataset {
    let spec = DatasetSpec::scaled(kind, scale);
    let graph = spec.generate();
    let mut rng = StdRng::seed_from_u64(0xBE7C ^ spec.seed);
    let queries = select_query_vertices(graph.graph(), BENCH_QUERIES, 4, &mut rng);
    BenchDataset {
        kind,
        graph,
        queries,
    }
}

/// The datasets benchmarked by the per-figure benches (a representative subset of
/// Table 4 keeps `cargo bench` runtimes reasonable; add more kinds here to sweep
/// the full Table 4 list).
pub fn bench_kinds() -> Vec<DatasetKind> {
    vec![DatasetKind::Brightkite]
}

/// Shared probe-loop fixtures for the radius-sweep benchmark and its
/// machine-readable runner (`examples/bench_radius_sweep.rs` →
/// `BENCH_radius_sweep.json`).
pub mod radius_probe {
    use sac_core::SearchContext;
    use sac_graph::{SpatialGraph, VertexId};

    /// Probe counts benchmarked per query.
    pub const PROBE_COUNTS: [usize; 3] = [10, 100, 1000];

    /// A deterministic schedule of `n` radii in `(0, r_max)` emulating the
    /// paper's probe pattern: successive feasibility **binary searches**
    /// (`AppFast` runs one per query, `AppAcc` one per anchor cell), each
    /// homing in on a different low-discrepancy target radius.  Probes within
    /// a search are non-monotone (roughly half move the radius upward) but
    /// converge geometrically — exactly the access pattern the incremental
    /// sweep amortises.
    pub fn search_schedule(r_max: f64, n: usize) -> Vec<f64> {
        let mut radii = Vec::with_capacity(n);
        if r_max.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            // Degenerate span (colocated k-ĉore, r_max = 0, or NaN): the
            // binary-search emulation below would never push a probe; every
            // probe is at radius 0.
            radii.resize(n, 0.0);
            return radii;
        }
        let mut search = 0u64;
        while radii.len() < n {
            search += 1;
            // Golden-ratio sequence: deterministic, well-spread targets.
            let target = r_max * ((search as f64 * 0.618_033_988_749_894_9) % 1.0);
            let (mut lo, mut hi) = (0.0f64, r_max);
            while hi - lo > 1e-3 * r_max && radii.len() < n {
                let r = 0.5 * (lo + hi);
                radii.push(r);
                if r > target {
                    hi = r;
                } else {
                    lo = r;
                }
            }
        }
        radii
    }

    /// The probe context of one query: the k-ĉore universe and radius bound
    /// `AppFast` would binary-search over.
    pub struct ProbeCase {
        /// The query vertex.
        pub q: VertexId,
        /// Minimum-degree constraint.
        pub k: u32,
        /// Membership bitmap of the k-ĉore containing `q`.
        pub universe: Vec<bool>,
        /// Largest probe radius (distance of the farthest k-ĉore vertex).
        pub r_max: f64,
    }

    /// Builds the probe case for `(q, k)`; `None` when `q` is in no k-core.
    pub fn probe_case(g: &SpatialGraph, q: VertexId, k: u32) -> Option<ProbeCase> {
        let ctx = SearchContext::new(g, q, k).ok()?;
        let x = ctx.global_kcore_of_q()?;
        let q_pos = g.position(q);
        let mut universe = vec![false; g.num_vertices()];
        let mut r_max = 0.0f64;
        for &v in &x {
            universe[v as usize] = true;
            r_max = r_max.max(g.position(v).distance(q_pos));
        }
        Some(ProbeCase {
            q,
            k,
            universe,
            r_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_datasets_are_usable() {
        for kind in bench_kinds() {
            let d = bench_dataset(kind);
            assert!(d.graph.num_vertices() >= 500);
            assert!(!d.queries.is_empty());
            assert!(!d.name().is_empty());
        }
    }
}
