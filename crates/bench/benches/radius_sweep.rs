//! From-scratch vs incremental radius-sweep probing.
//!
//! Every SAC algorithm is a loop of circle-feasibility probes.  This bench
//! measures exactly that loop in isolation at 10/100/1000 probes per query:
//!
//! * `from_scratch/N` — each probe pays a grid range query plus a full subset
//!   peel (`SearchContext::feasible_in_circle`, the pre-sweep behaviour);
//! * `sweep/N` — one `begin_sweep` (grid query + sort) and N incremental
//!   probes (`SearchContext::probe`).
//!
//! The probe schedule is the shared binary-search emulation of
//! [`sac_bench::radius_probe`], mimicking the non-monotone radius pattern of
//! the paper's binary searches.  `examples/bench_radius_sweep.rs` runs the
//! same loops with plain timers and emits `BENCH_radius_sweep.json` so the
//! perf trajectory is machine-readable.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sac_bench::radius_probe::{probe_case, search_schedule, PROBE_COUNTS};
use sac_bench::{bench_dataset, bench_kinds};
use sac_core::SearchContext;
use sac_geom::Circle;

fn bench_radius_sweep(c: &mut Criterion) {
    for kind in bench_kinds() {
        let data = bench_dataset(kind);
        let g = &data.graph;
        let case = data
            .queries
            .iter()
            .find_map(|&q| probe_case(g, q, 4))
            .expect("bench dataset has a feasible query");
        let q_pos = g.position(case.q);

        let mut group = c.benchmark_group(format!("radius_sweep/{}", data.name()));
        group.sample_size(10);

        for probes in PROBE_COUNTS {
            let schedule = search_schedule(case.r_max, probes);
            group.bench_function(format!("from_scratch/{probes}"), |b| {
                let mut ctx = SearchContext::new(g, case.q, case.k).unwrap();
                b.iter(|| {
                    for &r in &schedule {
                        black_box(
                            ctx.feasible_in_circle(&Circle::new(q_pos, r), Some(&case.universe)),
                        );
                    }
                });
            });
            group.bench_function(format!("sweep/{probes}"), |b| {
                let mut ctx = SearchContext::new(g, case.q, case.k).unwrap();
                b.iter(|| {
                    ctx.begin_sweep(q_pos, case.r_max, Some(&case.universe));
                    for &r in &schedule {
                        black_box(ctx.probe(r));
                    }
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_radius_sweep
}
criterion_main!(benches);
