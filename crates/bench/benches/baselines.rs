//! Figure 10 companion: query cost of the baseline community-retrieval methods
//! versus SAC search.
//!
//! `Global`/`Local` are community-search baselines answered per query; `GeoModu` is
//! a community-detection method whose (expensive) partitioning is done once for the
//! whole graph — both costs are reported so the online-vs-offline trade-off the
//! paper discusses is visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sac_bench::bench_dataset;
use sac_core::baselines::{geo_modularity, global_search, local_search};
use sac_core::{app_inc, exact_plus};
use sac_data::DatasetKind;

fn bench_baselines(c: &mut Criterion) {
    let data = bench_dataset(DatasetKind::Brightkite);
    let g = &data.graph;
    let k = 4;

    let mut group = c.benchmark_group("fig10/per_query_methods");
    group.sample_size(10);
    group.bench_function("Global", |b| {
        b.iter(|| {
            for &q in &data.queries {
                black_box(global_search(g, q, k).unwrap());
            }
        });
    });
    group.bench_function("Local", |b| {
        b.iter(|| {
            for &q in &data.queries {
                black_box(local_search(g, q, k).unwrap());
            }
        });
    });
    group.bench_function("AppInc", |b| {
        b.iter(|| {
            for &q in &data.queries {
                black_box(app_inc(g, q, k).unwrap());
            }
        });
    });
    group.bench_function("ExactPlus", |b| {
        b.iter(|| {
            for &q in &data.queries {
                black_box(exact_plus(g, q, k, 1e-3).unwrap());
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("fig10/whole_graph_detection");
    group.sample_size(10);
    group.bench_function("GeoModu_mu1_partition", |b| {
        b.iter(|| black_box(geo_modularity(g, 1.0).unwrap()));
    });
    group.bench_function("GeoModu_mu2_partition", |b| {
        b.iter(|| black_box(geo_modularity(g, 2.0).unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_baselines
}
criterion_main!(benches);
