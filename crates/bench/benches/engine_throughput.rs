//! Serving-layer benchmark: `sac-engine` batch throughput and the effect of
//! the k-core index cache.
//!
//! Three questions:
//! 1. What does the cache buy on repeated same-`k` traffic? (`cold_direct`
//!    recomputes the k-ĉore per query the way a library caller would;
//!    `engine_warm` serves the same workload from the warmed engine.)
//! 2. How much does the infeasibility fast path save? (`infeasible_*`)
//! 3. How does batch throughput scale with worker threads?

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sac_bench::bench_dataset;
use sac_core::app_fast;
use sac_data::DatasetKind;
use sac_engine::{EngineConfig, QueryBudget, SacEngine, SacRequest};
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let data = bench_dataset(DatasetKind::Brightkite);
    let graph = Arc::new(data.graph);
    let k = 4u32;

    // Exercise the approximation planner arms (no small-core exact upgrade).
    let config = EngineConfig {
        small_exact_threshold: 0,
        ..EngineConfig::default()
    };

    let mut group = c.benchmark_group(format!("engine/{}", data.kind.name()));
    group.sample_size(10);

    // 1a. Library baseline: every query re-derives the k-core structure.
    group.bench_function("repeated_k/cold_direct", |b| {
        b.iter(|| {
            for &q in &data.queries {
                black_box(app_fast(&graph, q, k, 0.5).unwrap());
            }
        });
    });

    // 1b. Warmed engine, same queries: the decomposition and per-k component
    // index are cache hits.
    group.bench_function("repeated_k/engine_warm", |b| {
        let engine = SacEngine::with_config(Arc::clone(&graph), config);
        engine.warm(&[k]);
        let budget = QueryBudget::within_ratio(2.5).with_tier(sac_engine::LatencyTier::Interactive);
        b.iter(|| {
            for (i, &q) in data.queries.iter().enumerate() {
                let request = SacRequest::new(i as u64, q, k).with_budget(budget);
                black_box(engine.execute(&request));
            }
        });
    });

    // 1c. The structural phase in isolation: repeated same-k connected-core
    // queries against the library (O(m) peel per query) vs the warmed cache
    // (component-label lookup + member-slice copy).
    group.bench_function("repeated_k/kcore_direct", |b| {
        b.iter(|| {
            for &q in &data.queries {
                black_box(sac_graph::connected_kcore(graph.graph(), q, k));
            }
        });
    });
    group.bench_function("repeated_k/kcore_cached", |b| {
        let engine = SacEngine::with_config(Arc::clone(&graph), config);
        engine.warm(&[k]);
        b.iter(|| {
            for &q in &data.queries {
                black_box(engine.connected_core(q, k));
            }
        });
    });

    // 2. Infeasible queries: direct call vs cache fast path.  Query vertices
    // with core number < k at a k above the graph's typical core.
    let infeasible_k = 24u32;
    let q = data.queries[0];
    group.bench_function("infeasible/direct", |b| {
        b.iter(|| black_box(app_fast(&graph, q, infeasible_k, 0.5).unwrap()));
    });
    group.bench_function("infeasible/engine_fast_path", |b| {
        let engine = SacEngine::with_config(Arc::clone(&graph), config);
        engine.warm(&[infeasible_k]);
        b.iter(|| {
            black_box(engine.execute(&SacRequest::new(0, q, infeasible_k)));
        });
    });

    // 3. Batch throughput across thread counts, mixed budgets.  (Scaling with
    // thread count requires actual cores; on a single-CPU host the sweep only
    // demonstrates that the executor adds no contention overhead.)
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let budgets = [
        QueryBudget::balanced(),
        QueryBudget::within_ratio(2.0),
        QueryBudget::interactive(),
        QueryBudget::balanced().with_theta(0.15),
    ];
    let requests: Vec<SacRequest> = (0..128)
        .map(|i| {
            let q = if i % 4 == 0 {
                rng.gen_range(0..graph.num_vertices() as u32)
            } else {
                data.queries[i % data.queries.len()]
            };
            SacRequest::new(i as u64, q, k).with_budget(budgets[i % budgets.len()])
        })
        .collect();
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch128_threads", threads),
            &threads,
            |b, &threads| {
                let engine = SacEngine::with_config(Arc::clone(&graph), config);
                engine.warm(&[k]);
                b.iter(|| black_box(engine.execute_batch(&requests, threads)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_engine
}
criterion_main!(benches);
